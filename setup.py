"""Packaging for the RESPECT reproduction library.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (which need ``bdist_wheel``) fail; this
classic ``setup.py`` keeps ``pip install -e . --no-build-isolation
--no-use-pep517`` working.  ``package_data`` ships the pretrained
checkpoint artifacts (``repro/rl/pretrained/*.{npz,json}``) — without it
a pip install would silently drop them and every default-constructed
``RespectScheduler`` would have to retrain on first use.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="respect-repro",
    version=VERSION,
    description=(
        "Reproduction of RESPECT: Reinforcement Learning based Edge "
        "Scheduling on Pipelined Coral Edge TPUs (DAC 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    include_package_data=True,
    package_data={
        "repro.rl": ["pretrained/*.npz", "pretrained/*.json"],
    },
    python_requires=">=3.8",
    install_requires=["numpy"],
)
