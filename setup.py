"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) fail.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` use the
classic ``setup.py develop`` path instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
