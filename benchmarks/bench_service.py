"""Benchmark — the scheduling service (fingerprint cache + micro-batching).

Measures the two serving-layer wins over raw ``RespectScheduler`` calls:

* **cache**: a warm fingerprint-cache hit must be >= 10x faster than a
  cold ``schedule()`` solve of the same graph;
* **micro-batching**: 32 concurrent clients blocking on
  ``service.schedule()`` must achieve >= 2x the throughput of a
  sequential one-request-at-a-time loop, because the worker aggregates
  their requests into vectorized ``schedule_batch`` decodes.

Both modes assert that every served schedule is bit-identical to the
direct ``scheduler.schedule`` result.  Runs under pytest (full
acceptance bars) or standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_service.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.sampler import sample_synthetic_dag
from repro.service import SchedulingService
from repro.utils.tables import format_table

NUM_CLIENTS = 32
NUM_NODES = 30
NUM_STAGES = 4
ROUNDS = 3


def _best_of(rounds, fn):
    best = float("inf")
    out = None
    for _ in range(rounds):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_service_bench(
    scheduler,
    num_clients: int = NUM_CLIENTS,
    num_nodes: int = NUM_NODES,
    rounds: int = ROUNDS,
):
    """Measure cache-hit and concurrent-throughput speedups.

    Returns ``(rendered_table, measurements)`` where measurements carry
    ``cache_speedup``, ``throughput_speedup`` and the final service
    stats; schedules are asserted identical to the direct path.
    """
    graphs = [
        sample_synthetic_dag(num_nodes=num_nodes, degree=3, seed=seed)
        for seed in range(num_clients)
    ]
    # Warm the inference path (BLAS init / buffer allocation).
    scheduler.schedule(graphs[0], NUM_STAGES)
    scheduler.schedule_batch(graphs[:2], NUM_STAGES)

    direct = [scheduler.schedule(g, NUM_STAGES) for g in graphs]

    # -- cache: cold solve vs warm fingerprint-cache hit ---------------
    cold_seconds, _ = _best_of(
        rounds, lambda: scheduler.schedule(graphs[0], NUM_STAGES)
    )
    with SchedulingService(scheduler, max_batch_size=num_clients) as warm:
        hit_result = warm.schedule(graphs[0], NUM_STAGES)  # populate
        hit_seconds, hit_result = _best_of(
            rounds * 3, lambda: warm.schedule(graphs[0], NUM_STAGES)
        )
    assert hit_result.schedule.assignment == direct[0].schedule.assignment
    assert hit_result.extras["cache_hit"] is True
    cache_speedup = cold_seconds / hit_seconds

    # -- micro-batching: concurrent clients vs sequential loop ---------
    seq_seconds, sequential = _best_of(
        rounds, lambda: [scheduler.schedule(g, NUM_STAGES) for g in graphs]
    )

    def serve_round():
        # A fresh service per round: every request is a cold miss, so
        # the speedup is pure micro-batching, not cache hits.
        with SchedulingService(
            scheduler,
            max_batch_size=num_clients,
            batch_window_s=0.01,
        ) as service:
            with ThreadPoolExecutor(num_clients) as pool:
                futures = [
                    pool.submit(service.schedule, g, NUM_STAGES)
                    for g in graphs
                ]
                results = [f.result() for f in futures]
            return results, service.stats()

    conc_seconds, (served, stats) = _best_of(rounds, serve_round)
    throughput_speedup = seq_seconds / conc_seconds

    for direct_result, served_result in zip(direct, served):
        assert (
            served_result.schedule.assignment
            == direct_result.schedule.assignment
        )
    assert stats.cache_hits == 0 and stats.coalesced == 0

    table = format_table(
        ["path", "wall-clock", "per-request", "throughput"],
        [
            [
                "cold schedule()",
                f"{cold_seconds * 1e3:.2f} ms",
                f"{cold_seconds * 1e3:.2f} ms",
                f"{1 / cold_seconds:.0f} req/s",
            ],
            [
                "warm cache hit",
                f"{hit_seconds * 1e6:.0f} us",
                f"{hit_seconds * 1e6:.0f} us",
                f"{1 / hit_seconds:.0f} req/s",
            ],
            [
                f"sequential loop x{num_clients}",
                f"{seq_seconds * 1e3:.1f} ms",
                f"{seq_seconds / num_clients * 1e3:.2f} ms",
                f"{num_clients / seq_seconds:.0f} req/s",
            ],
            [
                f"service, {num_clients} clients",
                f"{conc_seconds * 1e3:.1f} ms",
                f"{conc_seconds / num_clients * 1e3:.2f} ms",
                f"{num_clients / conc_seconds:.0f} req/s",
            ],
        ],
        title=(
            f"Scheduling service — |V|={num_nodes} graphs, "
            f"{NUM_STAGES}-stage pipelines"
        ),
    )
    summary = (
        f"cache-hit speedup: {cache_speedup:.0f}x (bar: >= 10x)\n"
        f"concurrent throughput: {throughput_speedup:.2f}x sequential "
        f"(bar: >= 2x at {num_clients} clients)\n"
        f"service batches: {stats.batches}, mean batch size "
        f"{stats.mean_batch_size:.1f}, p50 latency "
        f"{stats.latency_p50_s * 1e3:.1f} ms, p99 "
        f"{stats.latency_p99_s * 1e3:.1f} ms"
    )
    measurements = {
        "cache_speedup": cache_speedup,
        "throughput_speedup": throughput_speedup,
        "stats": stats,
    }
    return table + "\n" + summary, measurements


def _service_metrics(measured):
    stats = measured["stats"]
    return {
        "cache_speedup": measured["cache_speedup"],
        "throughput_speedup": measured["throughput_speedup"],
        "mean_batch_size": stats.mean_batch_size,
        "latency_p50_s": stats.latency_p50_s,
        "latency_p99_s": stats.latency_p99_s,
    }


def test_service_throughput(emit, respect_scheduler):
    """Full acceptance run: both bars enforced."""
    rendered, measured = run_service_bench(respect_scheduler)
    emit("service", rendered, metrics=_service_metrics(measured), seed=0)
    assert measured["cache_speedup"] >= 10.0
    assert measured["throughput_speedup"] >= 2.0
    assert measured["stats"].mean_batch_size > 1.0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: fewer clients and smaller graphs; "
            "equivalence and the cache bar stay enforced, the concurrent "
            "throughput bar is reported but not asserted (shared CI "
            "runners are too noisy for a hard wall-clock ratio)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.rl.respect import RespectScheduler

    scheduler = RespectScheduler()
    if args.smoke:
        rendered, measured = run_service_bench(
            scheduler, num_clients=8, num_nodes=15, rounds=1
        )
    else:
        rendered, measured = run_service_bench(scheduler)
    from bench_json import write_bench_json

    write_bench_json("service", _service_metrics(measured), seed=0)
    print(rendered)
    if measured["cache_speedup"] < 10.0:
        print("FAIL: cache-hit speedup below 10x", file=sys.stderr)
        return 1
    if not args.smoke and measured["throughput_speedup"] < 2.0:
        print("FAIL: concurrent throughput below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
