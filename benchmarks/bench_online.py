"""Benchmark — online adaptation under workload drift.

Runs the end-to-end drift experiment
(:mod:`repro.experiments.online_adaptation`): one deterministic request
stream whose tenants shift from compute-uniform CNN graphs to
attention-heavy graphs mid-run, served by a frozen champion and by the
drift-aware adaptive service.  Asserts the subsystem's acceptance bars:

* the frozen champion's mean pipeline-efficiency reward degrades by at
  least ``DEGRADATION_BAR`` after the drift point;
* the adaptive service detects the drift, fine-tunes a challenger,
  promotes it through the statistical gate, and its post-promotion
  serves recover to within ``RECOVERY_BAR`` of the pre-drift quality;
* the promoted checkpoint is loadable through the checkpoint lifecycle
  and records the drift event in its provenance.

Runs under pytest (full bars) or standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_online.py --smoke
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_online.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.scenarios import attention_drift_scenario
from repro.experiments.online_adaptation import (
    format_online_adaptation,
    run_online_adaptation,
)
from repro.online import AdaptationConfig
from repro.rl.checkpoints import load_checkpoint, read_metadata

SEED = 0
#: Frozen champion must lose at least this fraction of mean reward.
DEGRADATION_BAR = 0.08
#: Adapted service must land within this fraction of pre-drift reward.
RECOVERY_BAR = 0.05
SMOKE_RECOVERY_BAR = 0.10


def run_online_bench(smoke: bool = False, checkpoint_dir=None):
    """Run the drift experiment at bench scale; returns (text, result)."""
    start = time.perf_counter()
    if smoke:
        scenario = attention_drift_scenario(duration_s=20.0, drift_at_s=6.5)
        result = run_online_adaptation(
            seed=SEED,
            scenario=scenario,
            adaptation=AdaptationConfig(
                max_adaptation_graphs=32,
                fresh_graphs=24,
                teacher_search_iters=500,
                imitation_steps=500,
                reinforce_steps=10,
                seed=SEED,
            ),
            reference_size=20,
            detector_window=12,
            detector_threshold=1.8,
            adapt_warmup_serves=12,
            max_adaptations=2,
            checkpoint_dir=checkpoint_dir,
        )
    else:
        scenario = attention_drift_scenario(duration_s=30.0, drift_at_s=12.0)
        result = run_online_adaptation(
            seed=SEED,
            scenario=scenario,
            adaptation=AdaptationConfig(
                max_adaptation_graphs=40,
                fresh_graphs=24,
                imitation_steps=500,
                reinforce_steps=15,
                seed=SEED,
            ),
            reference_size=40,
            detector_window=20,
            detector_threshold=2.0,
            adapt_warmup_serves=20,
            max_adaptations=2,
            checkpoint_dir=checkpoint_dir,
        )
    wall = time.perf_counter() - start
    rendered = (
        format_online_adaptation(result)
        + f"\nexperiment wall-clock: {wall:.0f}s"
    )
    return rendered, result


def bench_metrics(result) -> dict:
    return {
        "pre_drift_reward": result.pre_drift_reward,
        "frozen_post_reward": result.frozen_post_reward,
        "adaptive_recovered_reward": (
            result.adaptive_recovered_reward
            if result.promotion_request_index is not None
            else None
        ),
        "degradation": result.degradation,
        "recovery_gap": (
            result.recovery_gap
            if result.promotion_request_index is not None
            else None
        ),
        "requests": result.requests,
        "promoted": result.promotion_request_index is not None,
        "adaptations": len(result.adaptation_reports),
    }


def _check_promoted_checkpoint(checkpoint_dir: Path) -> None:
    """The promoted artifact must load and carry drift provenance."""
    policy = load_checkpoint(checkpoint_dir, "respect_online")
    assert policy.num_parameters() > 0
    meta = read_metadata(checkpoint_dir, "respect_online")
    online = meta["online_adaptation"]
    assert online["drift_event"]["at_observation"] >= 0
    assert online["shadow_evaluation"]["promote"] is True


def test_online_adaptation(emit):
    """Full acceptance run: degradation, recovery and provenance bars."""
    with tempfile.TemporaryDirectory() as tmp:
        rendered, result = run_online_bench(smoke=False, checkpoint_dir=tmp)
        emit("online_adaptation", rendered, metrics=bench_metrics(result),
             seed=SEED)
        assert result.promotion_request_index is not None
        _check_promoted_checkpoint(Path(tmp))
    assert result.degradation >= DEGRADATION_BAR
    assert result.recovery_gap <= RECOVERY_BAR


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: shorter trace and lighter "
            "fine-tuning; promotion, degradation and a relaxed recovery "
            "bar stay enforced"
        ),
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        rendered, result = run_online_bench(
            smoke=args.smoke, checkpoint_dir=tmp
        )
        print(rendered)
        from bench_json import write_bench_json

        write_bench_json(
            "online_adaptation", bench_metrics(result), seed=SEED
        )
        if result.promotion_request_index is None:
            print("FAIL: no challenger was promoted", file=sys.stderr)
            return 1
        _check_promoted_checkpoint(Path(tmp))
    if result.degradation < DEGRADATION_BAR:
        print(
            f"FAIL: frozen degradation {result.degradation:.3f} below "
            f"{DEGRADATION_BAR}",
            file=sys.stderr,
        )
        return 1
    recovery_bar = SMOKE_RECOVERY_BAR if args.smoke else RECOVERY_BAR
    if result.recovery_gap > recovery_bar:
        print(
            f"FAIL: recovery gap {result.recovery_gap:.3f} above "
            f"{recovery_bar}",
            file=sys.stderr,
        )
        return 1
    print("online adaptation OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
