"""Benchmark — anytime portfolio quality vs. deadline budget.

The anytime portfolio promises three things (ISSUE 9 acceptance bar):

* **an answer at every budget** — even a 1 ms deadline gets the fastest
  lane's schedule (and a deliberately *hanging* lane cannot stall the
  race past its deadline);
* **monotone quality** — more budget never yields a worse schedule
  (best-so-far only improves, pinned per-graph from the improvement
  trace of one 100 ms race);
* **full budget matches the learned policy** — at the default 100 ms
  deadline the race's winner is at least as good as the standalone
  RESPECT policy decode, because the policy *is* one of the lanes.

Method: one 100 ms race per graph (policy lane included) records the
``improvement_trace``; the quality at each smaller budget is the
incumbent at that cutoff (the first finisher when the cutoff precedes
every completion — exactly what ``wait_for_first`` serves).  Quality is
reported as ``list_objective / objective`` (>= 1 means better than the
list-scheduler floor).  A Pareto-front sweep cell and a hanging-lane
fault-injection cell ride along.  Standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_portfolio.py --smoke
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_portfolio.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.sampler import sample_synthetic_dag
from repro.portfolio import AnytimePortfolio, PortfolioLane, pareto_front
from repro.rl.respect import RespectScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.quantize import quantize_graph
from repro.utils.tables import format_table

NUM_GRAPHS = 6
NUM_NODES = 30  # the paper's evaluation graph size
NUM_STAGES = 4
BUDGETS_MS = (1.0, 5.0, 25.0, 100.0)
FULL_BUDGET_MS = BUDGETS_MS[-1]

#: Wall-clock bound for the fault-injection cell on noisy single-core
#: runners: the race must answer well under this even with a hung lane.
FAULT_SLACK_MS = 5_000.0


def _graphs(num_graphs):
    return [
        quantize_graph(
            sample_synthetic_dag(num_nodes=NUM_NODES, degree=3, seed=seed)
        )
        for seed in range(num_graphs)
    ]


class _HangingScheduler:
    """A lane that spins until the race's stop flag fires."""

    def __init__(self, should_stop):
        self._should_stop = should_stop

    def schedule(self, graph, num_stages):
        from repro.errors import SolverError

        while not self._should_stop():
            time.sleep(0.005)
        raise SolverError("hung lane cancelled")


def _quality_at(trace, budget_ms):
    """Best objective at the cutoff (first finisher when none made it)."""
    reached = [objective for _, ms, objective in trace if ms <= budget_ms]
    if reached:
        return min(reached)
    return trace[0][2]


def run_portfolio_bench(num_graphs=NUM_GRAPHS, seed=0):
    graphs = _graphs(num_graphs)
    policy = RespectScheduler()
    portfolio = AnytimePortfolio(
        policy=policy, deadline_ms=FULL_BUDGET_MS, seed=seed
    )

    per_budget = {budget: [] for budget in BUDGETS_MS}
    policy_ratios = []
    front_sizes = []
    races_complete = 0
    for graph in graphs:
        list_objective = (
            ListScheduler().schedule(graph, NUM_STAGES).schedule.objective()
        )
        result = portfolio.schedule(graph, NUM_STAGES)
        races_complete += bool(result.extras["anytime_complete"])
        trace = result.extras["improvement_trace"]
        for budget in BUDGETS_MS:
            per_budget[budget].append(list_objective / _quality_at(trace, budget))
        policy_objective = (
            policy.schedule(graph, NUM_STAGES).schedule.objective()
        )
        policy_ratios.append(list_objective / policy_objective)
        front_sizes.append(len(pareto_front(graph, NUM_STAGES).points))

    # Fault injection: a hung lane must not stall the race.
    fault_lanes = [
        PortfolioLane("list", lambda stop: ListScheduler()),
        PortfolioLane("hang", lambda stop: _HangingScheduler(stop)),
    ]
    fault_portfolio = AnytimePortfolio(
        lanes=fault_lanes, deadline_ms=FULL_BUDGET_MS
    )
    fault_answer_ms = []
    for graph in graphs:
        start = time.perf_counter()
        fault_result = fault_portfolio.schedule(graph, NUM_STAGES)
        fault_answer_ms.append((time.perf_counter() - start) * 1000.0)
        assert fault_result.extras["winning_lane"] == "list"

    quality = {
        budget: statistics.fmean(per_budget[budget]) for budget in BUDGETS_MS
    }
    policy_quality = statistics.fmean(policy_ratios)
    metrics = {
        "num_graphs": num_graphs,
        "quality_ratio_1ms": quality[1.0],
        "quality_ratio_5ms": quality[5.0],
        "quality_ratio_25ms": quality[25.0],
        "quality_ratio_100ms": quality[100.0],
        "policy_quality_ratio": policy_quality,
        "races_complete": races_complete,
        "front_points_mean": statistics.fmean(front_sizes),
        "fault_answer_ms_max": max(fault_answer_ms),
        "fault_answer_ms_mean": statistics.fmean(fault_answer_ms),
    }

    table = format_table(
        ["budget", "quality vs list (mean)", "note"],
        [
            [
                f"{budget:g} ms",
                f"{quality[budget]:.3f}x",
                "full deadline" if budget == FULL_BUDGET_MS else "",
            ]
            for budget in BUDGETS_MS
        ]
        + [
            ["policy alone", f"{policy_quality:.3f}x", "RESPECT decode"],
            [
                "fault cell",
                f"{metrics['fault_answer_ms_max']:.1f} ms max",
                "hung lane, still answers",
            ],
        ],
        title=(
            f"Anytime portfolio quality vs deadline — {num_graphs} graphs "
            f"(|V|={NUM_NODES}, {NUM_STAGES} stages), quality = "
            f"list_objective / objective (higher is better), "
            f"mean Pareto front size {metrics['front_points_mean']:.1f}"
        ),
    )
    return table, metrics


def test_portfolio_quality_vs_deadline(emit):
    """Full acceptance run: monotone quality, policy parity, fault bound."""
    rendered, measured = run_portfolio_bench()
    emit("portfolio", rendered, metrics=dict(measured), seed=0)
    # Quality never degrades as the budget grows (per-graph the
    # incumbent is monotone, so the mean ratio is too).
    assert (
        measured["quality_ratio_1ms"]
        <= measured["quality_ratio_5ms"]
        <= measured["quality_ratio_25ms"]
        <= measured["quality_ratio_100ms"]
    )
    # The full budget matches/beats the standalone learned policy
    # (the policy is a lane, so the winner can only be >= it; float
    # division gets a hair of tolerance).
    assert measured["quality_ratio_100ms"] >= measured["policy_quality_ratio"] - 1e-9
    # A hung lane never stalls the answer past the deadline + slack.
    assert measured["fault_answer_ms_max"] < FAULT_SLACK_MS


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI configuration: fewer graphs, bars not asserted",
    )
    args = parser.parse_args(argv)

    rendered, measured = run_portfolio_bench(
        num_graphs=3 if args.smoke else NUM_GRAPHS
    )
    from bench_json import write_bench_json

    write_bench_json("portfolio", dict(measured), seed=0)
    print(rendered)
    if not args.smoke:
        if not (
            measured["quality_ratio_1ms"]
            <= measured["quality_ratio_5ms"]
            <= measured["quality_ratio_25ms"]
            <= measured["quality_ratio_100ms"]
        ):
            print("FAIL: quality not monotone in budget", file=sys.stderr)
            return 1
        if measured["quality_ratio_100ms"] < measured["policy_quality_ratio"] - 1e-9:
            print("FAIL: full budget loses to standalone policy", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
