"""Benchmark — batched RESPECT scheduling throughput.

The batched engine pads B encoder queues into one ``[B, N, F]`` tensor
and greedy-decodes them in a single vectorized pointer-network pass; the
sequential loop pays the full network cost per graph.  This bench
measures both on B=32 synthetic |V|=30 graphs (the paper's training
distribution), checks the schedules are identical, and asserts the
acceptance bar: >= 2x throughput over the one-graph-at-a-time loop.
"""

import time

from repro.graphs.sampler import sample_synthetic_dag
from repro.utils.tables import format_table

BATCH_SIZE = 32
NUM_NODES = 30
NUM_STAGES = 4
ROUNDS = 5


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_batched_scheduling_throughput(emit, respect_scheduler):
    graphs = [
        sample_synthetic_dag(num_nodes=NUM_NODES, degree=3, seed=seed)
        for seed in range(BATCH_SIZE)
    ]
    # Warm the inference path (BLAS init / buffer allocation).
    respect_scheduler.schedule(graphs[0], NUM_STAGES)
    respect_scheduler.schedule_batch(graphs[:2], NUM_STAGES)

    seq_seconds, sequential = _best_of(
        ROUNDS,
        lambda: [respect_scheduler.schedule(g, NUM_STAGES) for g in graphs],
    )
    batch_seconds, batched = _best_of(
        ROUNDS,
        lambda: respect_scheduler.schedule_batch(graphs, NUM_STAGES),
    )
    speedup = seq_seconds / batch_seconds

    for seq, bat in zip(sequential, batched):
        assert bat.schedule.assignment == seq.schedule.assignment

    table = format_table(
        ["mode", "batch wall-clock", "per-graph", "throughput"],
        [
            [
                "sequential schedule()",
                f"{seq_seconds * 1e3:.1f} ms",
                f"{seq_seconds / BATCH_SIZE * 1e3:.2f} ms",
                f"{BATCH_SIZE / seq_seconds:.0f} graphs/s",
            ],
            [
                "schedule_batch()",
                f"{batch_seconds * 1e3:.1f} ms",
                f"{batch_seconds / BATCH_SIZE * 1e3:.2f} ms",
                f"{BATCH_SIZE / batch_seconds:.0f} graphs/s",
            ],
        ],
        title=(
            f"Batched scheduling — B={BATCH_SIZE} synthetic |V|={NUM_NODES} "
            f"graphs, {NUM_STAGES} stages"
        ),
    )
    emit(
        "batched_scheduling",
        table + f"\nspeedup: {speedup:.2f}x (acceptance bar: >= 2x)",
        metrics={
            "sequential_seconds": seq_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
            "batch_size": BATCH_SIZE,
            "num_nodes": NUM_NODES,
        },
        seed=0,
    )
    assert speedup >= 2.0
