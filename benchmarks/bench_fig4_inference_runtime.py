"""Benchmark E3 — regenerate Fig. 4 (pipelined inference runtime).

Simulates all three methods' schedules on 4/5/6-stage pipelined Edge TPU
systems over the ten Table I models (1,000-inference workloads) and
prints the normalized-runtime panels.  Shape assertions encode the
paper's qualitative claims: RESPECT at or below the compiler baseline on
average, with the margin growing at 6 stages.
"""

from repro.experiments.fig4 import format_fig4, run_fig4
from repro.utils.stats import mean


def test_fig4_inference_runtime(benchmark, emit, respect_scheduler):
    rows = benchmark.pedantic(
        run_fig4, kwargs={"respect": respect_scheduler}, rounds=1, iterations=1
    )
    def avg_relative(num_stages: int) -> float:
        return mean(
            [r.relative_respect for r in rows if r.num_stages == num_stages]
        )

    # Emit before asserting so a failing run still leaves the artifacts.
    emit(
        "fig4_inference_runtime",
        format_fig4(rows),
        metrics={
            "avg_relative_respect": {
                str(stages): avg_relative(stages)
                for stages in sorted({r.num_stages for r in rows})
            },
            "best_speedup_6_stages": max(
                (r.respect_speedup for r in rows if r.num_stages == 6),
                default=None,
            ),
        },
    )
    assert len(rows) == 10 * 3

    # Paper: average RESPECT speedups of 1.06x / 1.08x / 1.65x at 4/5/6
    # stages; we assert the direction and the stage trend, not the exact
    # magnitudes (the substrate is a simulator).
    assert avg_relative(4) <= 1.05
    assert avg_relative(6) <= 1.0
    assert avg_relative(6) <= avg_relative(4) + 0.05
    # "up to ~2.5x": at least one 6-stage configuration shows >= 2x.
    best = max(r.respect_speedup for r in rows if r.num_stages == 6)
    assert best >= 2.0
