"""Benchmark E2/E7 — regenerate Fig. 3 (schedule solving-time speedups).

Measures RESPECT / compiler-proxy / ILP solving wall-clock across the ten
Table I models and 4/5/6-stage pipelines, printing the per-model series
and the headline min/max/geomean speedups the paper quotes (24-683x over
the compiler, 100-930x over the ILP; see EXPERIMENTS.md for why the
compiler column is closer here).
"""

from repro.experiments.fig3 import format_fig3, run_fig3
from repro.models import build_model
from repro.tpu.quantize import quantize_graph
from repro.utils.stats import geometric_mean


def test_fig3_solving_time(benchmark, emit, respect_scheduler):
    rows = benchmark.pedantic(
        run_fig3, kwargs={"respect": respect_scheduler}, rounds=1, iterations=1
    )
    emit(
        "fig3_solving_time",
        format_fig3(rows),
        metrics={
            "geomean_speedup_over_compiler": geometric_mean(
                [row.speedup_over_compiler for row in rows]
            ),
            "geomean_speedup_over_ilp": geometric_mean(
                [row.speedup_over_ilp for row in rows]
            ),
            "cells": len(rows),
        },
    )
    assert len(rows) == 10 * 3
    # The paper's ordering claims: RESPECT solves faster than the ILP on
    # every configuration, and faster than the profiling compiler flow
    # overall (single cells can tie or flip under machine noise — the
    # compiler's profiling search terminates early on heavy-streaming
    # models where boundary moves cannot help).
    assert all(row.speedup_over_ilp > 1.0 for row in rows)
    compiler_speedups = [row.speedup_over_compiler for row in rows]
    assert geometric_mean(compiler_speedups) > 1.0
    faster = sum(s > 1.0 for s in compiler_speedups)
    assert faster >= len(rows) * 0.5


def test_respect_inference_latency(benchmark, respect_scheduler):
    """Solving time of one RESPECT inference on the largest model."""
    graph = quantize_graph(build_model("DenseNet201"))
    result = benchmark(respect_scheduler.schedule, graph, 6)
    assert result.schedule.is_valid()
