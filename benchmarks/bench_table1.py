"""Benchmark E1 — regenerate Table I (model statistics).

Asserts the builders reproduce the paper's |V| / deg(V) / Depth exactly
and benchmarks graph-construction throughput.
"""

from repro.experiments.table1 import format_table1, run_table1
from repro.models.zoo import TABLE1_EXPECTED, build_model


def test_table1(benchmark, emit):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(
        "table1",
        format_table1(rows),
        metrics={
            "models": len(rows),
            "all_match_paper": all(row.matches_paper for row in rows),
        },
    )
    assert all(row.matches_paper for row in rows)
    assert len(rows) == len(TABLE1_EXPECTED)


def test_model_build_throughput(benchmark):
    """Construction speed of the largest evaluated graph (782 nodes)."""
    graph = benchmark(build_model, "InceptionResNetV2")
    assert graph.num_nodes == 782
