"""Benchmark — persistent schedule store: cold boot vs warm start.

The store's reason to exist is the first-N-request phase after a
deploy: a cold service must run the solver once per distinct graph,
while a service rebooted over a persisted store directory answers the
same N requests from disk.  This benchmark measures exactly that, in
the solver-bound regime (the RESPECT pointer-network decode dominates):

* **cold**: a fresh :class:`SchedulingService` over an empty store
  directory serves N distinct graphs (N solver invocations);
* **warm**: a *new* service (fresh in-memory tier, fresh process state)
  over the same directory restores and serves the identical N requests.

Acceptance bar: warm first-N wall-clock >= 10x faster than cold, with
**every** served schedule bit-identical to the cold run and zero solver
invocations in the warm phase.  Runs under pytest (full bar) or
standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_schedule_store.py --smoke
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_schedule_store.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.sampler import sample_synthetic_dag
from repro.service import SchedulingService
from repro.utils.tables import format_table

NUM_REQUESTS = 32
NUM_NODES = 30
NUM_STAGES = 4


def run_store_bench(
    scheduler,
    num_requests: int = NUM_REQUESTS,
    num_nodes: int = NUM_NODES,
):
    """Measure the cold-boot vs warm-start first-N-request phase.

    Returns ``(rendered_table, measurements)``; the warm phase is
    asserted to serve bit-identical schedules with zero solver work.
    """
    graphs = [
        sample_synthetic_dag(num_nodes=num_nodes, degree=3, seed=seed)
        for seed in range(num_requests)
    ]
    # Warm the inference path (BLAS init / buffer allocation) so the
    # cold phase measures solving, not one-time numpy setup.
    scheduler.schedule(graphs[0], NUM_STAGES)

    store_dir = Path(tempfile.mkdtemp(prefix="bench_schedule_store_"))
    try:
        # -- cold boot: every request is a fresh solve ------------------
        with SchedulingService(
            scheduler, store_dir=store_dir, batch_window_s=0.0
        ) as cold_service:
            start = time.perf_counter()
            cold = [cold_service.schedule(g, NUM_STAGES) for g in graphs]
            cold_seconds = time.perf_counter() - start
            cold_stats = cold_service.stats()
            cold_service.snapshot()
        assert cold_stats.scheduled_graphs == num_requests

        # -- warm start: a rebooted service over the same directory -----
        with SchedulingService(
            scheduler, store_dir=store_dir, batch_window_s=0.0
        ) as warm_service:
            restore_start = time.perf_counter()
            restored = warm_service.restore()
            restore_seconds = time.perf_counter() - restore_start
            start = time.perf_counter()
            warm = [warm_service.schedule(g, NUM_STAGES) for g in graphs]
            warm_seconds = time.perf_counter() - start
            warm_stats = warm_service.stats()
            disk_stats = warm_service.schedule_store.stats()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # The whole point: zero solver invocations, bit-identical schedules.
    assert warm_stats.scheduled_graphs == 0
    assert warm_stats.cache_hits == num_requests
    for before, after in zip(cold, warm):
        assert before.schedule.assignment == after.schedule.assignment
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    table = format_table(
        ["boot", "first-N wall-clock", "per-request", "solver calls"],
        [
            [
                "cold (empty store)",
                f"{cold_seconds * 1e3:.1f} ms",
                f"{cold_seconds / num_requests * 1e3:.2f} ms",
                f"{cold_stats.scheduled_graphs}",
            ],
            [
                "warm (restored store)",
                f"{warm_seconds * 1e3:.2f} ms",
                f"{warm_seconds / num_requests * 1e3:.3f} ms",
                f"{warm_stats.scheduled_graphs}",
            ],
        ],
        title=(
            f"Persistent schedule store — first {num_requests} requests, "
            f"|V|={num_nodes} graphs, {NUM_STAGES}-stage pipelines"
        ),
    )
    summary = (
        f"warm-start speedup: {speedup:.0f}x (bar: >= 10x)\n"
        f"restore: {restored} entries in {restore_seconds * 1e3:.1f} ms; "
        f"store: {disk_stats.entries} entries, "
        f"{disk_stats.segments} segment(s), "
        f"{disk_stats.corrupt_frames_skipped} corrupt frames skipped\n"
        f"every warm schedule bit-identical to its cold twin: yes"
    )
    measurements = {
        "cold_first_n_s": cold_seconds,
        "warm_first_n_s": warm_seconds,
        "warm_speedup": speedup,
        "cold_per_request_s": cold_seconds / num_requests,
        "warm_per_request_s": warm_seconds / num_requests,
        "num_requests": num_requests,
        "restored_entries": restored,
        "restore_seconds": restore_seconds,
    }
    return table + "\n" + summary, measurements


def test_warm_start_speedup(emit, respect_scheduler):
    """Full acceptance run: the >= 10x warm-start bar enforced."""
    rendered, measured = run_store_bench(respect_scheduler)
    emit(
        "schedule_store",
        rendered,
        metrics={k: v for k, v in measured.items()},
        seed=0,
    )
    assert measured["warm_speedup"] >= 10.0
    assert measured["restored_entries"] == measured["num_requests"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: fewer requests and smaller "
            "graphs; bit-identity and zero-solve are still enforced, "
            "the 10x wall-clock bar is reported but not asserted "
            "(shared CI runners are too noisy for a hard ratio)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.rl.respect import RespectScheduler

    scheduler = RespectScheduler()
    if args.smoke:
        rendered, measured = run_store_bench(
            scheduler, num_requests=8, num_nodes=15
        )
    else:
        rendered, measured = run_store_bench(scheduler)
    from bench_json import write_bench_json

    write_bench_json("schedule_store", dict(measured), seed=0)
    print(rendered)
    if not args.smoke and measured["warm_speedup"] < 10.0:
        print("FAIL: warm-start speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
