"""Benchmark E5 — imitation convergence on the synthetic recipe.

A compressed version of the paper's training setup (Sec. III): random
|V| = 30 graphs with degrees 2..6 labeled by the exact scheduler, teacher
forcing + REINFORCE.  Prints the convergence trajectory; asserts that the
policy learns to imitate (token accuracy and reward rise well above the
untrained baseline within the step budget).
"""

from repro.datasets.synthetic import generate_dataset
from repro.rl.imitation import ImitationConfig
from repro.rl.reinforce import ReinforceConfig
from repro.rl.trainer import RespectTrainingConfig, train_respect_policy
from repro.utils.tables import format_table


def _train():
    config = RespectTrainingConfig(
        dataset_size=60,
        num_nodes=16,
        hidden_size=32,
        imitation_steps=60,
        reinforce_steps=10,
        imitation=ImitationConfig(batch_size=16, seed=0),
        reinforce=ReinforceConfig(batch_size=16, seed=0, baseline="rollout"),
        seed=0,
    )
    return train_respect_policy(config)


def test_training_convergence(benchmark, emit):
    result = benchmark.pedantic(_train, rounds=1, iterations=1)
    history = result.imitation_history
    stride = max(1, len(history) // 10)
    rows = [
        [m.step, f"{m.loss:.3f}", f"{m.token_accuracy:.3f}", f"{m.grad_norm:.2f}"]
        for m in history[::stride]
    ]
    table = format_table(
        ["step", "loss", "token accuracy", "grad norm"],
        rows,
        title="E5 — imitation convergence (synthetic |V|=16 graphs)",
    )
    reinforce = result.reinforce_history
    if reinforce:
        table += (
            f"\nREINFORCE fine-tune: cost {reinforce[0].mean_cost:.4f} -> "
            f"{reinforce[-1].mean_cost:.4f} "
            f"(reward {reinforce[-1].mean_reward:.4f})"
        )
    emit(
        "training_convergence",
        table,
        metrics={
            "imitation_first_loss": history[0].loss,
            "imitation_final_loss": history[-1].loss,
            "imitation_final_token_accuracy": history[-1].token_accuracy,
            "reinforce_final_reward": reinforce[-1].mean_reward,
        },
        seed=0,
    )
    assert history[-1].loss < history[0].loss * 0.8
    assert history[-1].token_accuracy > 0.5
    assert reinforce[-1].mean_reward > 0.7
