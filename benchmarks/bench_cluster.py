"""Benchmark — fleet simulation throughput across policies and fleet sizes.

Sweeps routing policies over growing heterogeneous fleets on the
skewed-tenant scenario and reports, per (policy, fleet size) cell, the
*simulated* service quality — completed requests/sec and worst-tenant
p99 latency — plus the simulator's own wall-clock event rate (simulated
requests processed per wall second), the number that bounds how much
scenario space a fixed CI budget can explore.

Acceptance bars (full run)::

    * the SLO-aware router completes every request within SLO at every
      fleet size >= 4 and strictly beats round-robin's attainment on the
      size-4 skewed scenario;
    * two runs under the same seed produce identical FleetReports.

Runs under pytest (``pytest benchmarks/bench_cluster.py``) or standalone
for CI smoke::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

if __name__ == "__main__":  # allow `python benchmarks/bench_cluster.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import (
    FleetReport,
    build_fleet,
    default_routers,
    simulate_scenario,
)
from repro.cluster.scenarios import (
    heterogeneous_fleet,
    scenario_models,
    skewed_tenants_scenario,
)
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService
from repro.utils.tables import format_table

FLEET_SIZES = (2, 4, 8)
SEED = 0


def run_cluster_bench(
    fleet_sizes: Sequence[int] = FLEET_SIZES,
    duration_s: float = 4.0,
    load: float = 1.0,
    seed: int = SEED,
) -> Tuple[str, Dict[str, object]]:
    """Sweep routers x fleet sizes; returns (rendered table, measurements).

    Load scales with fleet size so every fleet faces proportional
    pressure; one SchedulingService is shared across all fleets, so the
    sweep also exercises cross-fleet schedule reuse.
    """
    scenario_for = {
        n: skewed_tenants_scenario(duration_s=duration_s, load=load * n / 4.0)
        for n in fleet_sizes
    }
    models = scenario_models(next(iter(scenario_for.values())))
    routers = default_routers()
    rows: List[List[object]] = []
    reports: Dict[Tuple[str, int], FleetReport] = {}
    with SchedulingService(ListScheduler()) as service:
        fleets = {
            n: build_fleet(heterogeneous_fleet(n), models, service=service)
            for n in fleet_sizes
        }
    for n in fleet_sizes:
        for router in routers:
            start = time.perf_counter()
            report = simulate_scenario(
                scenario_for[n], fleets[n], router, seed=seed
            )
            wall = time.perf_counter() - start
            reports[(router.name, n)] = report
            worst_p99 = max(t.latency_p99_s for t in report.tenants)
            rows.append(
                [
                    router.name,
                    n,
                    report.requests,
                    report.throughput_per_s,
                    1000.0 * worst_p99,
                    100.0 * report.slo_attainment,
                    f"{report.requests / wall:,.0f}",
                ]
            )
    table = format_table(
        [
            "router",
            "replicas",
            "reqs",
            "req/s (sim)",
            "worst p99 (ms)",
            "SLO%",
            "sim req/wall-s",
        ],
        rows,
        title="Fleet simulation — routing policies x fleet sizes",
    )
    build_requests = sum(
        fleet.build_stats.schedule_requests for fleet in fleets.values()
    )
    build_hits = sum(fleet.build_stats.cache_hits for fleet in fleets.values())
    # Aggregated over every fleet build against the shared service: later
    # fleets hit the already-warm cache, so this reflects the cross-fleet
    # reuse the sweep exercises, not just the first build.
    reuse_hit_rate = build_hits / build_requests if build_requests else 0.0
    measurements: Dict[str, object] = {
        "reports": reports,
        "fleet_sizes": tuple(fleet_sizes),
        "schedule_reuse_hit_rate": reuse_hit_rate,
        "metrics": {
            "schedule_reuse_hit_rate": reuse_hit_rate,
            "cells": {
                f"{router}_x{n}": {
                    "throughput_per_s": report.throughput_per_s,
                    "slo_attainment": report.slo_attainment,
                    "worst_p99_s": max(
                        t.latency_p99_s for t in report.tenants
                    ),
                }
                for (router, n), report in reports.items()
            },
        },
    }
    return table, measurements


def _replay_identical(duration_s: float, seed: int) -> bool:
    scenario = skewed_tenants_scenario(duration_s=duration_s)
    models = scenario_models(scenario)
    with SchedulingService(ListScheduler()) as service:
        fleet = build_fleet(heterogeneous_fleet(4), models, service=service)
    router = default_routers()[-1]
    first = simulate_scenario(scenario, fleet, router, seed=seed)
    second = simulate_scenario(scenario, fleet, router, seed=seed)
    return first == second


def test_cluster_routing(emit):
    """Full acceptance run: SLO-aware bars + deterministic replay."""
    rendered, measured = run_cluster_bench()
    emit("cluster", rendered, metrics=measured["metrics"], seed=SEED)
    reports = measured["reports"]
    assert (
        reports[("slo_aware", 4)].slo_attainment
        > reports[("round_robin", 4)].slo_attainment
    )
    for n in measured["fleet_sizes"]:
        if n >= 4:
            assert reports[("slo_aware", n)].slo_attainment == 1.0
    assert _replay_identical(duration_s=4.0, seed=SEED)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: one small fleet sweep over a "
            "shorter horizon; the SLO-aware-vs-round-robin bar and "
            "deterministic replay stay enforced"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rendered, measured = run_cluster_bench(
            fleet_sizes=(4,), duration_s=2.0
        )
    else:
        rendered, measured = run_cluster_bench()
    from bench_json import write_bench_json

    write_bench_json("cluster", measured["metrics"], seed=SEED)
    print(rendered)
    reports = measured["reports"]
    gap = (
        reports[("slo_aware", 4)].slo_attainment
        - reports[("round_robin", 4)].slo_attainment
    )
    print(
        f"SLO-aware vs round-robin attainment gap at 4 replicas: "
        f"{100 * gap:+.1f} pts"
    )
    print(
        f"schedule reuse during fleet builds: "
        f"{100 * measured['schedule_reuse_hit_rate']:.0f}% cache hits"
    )
    if gap <= 0:
        print("FAIL: SLO-aware did not beat round-robin", file=sys.stderr)
        return 1
    if not _replay_identical(duration_s=2.0, seed=SEED):
        print("FAIL: seeded replay was not bit-identical", file=sys.stderr)
        return 1
    print("cluster smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
