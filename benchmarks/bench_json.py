"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

Every benchmark emits, next to its rendered table under
``benchmarks/results/``, one JSON file at the repository root holding
the *numbers* (plus git revision and seed), so the performance
trajectory can be tracked across PRs by tooling instead of by reading
tables.  Writing is atomic (write-then-rename) and values are sanitized
to plain JSON types.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, Optional

#: Repository root (benchmarks/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent


def git_revision() -> Optional[str]:
    """Best-effort git revision of the working tree (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _sanitize(value):
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int,)):
        return int(value)
    try:
        number = float(value)
    except (TypeError, ValueError):
        return repr(value)
    if math.isnan(number) or math.isinf(number):
        return repr(number)
    return number


def write_bench_json(
    name: str,
    metrics: Dict[str, object],
    seed: Optional[int] = None,
    host: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root; returns its path.

    ``host`` optionally records the machine context the numbers were
    measured under (e.g. ``cpu_count``, per-regime CPU utilization) —
    essential for interpreting scaling results: a 4x bar means nothing
    without knowing the runner had 4 cores to scale onto.
    """
    payload = {
        "bench": name,
        "metrics": _sanitize(dict(metrics)),
        "git_rev": git_revision(),
        "seed": seed,
        "created_unix": time.time(),
    }
    if host is not None:
        payload["host"] = _sanitize(dict(host))
    path = REPO_ROOT / f"BENCH_{name}.json"
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


__all__ = ["REPO_ROOT", "git_revision", "write_bench_json"]
