"""Benchmark E6 — ablations of the design choices DESIGN.md calls out."""

from repro.datasets.synthetic import generate_dataset
from repro.embedding.features import EmbeddingConfig
from repro.experiments.ablations import (
    ablate_baselines,
    ablate_budget_slack,
    ablate_bus_topology,
    ablate_embedding_columns,
    ablate_postprocessing,
    ablate_reward_definitions,
)
from repro.utils.tables import format_table


def test_reward_definitions(benchmark, emit, respect_scheduler):
    """Eq. 1 vs Eq. 3 vs exact match on the pretrained policy."""
    examples = generate_dataset(24, num_nodes=30, seed=3)
    rewards = benchmark.pedantic(
        ablate_reward_definitions,
        args=(respect_scheduler.policy, examples),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["reward definition", "mean value"],
        [[k, f"{v:.4f}"] for k, v in rewards.items()],
        title="E6a — reward definitions on pretrained-policy rollouts",
    )
    emit("ablation_rewards", table, metrics=rewards, seed=3)
    # Stage cosine (the training signal) is the most forgiving, sequence
    # cosine sits between it and strict exact match.
    assert rewards["stage_cosine_eq3"] >= rewards["exact_match"]
    assert rewards["stage_cosine_eq3"] > 0.8


def test_baseline_variants(benchmark, emit):
    """Rollout baseline vs batch mean vs none: variance reduction."""
    examples = generate_dataset(20, num_nodes=10, seed=4)
    feature_dim = EmbeddingConfig().feature_dim
    out = benchmark.pedantic(
        ablate_baselines,
        kwargs={"examples": examples, "feature_dim": feature_dim, "steps": 10},
        rounds=1,
        iterations=1,
    )
    rows = [
        [kind, f"{v['final_cost']:.4f}", f"{v['advantage_std']:.4f}",
         f"{v['mean_grad_norm']:.3f}"]
        for kind, v in out.items()
    ]
    emit(
        "ablation_baselines",
        format_table(
            ["baseline", "final cost", "advantage std", "mean grad norm"],
            rows,
            title="E6b — REINFORCE baseline variants (Eq. 6)",
        ),
        metrics=out,
        seed=4,
    )
    assert out["rollout"]["advantage_std"] <= out["none"]["advantage_std"]


def test_embedding_columns(benchmark, emit):
    """Sec. III-A embedding columns: what each contributes."""
    out = benchmark.pedantic(
        ablate_embedding_columns, kwargs={"steps": 30}, rounds=1, iterations=1
    )
    emit(
        "ablation_embedding",
        format_table(
            ["embedding variant", "imitation token accuracy"],
            [[k, f"{v:.3f}"] for k, v in out.items()],
            title="E6c — embedding column ablation",
        ),
        metrics=out,
    )
    assert out["full"] > 0.4


def test_postprocessing(benchmark, emit, respect_scheduler):
    """Dependency repair: needed without the precedence mask, no-op with it."""
    out = benchmark.pedantic(
        ablate_postprocessing,
        kwargs={"respect": respect_scheduler},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            kind,
            f"{v.mean_violations_raw:.1f}",
            f"{v.mean_violations_repaired:.1f}",
            f"{v.mean_peak_bytes_raw / 1e6:.2f} MB",
            f"{v.mean_peak_bytes_repaired / 1e6:.2f} MB",
        ]
        for kind, v in out.items()
    ]
    emit(
        "ablation_postprocessing",
        format_table(
            ["decoding", "violations raw", "violations repaired",
             "peak raw", "peak repaired"],
            rows,
            title="E6d — post-inference processing ablation",
        ),
        metrics={
            kind: {
                "violations_raw": v.mean_violations_raw,
                "violations_repaired": v.mean_violations_repaired,
                "peak_bytes_raw": v.mean_peak_bytes_raw,
                "peak_bytes_repaired": v.mean_peak_bytes_repaired,
            }
            for kind, v in out.items()
        },
    )
    assert out["constrained"].mean_violations_raw == 0.0
    assert out["unconstrained"].mean_violations_repaired == 0.0


def test_bus_topology(benchmark, emit):
    """Shared host bus vs per-stage links (why contention matters)."""
    out = benchmark.pedantic(ablate_bus_topology, rounds=1, iterations=1)
    rows = [
        [method, f"{v['per_stage'] * 1e3:.3f} ms", f"{v['shared'] * 1e3:.3f} ms",
         f"{v['shared'] / v['per_stage']:.2f}x"]
        for method, v in out.items()
    ]
    emit(
        "ablation_bus_topology",
        format_table(
            ["scheduler", "per-stage links", "shared bus", "slowdown"],
            rows,
            title="E6e — USB topology ablation (ResNet50, 6 stages)",
        ),
        metrics=out,
    )
    for v in out.values():
        assert v["shared"] >= v["per_stage"] * 0.999


def test_budget_slack(benchmark, emit, respect_scheduler):
    """rho packing-budget sensitivity (fixed-share mode vs minimal)."""
    out = benchmark.pedantic(
        ablate_budget_slack,
        kwargs={"respect": respect_scheduler},
        rounds=1,
        iterations=1,
    )
    rows = [[f"{slack:.2f}", f"{peak / 1e6:.3f} MB"] for slack, peak in out.items()]
    emit(
        "ablation_budget_slack",
        format_table(
            ["budget slack", "RESPECT peak memory"],
            rows,
            title="E6f — rho budget-slack sensitivity (ResNet50, 4 stages)",
        ),
        metrics={f"{slack:.2f}": peak for slack, peak in out.items()},
    )
    assert len(out) == 5
