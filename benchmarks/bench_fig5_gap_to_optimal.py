"""Benchmark E4 — regenerate Fig. 5 (gap-to-optimal parameter caching).

Compares RESPECT's peak per-stage parameter-caching footprint against the
exact ILP optimum across the twelve Fig. 5 models and 4/5/6-stage
pipelines.  The paper reports average gaps of 2.26% / 2.74% / 6.31%; the
assertion bounds ours to the same single-digit regime.
"""

from repro.experiments.fig5 import average_gaps, format_fig5, run_fig5


def test_fig5_gap_to_optimal(benchmark, emit, respect_scheduler):
    rows = benchmark.pedantic(
        run_fig5, kwargs={"respect": respect_scheduler}, rounds=1, iterations=1
    )
    gaps = average_gaps(rows)
    # Emit before asserting so a failing run still leaves the artifacts.
    emit(
        "fig5_gap_to_optimal",
        format_fig5(rows),
        metrics={
            "average_gap_pct": {str(k): v for k, v in gaps.items()}
        },
    )
    assert len(rows) == 12 * 3
    for num_stages, gap in gaps.items():
        assert gap >= 0.0, "RESPECT cannot beat the exact optimum"
        assert gap < 10.0, (
            f"{num_stages}-stage average gap {gap:.2f}% is outside the "
            f"paper's single-digit regime"
        )
