"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure), prints
the same rows/series the paper reports (directly to the terminal, past
pytest's capture) and archives the rendered text under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.rl.respect import RespectScheduler

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def respect_scheduler() -> RespectScheduler:
    """The shipped pretrained RESPECT policy wrapped as a scheduler."""
    return RespectScheduler()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, results_dir):
    """Print a rendered artifact to the real terminal and archive it."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit
