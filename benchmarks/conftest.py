"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure), prints
the same rows/series the paper reports (directly to the terminal, past
pytest's capture), archives the rendered text under
``benchmarks/results/`` and — via the ``emit`` fixture's ``metrics``
argument — a machine-readable ``BENCH_<name>.json`` at the repository
root (see :mod:`bench_json`) so the perf trajectory is tracked across
PRs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from bench_json import write_bench_json  # noqa: E402

from repro.rl.respect import RespectScheduler  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def respect_scheduler() -> RespectScheduler:
    """The shipped pretrained RESPECT policy wrapped as a scheduler."""
    return RespectScheduler()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, results_dir):
    """Print a rendered artifact, archive it, and write its JSON twin.

    ``metrics`` (a flat-ish dict of numbers) lands in
    ``BENCH_<name>.json`` at the repo root together with the git
    revision and ``seed``; omitting it still records the run (empty
    metrics), so every benchmark leaves a machine-readable trace.
    """

    def _emit(name: str, text: str, metrics=None, seed=None, host=None) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        write_bench_json(name, metrics or {}, seed=seed, host=host)
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit
