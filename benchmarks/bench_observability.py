"""Benchmark — telemetry overhead on the cache-hit serving fast path.

The observability layer promises to be free when you don't use it: the
default ``Telemetry()`` facade (metrics-only, no tracer) backs every
``stats()`` view, and tracing is opt-in per request via sampling.  This
benchmark measures the serve-path cost of that promise on the hottest
path the service has — cache-hit serves, where ``submit()`` resolves
the future inline and the telemetry calls are the *only* non-essential
work.  Four regimes, interleaved round-robin so machine drift hits all
of them equally:

* **metrics_only** — the no-op default facade every service gets;
* **tracing_unsampled** — tracer installed, ``sample_rate=0.0``: the
  cost of *having* tracing on when this request is not sampled (one
  sampling decision, then the no-op span path);
* **tracing_10pct** — ``sample_rate=0.1``, the documented production
  setting: 1 in 10 requests builds and exports a full span tree;
* **tracing_full** — ``sample_rate=1.0``, the worst case (every
  request traced); reported for visibility, not a production config.

Acceptance bar: production tracing (10% sampling) costs < 5% of
cache-hit p50 over metrics-only, and the unsampled path is ~0%
(asserted with the same 5% slack in the pytest run — shared runners
are too noisy for a tighter ratio).  A registry microbenchmark
(counter inc / histogram observe per-op ns) is reported alongside.
Standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_observability.py --smoke
"""

from __future__ import annotations

import gc
import statistics
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_observability.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.sampler import sample_synthetic_dag
from repro.obs import InMemorySpanExporter, Telemetry
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService
from repro.utils.tables import format_table

NUM_GRAPHS = 16
NUM_NODES = 30  # the paper's evaluation graph size
NUM_STAGES = 4
ROUNDS = 200
MICRO_OPS = 50_000

ASSERTED_REGIMES = ("tracing_unsampled", "tracing_10pct")


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _regimes():
    return {
        "metrics_only": Telemetry(),
        "tracing_unsampled": Telemetry.with_tracing(
            InMemorySpanExporter(), sample_rate=0.0
        ),
        "tracing_10pct": Telemetry.with_tracing(
            InMemorySpanExporter(), sample_rate=0.1, seed=0
        ),
        "tracing_full": Telemetry.with_tracing(
            InMemorySpanExporter(), sample_rate=1.0
        ),
    }


def _measure_registry_micro(ops=MICRO_OPS):
    """Per-op nanoseconds for the two hot registry instruments."""
    telemetry = Telemetry()
    counter = telemetry.counter("bench_total")
    histogram = telemetry.histogram("bench_seconds")
    start = time.perf_counter()
    for _ in range(ops):
        counter.inc()
    counter_ns = (time.perf_counter() - start) / ops * 1e9
    start = time.perf_counter()
    for _ in range(ops):
        histogram.observe(0.001)
    observe_ns = (time.perf_counter() - start) / ops * 1e9
    return {"counter_inc_ns": counter_ns, "histogram_observe_ns": observe_ns}


def run_observability_bench(num_graphs=NUM_GRAPHS, rounds=ROUNDS):
    graphs = [
        sample_synthetic_dag(num_nodes=NUM_NODES, degree=3, seed=seed)
        for seed in range(num_graphs)
    ]
    regimes = _regimes()
    services = {
        name: SchedulingService(
            ListScheduler(), telemetry=telemetry, batch_window_s=0.0
        )
        for name, telemetry in regimes.items()
    }
    samples = {name: [] for name in regimes}
    try:
        for service in services.values():  # fill caches; misses unmeasured
            for graph in graphs:
                service.schedule(graph, NUM_STAGES)
        # Interleave: each round serves every regime back to back, so
        # thermal/allocator drift lands on all regimes equally instead
        # of biasing whichever regime runs last.  One sample is a whole
        # round (num_graphs serves): single-serve timings at ~100 us
        # have +-3% scheduler jitter, more than the overheads under
        # test, while round timings average it out.  GC off during the
        # timed region: collection pauses triggered by one regime's
        # allocations must not land in another regime's sample.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(rounds):
                for name, service in services.items():
                    start = time.perf_counter()
                    for graph in graphs:
                        service.schedule(graph, NUM_STAGES)
                    samples[name].append(
                        (time.perf_counter() - start) / num_graphs
                    )
        finally:
            if gc_was_enabled:
                gc.enable()
        for name, service in services.items():
            stats = service.stats()
            assert stats.cache_hits == num_graphs * rounds, name
    finally:
        for service in services.values():
            service.close()

    measured = {
        name: {
            "p50_s": statistics.median(regime_samples),
            "p99_s": _percentile(regime_samples, 99),
            "mean_s": statistics.fmean(regime_samples),
        }
        for name, regime_samples in samples.items()
    }
    base = measured["metrics_only"]["p50_s"]
    overheads = {
        name: measured[name]["p50_s"] / base - 1.0
        for name in regimes
        if name != "metrics_only"
    }
    micro = _measure_registry_micro()

    table = format_table(
        ["regime", "p50", "p99", "p50 overhead"],
        [
            [
                name,
                f"{m['p50_s'] * 1e6:.1f} us",
                f"{m['p99_s'] * 1e6:.1f} us",
                "baseline"
                if name == "metrics_only"
                else f"{overheads[name] * 100.0:+.1f}%",
            ]
            for name, m in measured.items()
        ],
        title=(
            f"Telemetry overhead — cache-hit serves, {num_graphs} graphs "
            f"(|V|={NUM_NODES}) x {rounds} interleaved rounds "
            f"(bar: 10%-sampled < +5% p50, unsampled ~ 0%)"
        ),
    )
    summary = (
        f"registry microbench: counter.inc {micro['counter_inc_ns']:.0f} "
        f"ns/op, histogram.observe {micro['histogram_observe_ns']:.0f} ns/op"
    )
    metrics = {
        "unsampled_p50_overhead_frac": overheads["tracing_unsampled"],
        "sampled_p50_overhead_frac": overheads["tracing_10pct"],
        "full_p50_overhead_frac": overheads["tracing_full"],
        "metrics_only_p50_s": measured["metrics_only"]["p50_s"],
        "tracing_unsampled_p50_s": measured["tracing_unsampled"]["p50_s"],
        "tracing_10pct_p50_s": measured["tracing_10pct"]["p50_s"],
        "tracing_full_p50_s": measured["tracing_full"]["p50_s"],
        "counter_inc_ns": micro["counter_inc_ns"],
        "histogram_observe_ns": micro["histogram_observe_ns"],
        "num_requests": num_graphs * rounds,
    }
    return table + "\n" + summary, metrics


def test_telemetry_overhead(emit):
    """Full acceptance run: the < 5% p50 tracing-overhead bar enforced."""
    rendered, measured = run_observability_bench()
    emit("observability", rendered, metrics=dict(measured), seed=0)
    # Production tracing (10% sampling) stays inside the 5% p50 bar;
    # the unsampled path's honest claim is ~0%, asserted with the same
    # slack because shared runners are noisy.
    assert measured["sampled_p50_overhead_frac"] < 0.05
    assert measured["unsampled_p50_overhead_frac"] < 0.05


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: fewer rounds; overheads are "
            "reported but the 5% bar is not asserted (shared CI "
            "runners are too noisy for a hard ratio)"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rendered, measured = run_observability_bench(num_graphs=8, rounds=20)
    else:
        rendered, measured = run_observability_bench()
    from bench_json import write_bench_json

    write_bench_json("observability", dict(measured), seed=0)
    print(rendered)
    if not args.smoke and measured["sampled_p50_overhead_frac"] >= 0.05:
        print(
            "FAIL: 10%-sampled tracing p50 overhead above 5%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
