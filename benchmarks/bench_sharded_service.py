"""Benchmark — the sharded serving tier under a 64-client load test.

Drives a 64-client load generator against
:class:`~repro.service.ShardedSchedulingService` at 1, 2 and 4 shards
and measures **aggregate throughput scaling**.  Two solver regimes:

* **solver-bound** — each solve occupies the shard's worker for a fixed
  wall-clock slice without holding the GIL, modeling the out-of-process
  backends a production tier fronts (ILP solver, edgetpu-compiler
  invocation, accelerator round-trip).  A single worker serializes
  those occupancies; N shards overlap them — this is the regime
  sharding targets, and the >= 2x (1 -> 4 shards) acceptance bar is
  asserted here.
* **respect policy** — the in-process numpy pointer-network decode.
  Shard scaling is reported but not asserted: a pure-python/numpy solve
  is GIL-bound, so its scaling is a property of the host's cores, not
  of the tier (on a 1-core CI runner it is ~1x by construction).

Every configuration asserts **bit-identical schedules**: sharded
results must equal the single-shard service's results and direct
``scheduler.schedule`` calls.  A backpressure round additionally runs
the 4-shard tier with a tiny per-shard queue depth under the ``block``
admission policy and asserts nothing is lost.

Runs under pytest (full acceptance bars) or standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_sharded_service.py --smoke
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_sharded_service.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.heuristics import ListScheduler
from repro.service import ShardedSchedulingService
from repro.utils.tables import format_table

NUM_CLIENTS = 64
NUM_NODES = 12
NUM_STAGES = 4
REQUESTS_PER_CLIENT = 4
SHARD_COUNTS = (1, 2, 4)
#: Worker occupancy per solve in the solver-bound regime (wall-clock a
#: backend holds the shard worker; no GIL, no CPU).
SOLVE_OCCUPANCY_S = 0.002


class ExternalSolverScheduler:
    """Deterministic scheduler modeling an out-of-process backend.

    Produces :class:`ListScheduler` schedules, but each solve first
    occupies the calling worker for ``occupancy_s`` of wall-clock
    (``time.sleep`` releases the GIL — exactly how a subprocess ILP
    solver or an edgetpu-compiler call behaves from the worker's point
    of view).  Deterministic, so sharded results stay bit-identical.
    """

    method_name = "external_solver"

    def __init__(self, occupancy_s: float = SOLVE_OCCUPANCY_S):
        self.occupancy_s = occupancy_s
        self._inner = ListScheduler()

    def schedule(self, graph, num_stages):
        time.sleep(self.occupancy_s)
        return self._inner.schedule(graph, num_stages)

    def schedule_batch(self, graphs, stage_counts):
        time.sleep(self.occupancy_s * len(graphs))
        return [
            self._inner.schedule(g, s) for g, s in zip(graphs, stage_counts)
        ]


def _make_graphs(count: int, num_nodes: int):
    return [
        sample_synthetic_dag(num_nodes=num_nodes, degree=3, seed=seed)
        for seed in range(count)
    ]


def _drive_load(service, graphs, num_clients: int):
    """64-client load generator: each client serves its request slice."""
    results = [None] * len(graphs)

    def client(slot: int):
        for i in range(slot, len(graphs), num_clients):
            results[i] = service.schedule(graphs[i], NUM_STAGES)

    start = time.perf_counter()
    with ThreadPoolExecutor(num_clients) as pool:
        futures = [pool.submit(client, slot) for slot in range(num_clients)]
        for future in futures:
            future.result()
    elapsed = time.perf_counter() - start
    return elapsed, results


def _assert_identical(reference, results):
    for ref, res in zip(reference, results):
        assert res.schedule.assignment == ref.schedule.assignment, (
            "sharded schedule differs from the reference"
        )


def run_sharded_bench(
    scheduler_factory,
    num_clients: int = NUM_CLIENTS,
    num_nodes: int = NUM_NODES,
    requests_per_client: int = REQUESTS_PER_CLIENT,
    max_batch_size: int = 16,
    label: str = "solver-bound",
):
    """Throughput at 1/2/4 shards + equivalence; returns (table, metrics).

    Every request in a round is a distinct graph (no cache hits), so the
    measured scaling is pure sharding, not caching.
    """
    graphs = _make_graphs(num_clients * requests_per_client, num_nodes)
    reference_scheduler = scheduler_factory()
    reference = [
        reference_scheduler.schedule(g, NUM_STAGES) for g in graphs
    ]

    throughput = {}
    stats_by_shards = {}
    for num_shards in SHARD_COUNTS:
        with ShardedSchedulingService(
            scheduler_factory(),
            num_shards=num_shards,
            max_queue_depth=len(graphs),  # admission out of the picture
            max_batch_size=max_batch_size,
            batch_window_s=0.001,
        ) as service:
            elapsed, results = _drive_load(service, graphs, num_clients)
            _assert_identical(reference, results)
            throughput[num_shards] = len(graphs) / elapsed
            stats_by_shards[num_shards] = service.stats()

    # Backpressure round: tiny queue depth, block policy — slower by
    # design, but nothing may be lost or served non-identically.
    with ShardedSchedulingService(
        scheduler_factory(),
        num_shards=4,
        max_queue_depth=4,
        admission="block",
        max_batch_size=max_batch_size,
        batch_window_s=0.001,
    ) as service:
        _, results = _drive_load(service, graphs, num_clients)
        _assert_identical(reference, results)
        blocked = service.stats().blocked

    scaling_2 = throughput[2] / throughput[1]
    scaling_4 = throughput[4] / throughput[1]
    stats4 = stats_by_shards[4]
    rows = [
        [
            f"{n} shard{'s' if n > 1 else ''}",
            f"{throughput[n]:.0f} req/s",
            f"{throughput[n] / throughput[1]:.2f}x",
            f"{stats_by_shards[n].mean_batch_size:.1f}",
            f"{stats_by_shards[n].latency_p99_s * 1e3:.1f} ms",
        ]
        for n in SHARD_COUNTS
    ]
    table = format_table(
        ["tier", "throughput", "scaling", "mean batch", "p99 latency"],
        rows,
        title=(
            f"Sharded serving ({label}) — {num_clients} clients, "
            f"{len(graphs)} distinct |V|={num_nodes} graphs, "
            f"{NUM_STAGES}-stage pipelines"
        ),
    )
    summary = (
        f"aggregate throughput scaling 1->4 shards: {scaling_4:.2f}x "
        f"(bar: >= 2x, solver-bound regime)\n"
        f"schedules bit-identical across 1/2/4 shards and direct calls; "
        f"backpressure round (depth 4, block): {blocked} blocked "
        f"admissions, zero lost requests"
    )
    metrics = {
        "throughput_1_shard_req_s": throughput[1],
        "throughput_2_shards_req_s": throughput[2],
        "throughput_4_shards_req_s": throughput[4],
        "scaling_1_to_2": scaling_2,
        "scaling_1_to_4": scaling_4,
        "mean_batch_size_4_shards": stats4.mean_batch_size,
        "latency_p50_s_4_shards": stats4.latency_p50_s,
        "latency_p99_s_4_shards": stats4.latency_p99_s,
        "blocked_admissions_backpressure_round": blocked,
    }
    return table + "\n" + summary, metrics


def run_full(num_clients=NUM_CLIENTS, requests_per_client=REQUESTS_PER_CLIENT):
    """Both regimes; returns (rendered, combined_metrics)."""
    solver_table, solver_metrics = run_sharded_bench(
        ExternalSolverScheduler,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        label="solver-bound",
    )

    from repro.rl.respect import RespectScheduler

    respect = RespectScheduler()
    respect_table, respect_metrics = run_sharded_bench(
        lambda: respect,  # weights are read-only: share across shards
        num_clients=num_clients,
        num_nodes=NUM_NODES,
        requests_per_client=max(1, requests_per_client // 2),
        label="respect policy",
    )
    metrics = {f"solver_{k}": v for k, v in solver_metrics.items()}
    metrics.update({f"respect_{k}": v for k, v in respect_metrics.items()})
    rendered = (
        solver_table
        + "\n\n"
        + respect_table
        + "\n(respect-policy scaling is host-core-bound; reported, not "
        "asserted)"
    )
    return rendered, metrics


def test_sharded_service_throughput(emit):
    """Full acceptance run: the solver-bound >= 2x scaling bar."""
    rendered, metrics = run_full()
    emit("sharded_service", rendered, metrics=metrics, seed=0)
    assert metrics["solver_scaling_1_to_4"] >= 2.0
    assert metrics["solver_scaling_1_to_2"] >= 1.2
    assert metrics["solver_blocked_admissions_backpressure_round"] > 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: 16 clients, fewer requests; "
            "equivalence stays asserted everywhere, the solver-bound "
            "scaling bar relaxes to 1.5x (shared CI runners are noisy)"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rendered, metrics = run_full(num_clients=16, requests_per_client=2)
        bar = 1.5
    else:
        rendered, metrics = run_full()
        bar = 2.0
    from bench_json import write_bench_json

    write_bench_json("sharded_service", metrics, seed=0)
    print(rendered)
    if metrics["solver_scaling_1_to_4"] < bar:
        print(
            f"FAIL: solver-bound 1->4 shard scaling "
            f"{metrics['solver_scaling_1_to_4']:.2f}x below {bar}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
