"""Benchmark — the sharded serving tier under a 64-client load test.

Drives a 64-client load generator against
:class:`~repro.service.ShardedSchedulingService` at 1, 2 and 4 shards
and measures **aggregate throughput scaling**.  Three serving regimes:

* **solver-bound** — each solve occupies the shard's worker for a fixed
  wall-clock slice without holding the GIL, modeling the out-of-process
  backends a production tier fronts (ILP solver, edgetpu-compiler
  invocation, accelerator round-trip).  A single worker serializes
  those occupancies; N shards overlap them — the >= 2x (1 -> 4 shards)
  acceptance bar is asserted here.
* **respect policy (in-process)** — the numpy pointer-network decode on
  the shard workers' own threads.  Shard scaling is reported but not
  asserted: an in-process numpy solve is GIL-bound, so its scaling is a
  property of the host's cores, not of the tier.
* **respect policy (decode workers)** — the same traffic with the
  decode dispatched to one shared 4-process
  :class:`~repro.service.DecodeWorkerPool` (the ``decode_workers``
  serving mode).  This is the regime that breaks the GIL ceiling: on a
  host with >= 4 cores the 1 -> 4 shard scaling bar (>= 2x) is asserted;
  on smaller runners it is reported (there is nothing to scale onto).

A **vectorized-decode attribution cell** additionally times the raw
batched decode with ``use_vectorized_decode`` off vs on (no services,
no workers) so the single-core vectorization win is attributed
separately from the multiprocess win.

Every regime measures **process CPU utilization** (self + reaped
children CPU over the regime's wall-clock, via ``os.times``) — the
number that shows whether a scaling figure was core-starved or truly
saturated — and records it, with the host core count, in
``BENCH_sharded_service.json``.

Every configuration asserts **bit-identical schedules**: sharded
results must equal the single-shard service's results and direct
``scheduler.schedule`` calls — including the decode-worker regime.  A
backpressure round additionally runs the 4-shard tier with a tiny
per-shard queue depth under the ``block`` admission policy and asserts
nothing is lost.

Runs under pytest (full acceptance bars) or standalone for CI smoke::

    PYTHONPATH=src python benchmarks/bench_sharded_service.py --smoke
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_sharded_service.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.heuristics import ListScheduler
from repro.service import ShardedSchedulingService
from repro.utils.tables import format_table

NUM_CLIENTS = 64
NUM_NODES = 12
NUM_STAGES = 4
REQUESTS_PER_CLIENT = 4
SHARD_COUNTS = (1, 2, 4)
#: Worker occupancy per solve in the solver-bound regime (wall-clock a
#: backend holds the shard worker; no GIL, no CPU).
SOLVE_OCCUPANCY_S = 0.002
#: Decode worker processes in the worker-decode regime.
DECODE_WORKERS = 4


class ExternalSolverScheduler:
    """Deterministic scheduler modeling an out-of-process backend.

    Produces :class:`ListScheduler` schedules, but each solve first
    occupies the calling worker for ``occupancy_s`` of wall-clock
    (``time.sleep`` releases the GIL — exactly how a subprocess ILP
    solver or an edgetpu-compiler call behaves from the worker's point
    of view).  Deterministic, so sharded results stay bit-identical.
    """

    method_name = "external_solver"

    def __init__(self, occupancy_s: float = SOLVE_OCCUPANCY_S):
        self.occupancy_s = occupancy_s
        self._inner = ListScheduler()

    def schedule(self, graph, num_stages):
        time.sleep(self.occupancy_s)
        return self._inner.schedule(graph, num_stages)

    def schedule_batch(self, graphs, stage_counts):
        time.sleep(self.occupancy_s * len(graphs))
        return [
            self._inner.schedule(g, s) for g, s in zip(graphs, stage_counts)
        ]


class _CpuWindow:
    """Process CPU (self + reaped children) vs wall-clock over a block.

    Child CPU is only charged to ``os.times`` once a child is *reaped*,
    so regimes running decode worker processes must close their pool
    inside the window for the workers' cycles to be counted.
    """

    def __enter__(self):
        self._wall0 = time.perf_counter()
        self._cpu0 = os.times()
        return self

    def __exit__(self, *exc_info):
        c0, c1 = self._cpu0, os.times()
        self.wall_s = time.perf_counter() - self._wall0
        self.process_cpu_s = (c1.user - c0.user) + (c1.system - c0.system)
        self.children_cpu_s = (c1.children_user - c0.children_user) + (
            c1.children_system - c0.children_system
        )
        total = self.process_cpu_s + self.children_cpu_s
        self.utilization = total / self.wall_s if self.wall_s > 0 else 0.0

    def metrics(self, prefix: str) -> dict:
        return {
            f"{prefix}_wall_s": self.wall_s,
            f"{prefix}_process_cpu_s": self.process_cpu_s,
            f"{prefix}_children_cpu_s": self.children_cpu_s,
            f"{prefix}_cpu_utilization": self.utilization,
        }


def _make_graphs(count: int, num_nodes: int):
    return [
        sample_synthetic_dag(num_nodes=num_nodes, degree=3, seed=seed)
        for seed in range(count)
    ]


def _drive_load(service, graphs, num_clients: int):
    """64-client load generator: each client serves its request slice."""
    results = [None] * len(graphs)

    def client(slot: int):
        for i in range(slot, len(graphs), num_clients):
            results[i] = service.schedule(graphs[i], NUM_STAGES)

    start = time.perf_counter()
    with ThreadPoolExecutor(num_clients) as pool:
        futures = [pool.submit(client, slot) for slot in range(num_clients)]
        for future in futures:
            future.result()
    elapsed = time.perf_counter() - start
    return elapsed, results


def _assert_identical(reference, results):
    for ref, res in zip(reference, results):
        assert res.schedule.assignment == ref.schedule.assignment, (
            "sharded schedule differs from the reference"
        )


def run_sharded_bench(
    scheduler_factory,
    num_clients: int = NUM_CLIENTS,
    num_nodes: int = NUM_NODES,
    requests_per_client: int = REQUESTS_PER_CLIENT,
    max_batch_size: int = 16,
    label: str = "solver-bound",
    decode_pool=None,
):
    """Throughput at 1/2/4 shards + equivalence; returns (table, metrics).

    Every request in a round is a distinct graph (no cache hits), so the
    measured scaling is pure sharding, not caching.  ``decode_pool``
    routes every shard's policy decode through one shared
    :class:`~repro.service.DecodeWorkerPool` (the pool outlives the
    per-cell services; the caller owns and closes it).
    """
    graphs = _make_graphs(num_clients * requests_per_client, num_nodes)
    reference_scheduler = scheduler_factory()
    reference = [
        reference_scheduler.schedule(g, NUM_STAGES) for g in graphs
    ]

    if decode_pool is not None:
        # Warm-up round: the pool lazily spawns its workers on first
        # use and each worker imports numpy + loads weights once.  Pay
        # that cold start here so the timed cells measure steady-state
        # decode, not process startup.
        with ShardedSchedulingService(
            scheduler_factory(),
            num_shards=1,
            max_queue_depth=len(graphs),
            max_batch_size=1,  # one task per graph: touch every worker
            batch_window_s=0.0,
            decode_pool=decode_pool,
        ) as warmup:
            _drive_load(warmup, graphs[: 4 * DECODE_WORKERS], num_clients)

    throughput = {}
    stats_by_shards = {}
    for num_shards in SHARD_COUNTS:
        with ShardedSchedulingService(
            scheduler_factory(),
            num_shards=num_shards,
            max_queue_depth=len(graphs),  # admission out of the picture
            max_batch_size=max_batch_size,
            batch_window_s=0.001,
            decode_pool=decode_pool,
        ) as service:
            elapsed, results = _drive_load(service, graphs, num_clients)
            _assert_identical(reference, results)
            throughput[num_shards] = len(graphs) / elapsed
            stats_by_shards[num_shards] = service.stats()

    # Backpressure round: tiny queue depth, block policy — slower by
    # design, but nothing may be lost or served non-identically.
    with ShardedSchedulingService(
        scheduler_factory(),
        num_shards=4,
        max_queue_depth=4,
        admission="block",
        max_batch_size=max_batch_size,
        batch_window_s=0.001,
        decode_pool=decode_pool,
    ) as service:
        _, results = _drive_load(service, graphs, num_clients)
        _assert_identical(reference, results)
        blocked = service.stats().blocked

    scaling_2 = throughput[2] / throughput[1]
    scaling_4 = throughput[4] / throughput[1]
    stats4 = stats_by_shards[4]
    rows = [
        [
            f"{n} shard{'s' if n > 1 else ''}",
            f"{throughput[n]:.0f} req/s",
            f"{throughput[n] / throughput[1]:.2f}x",
            f"{stats_by_shards[n].mean_batch_size:.1f}",
            f"{stats_by_shards[n].latency_p99_s * 1e3:.1f} ms",
        ]
        for n in SHARD_COUNTS
    ]
    table = format_table(
        ["tier", "throughput", "scaling", "mean batch", "p99 latency"],
        rows,
        title=(
            f"Sharded serving ({label}) — {num_clients} clients, "
            f"{len(graphs)} distinct |V|={num_nodes} graphs, "
            f"{NUM_STAGES}-stage pipelines"
        ),
    )
    summary = (
        f"aggregate throughput scaling 1->4 shards: {scaling_4:.2f}x\n"
        f"schedules bit-identical across 1/2/4 shards and direct calls; "
        f"backpressure round (depth 4, block): {blocked} blocked "
        f"admissions, zero lost requests"
    )
    metrics = {
        "throughput_1_shard_req_s": throughput[1],
        "throughput_2_shards_req_s": throughput[2],
        "throughput_4_shards_req_s": throughput[4],
        "scaling_1_to_2": scaling_2,
        "scaling_1_to_4": scaling_4,
        "mean_batch_size_4_shards": stats4.mean_batch_size,
        "latency_p50_s_4_shards": stats4.latency_p50_s,
        "latency_p99_s_4_shards": stats4.latency_p99_s,
        "blocked_admissions_backpressure_round": blocked,
    }
    return table + "\n" + summary, metrics


def run_vectorized_attribution(batch_size: int = 32, num_nodes: int = NUM_NODES):
    """Raw batched decode: legacy unroll vs vectorized path (workers=0).

    Attributes the single-core vectorization win separately from the
    multiprocess win: same weights, same graphs, no services — just
    ``schedule_batch`` with ``use_vectorized_decode`` off vs on, with
    bit-identical schedules asserted.
    """
    from repro.rl.respect import RespectScheduler

    graphs = _make_graphs(batch_size, num_nodes)
    legacy = RespectScheduler(use_vectorized_decode=False)
    vectorized = RespectScheduler(use_vectorized_decode=True)
    # One warm-up pass each (BLAS thread pools, allocator) so the timed
    # passes compare steady-state decodes.
    legacy.schedule_batch(graphs[:4], NUM_STAGES)
    vectorized.schedule_batch(graphs[:4], NUM_STAGES)
    t0 = time.perf_counter()
    legacy_results = legacy.schedule_batch(graphs, NUM_STAGES)
    legacy_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    vector_results = vectorized.schedule_batch(graphs, NUM_STAGES)
    vector_s = time.perf_counter() - t0
    _assert_identical(legacy_results, vector_results)
    speedup = legacy_s / vector_s if vector_s > 0 else 0.0
    text = (
        f"Vectorized decode attribution (workers=0, batch={batch_size}, "
        f"|V|={num_nodes}): legacy {legacy_s * 1e3:.1f} ms, vectorized "
        f"{vector_s * 1e3:.1f} ms ({speedup:.2f}x), schedules bit-identical"
    )
    metrics = {
        "vectorized_batch_size": batch_size,
        "vectorized_legacy_s": legacy_s,
        "vectorized_vectorized_s": vector_s,
        "vectorized_speedup": speedup,
    }
    return text, metrics


def host_info() -> dict:
    """Host context for the JSON artifact (scaling needs cores)."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": sys.platform,
        "decode_workers": DECODE_WORKERS,
    }


def worker_scaling_asserted() -> bool:
    """Is the decode-worker >= 2x scaling bar meaningful on this host?

    With fewer than 4 cores there is nothing for 4 shards + 4 decode
    workers to scale onto — the regime is then reported, not asserted
    (the CPU-utilization metrics make the saturation visible either
    way).
    """
    return (os.cpu_count() or 1) >= 4


def run_full(num_clients=NUM_CLIENTS, requests_per_client=REQUESTS_PER_CLIENT):
    """All regimes; returns (rendered, combined_metrics)."""
    from repro.rl.respect import RespectScheduler
    from repro.service import DecodeWorkerPool

    with _CpuWindow() as solver_cpu:
        solver_table, solver_metrics = run_sharded_bench(
            ExternalSolverScheduler,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            label="solver-bound",
        )

    respect = RespectScheduler()
    respect_requests = max(1, requests_per_client // 2)
    with _CpuWindow() as respect_cpu:
        respect_table, respect_metrics = run_sharded_bench(
            lambda: respect,  # weights are read-only: share across shards
            num_clients=num_clients,
            num_nodes=NUM_NODES,
            requests_per_client=respect_requests,
            label="respect policy, in-process decode",
        )

    # Decode-worker regime: one shared 4-process pool across every
    # shard-count cell; closed inside the CPU window so the workers'
    # cycles are reaped into the children CPU reading.
    with _CpuWindow() as workers_cpu:
        pool = DecodeWorkerPool(DECODE_WORKERS)
        try:
            workers_table, workers_metrics = run_sharded_bench(
                lambda: respect,
                num_clients=num_clients,
                num_nodes=NUM_NODES,
                requests_per_client=respect_requests,
                label=f"respect policy, {DECODE_WORKERS} decode workers",
                decode_pool=pool,
            )
        finally:
            pool.close()

    vector_text, vector_metrics = run_vectorized_attribution()

    metrics = {f"solver_{k}": v for k, v in solver_metrics.items()}
    metrics.update({f"respect_{k}": v for k, v in respect_metrics.items()})
    metrics.update(
        {f"respect_workers_{k}": v for k, v in workers_metrics.items()}
    )
    metrics.update(vector_metrics)
    metrics.update(solver_cpu.metrics("solver"))
    metrics.update(respect_cpu.metrics("respect"))
    metrics.update(workers_cpu.metrics("respect_workers"))
    metrics["host_cpu_count"] = os.cpu_count()
    metrics["worker_scaling_asserted"] = worker_scaling_asserted()

    def cpu_line(name, window):
        return (
            f"{name}: {window.utilization:.2f} cores busy over "
            f"{window.wall_s:.1f} s (self {window.process_cpu_s:.1f} s + "
            f"children {window.children_cpu_s:.1f} s CPU)"
        )

    rendered = (
        solver_table
        + "\n\n"
        + respect_table
        + "\n(in-process respect scaling is GIL/host-core-bound; "
        "reported, not asserted)"
        + "\n\n"
        + workers_table
        + "\n(decode-worker scaling bar >= 2x asserted only on hosts "
        f"with >= 4 cores; this host has {os.cpu_count()})"
        + "\n\n"
        + vector_text
        + "\n\nCPU utilization per regime "
        f"(host: {os.cpu_count()} core(s)):\n"
        + "\n".join(
            [
                cpu_line("  solver-bound        ", solver_cpu),
                cpu_line("  respect in-process  ", respect_cpu),
                cpu_line("  respect decode-pool ", workers_cpu),
            ]
        )
    )
    return rendered, metrics


def test_sharded_service_throughput(emit):
    """Full acceptance run: the solver-bound >= 2x scaling bar."""
    rendered, metrics = run_full()
    emit(
        "sharded_service",
        rendered,
        metrics=metrics,
        seed=0,
        host=host_info(),
    )
    assert metrics["solver_scaling_1_to_4"] >= 2.0
    assert metrics["solver_scaling_1_to_2"] >= 1.2
    assert metrics["solver_blocked_admissions_backpressure_round"] > 0
    assert metrics["vectorized_speedup"] > 0.0
    if worker_scaling_asserted():
        assert metrics["respect_workers_scaling_1_to_4"] >= 2.0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced CI configuration: 16 clients, fewer requests; "
            "equivalence stays asserted everywhere, the solver-bound "
            "scaling bar relaxes to 1.5x (shared CI runners are noisy)"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rendered, metrics = run_full(num_clients=16, requests_per_client=2)
        bar = 1.5
    else:
        rendered, metrics = run_full()
        bar = 2.0
    from bench_json import write_bench_json

    write_bench_json("sharded_service", metrics, seed=0, host=host_info())
    print(rendered)
    if metrics["solver_scaling_1_to_4"] < bar:
        print(
            f"FAIL: solver-bound 1->4 shard scaling "
            f"{metrics['solver_scaling_1_to_4']:.2f}x below {bar}x",
            file=sys.stderr,
        )
        return 1
    if worker_scaling_asserted() and (
        metrics["respect_workers_scaling_1_to_4"] < bar
    ):
        print(
            f"FAIL: decode-worker 1->4 shard scaling "
            f"{metrics['respect_workers_scaling_1_to_4']:.2f}x below "
            f"{bar}x on a {os.cpu_count()}-core host",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
