"""AnytimePortfolio racing, cancellation hooks, and fault injection."""

import time

import pytest

from repro.errors import SchedulingError, SolverError
from repro.graphs.sampler import sample_synthetic_dag
from repro.obs import Telemetry
from repro.portfolio import AnytimePortfolio, PortfolioLane, StopToken
from repro.scheduling.annealing import SimulatedAnnealingScheduler
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.quantize import quantize_graph

#: Single-core CI hosts schedule threads coarsely; answers promised
#: "at the deadline" are asserted within this much total wall clock.
GENEROUS_SLACK_S = 5.0


def _graph(seed=0, num_nodes=16):
    return quantize_graph(
        sample_synthetic_dag(num_nodes=num_nodes, degree=2, seed=seed)
    )


class _HangingScheduler:
    """A lane that never finishes (until the race's stop flag fires)."""

    def __init__(self, should_stop):
        self._should_stop = should_stop

    def schedule(self, graph, num_stages):
        while not self._should_stop():
            time.sleep(0.005)
        raise SolverError("hung lane cancelled")


class _ExplodingScheduler:
    def schedule(self, graph, num_stages):
        raise SolverError("boom")


class TestStopToken:
    def test_starts_unstopped_and_latches(self):
        token = StopToken()
        assert not token()
        token.stop()
        assert token() and token.stopped()


class TestCancellationHooks:
    def test_annealing_stops_immediately_with_incumbent(self):
        result = SimulatedAnnealingScheduler(
            iterations=50_000, seed=0, should_stop=lambda: True
        ).schedule(_graph(), 3)
        assert result.status == "interrupted"
        assert result.extras["stopped_early"] is True
        assert result.extras["iterations_run"] == 0
        assert result.schedule.is_valid()

    def test_annealing_never_cancelled_is_bit_identical(self):
        graph = _graph(seed=1)
        plain = SimulatedAnnealingScheduler(iterations=400, seed=7).schedule(
            graph, 3
        )
        hooked = SimulatedAnnealingScheduler(
            iterations=400, seed=7, should_stop=lambda: False
        ).schedule(graph, 3)
        assert plain.schedule.assignment == hooked.schedule.assignment
        assert plain.objective == hooked.objective

    def test_bnb_interrupts_with_warm_start_incumbent(self):
        result = BranchAndBoundScheduler(
            objective="weighted", should_stop=lambda: True
        ).schedule(_graph(num_nodes=18, seed=2), 3)
        assert result.status == "interrupted"
        assert result.extras["stopped_early"] is True
        assert result.schedule.is_valid()

    def test_bnb_never_cancelled_is_bit_identical(self):
        graph = _graph(num_nodes=12, seed=3)
        plain = BranchAndBoundScheduler(objective="weighted").schedule(graph, 3)
        hooked = BranchAndBoundScheduler(
            objective="weighted", should_stop=lambda: False
        ).schedule(graph, 3)
        assert plain.schedule.assignment == hooked.schedule.assignment
        assert plain.status == hooked.status

    def test_ilp_cancelled_before_first_phase(self):
        pytest.importorskip("scipy")
        from repro.scheduling.ilp import IlpScheduler

        with pytest.raises(SolverError, match="cancelled"):
            IlpScheduler(should_stop=lambda: True).schedule(_graph(), 3)

    def test_ilp_cancelled_between_phases_returns_phase1(self):
        pytest.importorskip("scipy")
        from repro.scheduling.ilp import IlpScheduler

        calls = {"n": 0}

        def stop_after_first_check():
            calls["n"] += 1
            return calls["n"] > 1

        result = IlpScheduler(should_stop=stop_after_first_check).schedule(
            _graph(seed=4), 3
        )
        assert result.status == "interrupted"
        assert result.extras["stopped_early"] is True
        assert result.schedule.is_valid()


class TestAnytimePortfolio:
    def test_complete_race_is_deterministic_and_beats_list(self):
        graph = _graph(seed=5)
        portfolio = AnytimePortfolio(deadline_ms=30_000.0, seed=0)
        first = portfolio.schedule(graph, 4)
        second = portfolio.schedule(graph, 4)
        assert first.extras["anytime_complete"] is True
        assert first.status == "complete"
        assert first.extras["winning_lane"] == second.extras["winning_lane"]
        assert first.objective == second.objective
        list_objective = (
            ListScheduler().schedule(graph, 4).schedule.objective(0.25)
        )
        assert first.objective <= list_objective
        assert set(first.extras["lanes_completed"]) == {
            lane.name for lane in portfolio.lanes
        }

    def test_improvement_trace_is_monotone_non_increasing(self):
        result = AnytimePortfolio(deadline_ms=30_000.0).schedule(_graph(6), 4)
        trace = result.extras["improvement_trace"]
        assert trace, "at least the first finisher must be recorded"
        objectives = [objective for _, _, objective in trace]
        assert objectives == sorted(objectives, reverse=True)
        times = [ms for _, ms, _ in trace]
        assert times == sorted(times)
        assert result.extras["winning_lane"] == trace[-1][0]

    def test_hanging_lane_still_answers_by_deadline(self):
        lanes = [
            PortfolioLane("list", lambda stop: ListScheduler()),
            PortfolioLane("hang", lambda stop: _HangingScheduler(stop)),
        ]
        portfolio = AnytimePortfolio(lanes=lanes, deadline_ms=150.0)
        start = time.perf_counter()
        result = portfolio.schedule(_graph(seed=7), 3)
        elapsed = time.perf_counter() - start
        assert elapsed < GENEROUS_SLACK_S
        assert result.extras["winning_lane"] == "list"
        assert result.extras["anytime_complete"] is False
        assert result.status == "anytime"
        assert "hang" not in result.extras["lanes_completed"]
        assert result.schedule.is_valid()

    def test_all_lanes_failing_raises_with_summary(self):
        lanes = [PortfolioLane("boom", lambda stop: _ExplodingScheduler())]
        portfolio = AnytimePortfolio(lanes=lanes, deadline_ms=50.0)
        with pytest.raises(SchedulingError, match="boom"):
            portfolio.schedule(_graph(), 3)

    def test_failed_lane_recorded_but_race_survives(self):
        lanes = [
            PortfolioLane("list", lambda stop: ListScheduler()),
            PortfolioLane("boom", lambda stop: _ExplodingScheduler()),
        ]
        result = AnytimePortfolio(lanes=lanes, deadline_ms=5_000.0).schedule(
            _graph(), 3
        )
        assert "boom" in result.extras["lanes_failed"]
        assert "SolverError" in result.extras["lanes_failed"]["boom"]

    def test_validation_errors(self):
        with pytest.raises(SchedulingError):
            AnytimePortfolio(deadline_ms=0)
        with pytest.raises(SchedulingError):
            AnytimePortfolio(lanes=[])
        lane = PortfolioLane("dup", lambda stop: ListScheduler())
        with pytest.raises(SchedulingError, match="duplicate"):
            AnytimePortfolio(lanes=[lane, lane])
        with pytest.raises(SchedulingError):
            AnytimePortfolio().schedule_with_deadline(_graph(), 3, -1.0)

    def test_wait_for_first_false_returns_none_on_empty_race(self):
        lanes = [PortfolioLane("hang", lambda stop: _HangingScheduler(stop))]
        portfolio = AnytimePortfolio(lanes=lanes, deadline_ms=40.0)
        assert (
            portfolio.schedule_with_deadline(
                _graph(), 3, wait_for_first=False
            )
            is None
        )

    def test_options_fingerprint_depends_on_lane_config(self):
        base = AnytimePortfolio(deadline_ms=100.0, seed=0)
        same = AnytimePortfolio(deadline_ms=200.0, seed=0)
        reseeded = AnytimePortfolio(deadline_ms=100.0, seed=1)
        # The deadline is a latency knob, not a content knob — equal
        # lane configs must share cache entries across deadlines.
        assert base.options_fingerprint() == same.options_fingerprint()
        assert base.options_fingerprint() != reseeded.options_fingerprint()

    def test_telemetry_counts_lanes_and_races(self):
        tel = Telemetry()
        lanes = [PortfolioLane("list", lambda stop: ListScheduler())]
        AnytimePortfolio(
            lanes=lanes, deadline_ms=5_000.0, telemetry=tel
        ).schedule(_graph(), 3)
        text = tel.registry.render_prometheus()
        assert 'respect_portfolio_lane_total{lane="list",outcome="completed"} 1' in text
        assert 'respect_portfolio_races_total{outcome=' in text
