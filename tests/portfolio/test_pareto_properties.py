"""Property-based invariants of the Pareto front extraction.

Three properties the anytime/Pareto subsystem leans on:

* every extracted front is *mutually non-dominated*;
* the front never loses to the single-objective list baseline — its
  best-period point is at least as fast, and no front point is
  dominated by the list schedule's objective vector;
* extraction is bit-identical under equal seeds (the fronts feed
  content-addressed caches, so nondeterminism would poison keys).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.sampler import sample_synthetic_dag
from repro.portfolio import dominates, evaluate_schedule, pareto_front
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.quantize import quantize_graph

_seeds = st.integers(min_value=0, max_value=2_000)
_stages = st.integers(min_value=2, max_value=4)


def _graph(seed):
    return quantize_graph(sample_synthetic_dag(num_nodes=12, degree=2, seed=seed))


@settings(max_examples=8, deadline=None)
@given(seed=_seeds, num_stages=_stages)
def test_front_points_mutually_non_dominated(seed, num_stages):
    front = pareto_front(_graph(seed), num_stages)
    for p in front.points:
        assert not any(
            dominates(q.objectives, p.objectives)
            for q in front.points
            if q is not p
        )


@settings(max_examples=8, deadline=None)
@given(seed=_seeds, num_stages=_stages)
def test_front_dominates_or_ties_list_baseline(seed, num_stages):
    graph = _graph(seed)
    front = pareto_front(graph, num_stages)
    baseline = evaluate_schedule(
        graph, ListScheduler().schedule(graph, num_stages).schedule
    )
    # The sweep includes the list scheduler itself, so the front's best
    # period can never be slower than the baseline...
    assert (
        front.best("period_seconds").objectives.period_seconds
        <= baseline.period_seconds
    )
    # ...and nothing on the front may be strictly worse than it.
    for p in front.points:
        assert not dominates(baseline, p.objectives)


@settings(max_examples=6, deadline=None)
@given(seed=_seeds, num_stages=_stages)
def test_fronts_bit_identical_under_equal_seeds(seed, num_stages):
    graph = _graph(seed)
    a = pareto_front(graph, num_stages, seed=3)
    b = pareto_front(graph, num_stages, seed=3)
    assert [p.method for p in a.points] == [p.method for p in b.points]
    assert [p.objectives for p in a.points] == [p.objectives for p in b.points]
    assert [
        p.result.schedule.assignment for p in a.points
    ] == [p.result.schedule.assignment for p in b.points]
