"""DegradeLadder rungs, pressure routing, and the structural index."""

import time

import pytest

from repro.errors import SchedulingError, SolverError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.sampler import sample_synthetic_dag
from repro.portfolio import CachedNearestIndex, DegradeLadder, LADDER_RUNGS
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.quantize import quantize_graph


def _graph(seed=0, num_nodes=14):
    return quantize_graph(
        sample_synthetic_dag(num_nodes=num_nodes, degree=2, seed=seed)
    )


def _renamed(graph, prefix="alias_"):
    """Same structure, different node names (isomorphic arrival)."""
    mapping = {name: f"{prefix}{name}" for name in graph.node_names}
    clone = ComputationalGraph(name=graph.name + "_renamed")
    for node in graph.nodes:
        clone.add_op(
            mapping[node.name],
            op_type=node.op_type,
            param_bytes=node.param_bytes,
            output_bytes=node.output_bytes,
            macs=node.macs,
            inputs=[mapping[dep] for dep in graph.parents(node.name)],
        )
    return clone


class _SlowPolicy:
    def __init__(self, delay_s=0.5):
        self.delay_s = delay_s

    def schedule(self, graph, num_stages):
        time.sleep(self.delay_s)
        return ListScheduler().schedule(graph, num_stages)


class _FailingScheduler:
    def schedule(self, graph, num_stages):
        raise SolverError("no answer here")


class TestCachedNearestIndex:
    def test_lookup_on_isomorphic_renamed_graph(self):
        graph = _graph(seed=1)
        schedule = ListScheduler().schedule(graph, 3).schedule
        index = CachedNearestIndex()
        index.observe(graph, 3, schedule)
        twin = _renamed(graph)
        found = index.lookup(twin, 3)
        assert found is not None
        assert found.is_valid()
        assert found.num_stages == 3
        assert index.hits == 1

    def test_miss_on_unknown_structure(self):
        index = CachedNearestIndex()
        assert index.lookup(_graph(seed=2), 3) is None
        assert index.misses == 1

    def test_num_stages_part_of_the_key(self):
        graph = _graph(seed=3)
        index = CachedNearestIndex()
        index.observe(graph, 3, ListScheduler().schedule(graph, 3).schedule)
        assert index.lookup(graph, 4) is None

    def test_lru_eviction(self):
        index = CachedNearestIndex(capacity=2)
        graphs = [_graph(seed=s, num_nodes=10 + s) for s in range(3)]
        for g in graphs:
            index.observe(g, 2, ListScheduler().schedule(g, 2).schedule)
        assert len(index) == 2
        assert index.lookup(graphs[0], 2) is None

    def test_capacity_validated(self):
        with pytest.raises(SchedulingError):
            CachedNearestIndex(capacity=0)


class TestDegradeLadder:
    def test_rung_constant_matches_module(self):
        assert LADDER_RUNGS == ("policy", "heuristic", "cached_nearest", "floor")

    def test_low_pressure_probes_policy(self):
        ladder = DegradeLadder(policy=ListScheduler(), probe_deadline_ms=2_000.0)
        result, rung = ladder.serve(_graph(), 3, pressure=1.0)
        assert rung == "policy"
        assert result.extras["degrade_rung"] == "policy"
        assert result.extras["degrade_pressure"] == 1.0

    def test_slow_policy_falls_through_to_heuristic(self):
        ladder = DegradeLadder(
            policy=_SlowPolicy(delay_s=1.0), probe_deadline_ms=5.0
        )
        _, rung = ladder.serve(_graph(), 3, pressure=1.0)
        assert rung == "heuristic"

    def test_medium_pressure_skips_policy(self):
        probed = []

        class Spy:
            def schedule(self, graph, num_stages):
                probed.append(True)
                return ListScheduler().schedule(graph, num_stages)

        ladder = DegradeLadder(policy=Spy())
        _, rung = ladder.serve(_graph(), 3, pressure=10.0)
        assert rung == "heuristic"
        assert not probed

    def test_high_pressure_uses_structural_cache_then_floor(self):
        graph = _graph(seed=4)
        ladder = DegradeLadder()
        # Nothing observed yet: the floor answers.
        result, rung = ladder.serve(graph, 3, pressure=100.0)
        assert rung == "floor"
        # Warm the index with a full-quality serve, then the isomorphic
        # twin is answered from the cached-nearest rung.
        full = ListScheduler().schedule(graph, 3)
        ladder.observe(graph, 3, full)
        result, rung = ladder.serve(_renamed(graph), 3, pressure=100.0)
        assert rung == "cached_nearest"
        assert result.status == "degraded"
        assert result.schedule.is_valid()
        assert result.extras["structural_index_size"] == 1

    def test_failing_heuristic_falls_to_floor(self):
        ladder = DegradeLadder(heuristic=_FailingScheduler())
        _, rung = ladder.serve(_graph(), 3, pressure=10.0)
        assert rung == "floor"

    def test_observe_skips_degraded_results(self):
        graph = _graph(seed=5)
        ladder = DegradeLadder()
        degraded = ListScheduler().schedule(graph, 3)
        degraded.extras["degraded"] = True
        ladder.observe(graph, 3, degraded)
        assert len(ladder.index) == 0

    def test_pressure_decays(self):
        ladder = DegradeLadder(pressure_half_life_ms=5.0)
        for _ in range(8):
            ladder._bump_pressure()
        before = ladder.pressure()
        time.sleep(0.05)
        assert ladder.pressure() < before

    def test_probe_cap_skips_policy_rung(self):
        ladder = DegradeLadder(
            policy=_SlowPolicy(delay_s=1.0),
            probe_deadline_ms=5.0,
            max_inflight_probes=1,
        )
        # First serve leaves its slow probe outstanding...
        _, first = ladder.serve(_graph(seed=6), 3, pressure=1.0)
        assert first == "heuristic"
        # ...so the next low-pressure serve cannot probe at all.
        _, second = ladder.serve(_graph(seed=7), 3, pressure=1.0)
        assert second == "heuristic"

    def test_validation(self):
        with pytest.raises(SchedulingError):
            DegradeLadder(probe_deadline_ms=0)
        with pytest.raises(SchedulingError):
            DegradeLadder(max_inflight_probes=0)
        with pytest.raises(SchedulingError):
            DegradeLadder(policy_pressure_limit=50.0, heuristic_pressure_limit=5.0)
        with pytest.raises(SchedulingError):
            DegradeLadder(pressure_half_life_ms=0)
