"""Multi-objective evaluation and Pareto-front extraction."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.portfolio import (
    ObjectiveVector,
    dominates,
    evaluate_schedule,
    pareto_filter,
    pareto_front,
)
from repro.portfolio.objectives import ParetoPoint
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.pipeline import PipelinedTpuSystem, compute_stage_profiles
from repro.tpu.quantize import quantize_graph
from repro.tpu.spec import default_spec


def _graph(seed=0, num_nodes=16):
    return quantize_graph(
        sample_synthetic_dag(num_nodes=num_nodes, degree=2, seed=seed)
    )


def _vector(period=1.0, latency=1.0, energy=1.0, reload=0, peak=0):
    return ObjectiveVector(
        period_seconds=period,
        latency_seconds=latency,
        energy_joules=energy,
        sram_reload_bytes=reload,
        peak_param_bytes=peak,
    )


class TestEvaluateSchedule:
    def test_matches_platform_model(self):
        graph = _graph()
        schedule = ListScheduler().schedule(graph, 4).schedule
        spec = default_spec()
        vec = evaluate_schedule(graph, schedule, spec=spec)
        profiles = compute_stage_profiles(graph, schedule, spec)
        system = PipelinedTpuSystem(spec, bus_mode="per_stage")
        assert vec.period_seconds == pytest.approx(
            system.theoretical_period(profiles)
        )
        assert vec.latency_seconds == pytest.approx(
            sum(p.link_seconds + p.compute_seconds for p in profiles)
        )
        assert vec.sram_reload_bytes == sum(p.off_chip_bytes for p in profiles)
        assert vec.peak_param_bytes == schedule.peak_stage_param_bytes
        assert vec.energy_joules > 0

    def test_latency_at_least_period(self):
        # One inference's serial walk through the pipeline can never be
        # shorter than the steady-state bottleneck stage.
        graph = _graph(seed=3)
        schedule = ListScheduler().schedule(graph, 3).schedule
        vec = evaluate_schedule(graph, schedule)
        assert vec.latency_seconds >= vec.period_seconds


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates(_vector(1, 1, 1, 0), _vector(2, 2, 2, 1))

    def test_better_somewhere_equal_elsewhere(self):
        assert dominates(_vector(1, 1, 1, 0), _vector(1, 1, 2, 0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates(_vector(), _vector())

    def test_tradeoff_is_incomparable(self):
        a = _vector(period=1, latency=2)
        b = _vector(period=2, latency=1)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_peak_param_bytes_not_a_dominance_dimension(self):
        assert dominates(_vector(1, 1, 1, 0, peak=999), _vector(2, 2, 2, 1, peak=0))


class TestParetoFilter:
    def _point(self, method, vec):
        result = ListScheduler().schedule(_graph(), 2)
        return ParetoPoint(method=method, objectives=vec, result=result)

    def test_dominated_points_removed(self):
        good = self._point("a", _vector(1, 1, 1, 0))
        bad = self._point("b", _vector(2, 2, 2, 1))
        assert [p.method for p in pareto_filter([bad, good])] == ["a"]

    def test_duplicate_objectives_keep_first(self):
        first = self._point("first", _vector())
        second = self._point("second", _vector())
        kept = pareto_filter([first, second])
        assert [p.method for p in kept] == ["first"]

    def test_incomparable_points_all_survive_sorted(self):
        a = self._point("a", _vector(period=2, latency=1))
        b = self._point("b", _vector(period=1, latency=2))
        kept = pareto_filter([a, b])
        assert [p.method for p in kept] == ["b", "a"]


class TestParetoFront:
    def test_front_is_nonempty_and_non_dominated(self):
        front = pareto_front(_graph(seed=1), 4)
        assert front.points
        for p in front.points:
            assert not any(
                dominates(q.objectives, p.objectives) for q in front.points
            )

    def test_candidates_superset_and_skips_recorded(self):
        front = pareto_front(_graph(seed=2), 3)
        assert len(front.candidates) >= len(front.points)
        assert all(len(pair) == 2 for pair in front.skipped)

    def test_best_dimension(self):
        front = pareto_front(_graph(seed=2), 3)
        best = front.best("period_seconds")
        assert all(
            best.objectives.period_seconds <= p.objectives.period_seconds
            for p in front.points
        )
        with pytest.raises(SchedulingError):
            pareto_front(_graph(), 0)

    def test_summary_rows_match_points(self):
        front = pareto_front(_graph(seed=4), 3)
        rows = front.summary()
        assert len(rows) == len(front.points)
        assert all(row["period_us"] > 0 for row in rows)

    def test_failing_solver_is_skipped_not_fatal(self):
        class Exploder:
            def schedule(self, graph, num_stages):
                raise SchedulingError("boom")

        front = pareto_front(
            _graph(seed=5),
            3,
            solvers=[("list", ListScheduler()), ("boom", Exploder())],
        )
        assert front.skipped == (("boom", "boom"),)
        assert [p.method for p in front.points] == ["list"]

    def test_all_solvers_failing_raises(self):
        class Exploder:
            def schedule(self, graph, num_stages):
                raise SchedulingError("boom")

        with pytest.raises(SchedulingError):
            pareto_front(_graph(), 2, solvers=[("boom", Exploder())])
