"""Integration tests: the full model -> schedule -> deploy -> simulate flow."""

import pytest

from repro.flow.compare import compare_methods, default_methods, run_method
from repro.models import build_model
from repro.rl.respect import RespectScheduler
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.ilp import IlpScheduler
from repro.tpu.deploy import deploy
from repro.tpu.power import estimate_energy
from repro.tpu.quantize import quantize_graph


@pytest.fixture(scope="module")
def xception_int8():
    return quantize_graph(build_model("Xception"))


@pytest.fixture(scope="module")
def respect_scheduler():
    return RespectScheduler()


class TestCompareFlow:
    def test_compare_methods_runs_all(self, xception_int8):
        outcomes = compare_methods(
            xception_int8, default_methods(), num_stages=4, num_inferences=50
        )
        assert set(outcomes) == {"edgetpu_compiler", "ilp"}
        for outcome in outcomes.values():
            assert outcome.seconds_per_inference > 0
            assert outcome.solve_time_seconds > 0
            assert outcome.schedule_result.schedule.is_valid()

    def test_unquantized_graph_rejected_by_run_method(self):
        graph = build_model("Xception")
        with pytest.raises(Exception):
            run_method(graph, IlpScheduler(), 4)

    def test_ilp_peak_never_above_compiler(self, xception_int8):
        outcomes = compare_methods(
            xception_int8, default_methods(), num_stages=4, num_inferences=20
        )
        assert (
            outcomes["ilp"].peak_stage_param_bytes
            <= outcomes["edgetpu_compiler"].peak_stage_param_bytes
        )


class TestRespectEndToEnd:
    @pytest.mark.parametrize("num_stages", [4, 6])
    def test_respect_schedules_real_model(
        self, xception_int8, respect_scheduler, num_stages
    ):
        result = respect_scheduler.schedule(xception_int8, num_stages)
        assert result.schedule.is_valid()
        pipeline = deploy(xception_int8, result.schedule)
        report = pipeline.simulate(num_inferences=50)
        assert report.seconds_per_inference > 0

    def test_respect_near_optimal_memory(self, xception_int8, respect_scheduler):
        """The Fig. 5 claim at integration scope: single-digit-percent
        gap to the exact peak-memory optimum on a real model."""
        respect_result = respect_scheduler.schedule(xception_int8, 4)
        exact = IlpScheduler(peak_tolerance=0.0).schedule(xception_int8, 4)
        optimum = exact.extras["peak_optimum_bytes"]
        gap = (
            respect_result.schedule.peak_stage_param_bytes - optimum
        ) / optimum
        assert gap < 0.15

    def test_respect_faster_than_ilp_solving(
        self, xception_int8, respect_scheduler
    ):
        """The Fig. 3 claim: RESPECT's solving time beats the ILP's."""
        respect_result = respect_scheduler.schedule(xception_int8, 4)
        ilp_result = IlpScheduler().schedule(xception_int8, 4)
        assert respect_result.solve_time < ilp_result.solve_time

    def test_energy_estimation_integrates(self, xception_int8, respect_scheduler):
        result = respect_scheduler.schedule(xception_int8, 4)
        pipeline = deploy(xception_int8, result.schedule)
        report = pipeline.simulate(num_inferences=20)
        energy = estimate_energy(report)
        assert energy.joules_per_inference > 0


class TestCompilerVsExactShape:
    def test_six_stage_compiler_not_better_on_resnet101v2(self):
        """The Fig. 4 headline case: at 6 stages the compiler's
        parameter-balanced partition overflows SRAM while the exact
        method's fits, costing the compiler a large slowdown."""
        graph = quantize_graph(build_model("ResNet101v2"))
        outcomes = compare_methods(
            graph, default_methods(), num_stages=6, num_inferences=100
        )
        compiler = outcomes["edgetpu_compiler"]
        ilp = outcomes["ilp"]
        assert ilp.seconds_per_inference < compiler.seconds_per_inference
        # The mechanism: ILP fits every stage in SRAM, compiler does not.
        assert all(p.off_chip_bytes == 0 for p in ilp.report.profiles)
        assert any(p.off_chip_bytes > 0 for p in compiler.report.profiles)
