"""Bitwise equivalence of the vectorized greedy decode.

:meth:`PointerNetworkPolicy.greedy_decode` restructures the inference
unroll (hoisted LSTM projections, cacheless attention, gathered
log-softmax) for throughput; its contract is *bit-identity* with
``forward(mode="greedy")`` — not closeness.  The serving tier's cache
keys and the in-process-vs-worker-pool equivalence guarantees all stand
on this, so every comparison below is exact (``==`` on floats).
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import RespectScheduler


@pytest.fixture
def policy():
    return PointerNetworkPolicy(feature_dim=4, hidden_size=6, logit_clip=5.0, seed=1)


def chain_precedence(batch: int, num_nodes: int) -> np.ndarray:
    """precedence[b, i, j] = node i requires node j (a simple chain)."""
    p = np.zeros((batch, num_nodes, num_nodes), dtype=bool)
    for i in range(1, num_nodes):
        p[:, i, i - 1] = True
    return p


def assert_rollouts_bitwise_equal(a, b):
    np.testing.assert_array_equal(a.actions, b.actions)
    assert a.log_prob.tolist() == b.log_prob.tolist()  # exact, not allclose


class TestGreedyDecodeEquivalence:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("batch", [1, 2, 7])
    def test_unconstrained(self, policy, rng, dtype, batch):
        if dtype is np.float32:
            policy.cast(np.float32)
        features = rng.normal(size=(batch, 5, 4))
        assert_rollouts_bitwise_equal(
            policy.greedy_decode(features),
            policy.forward(features, mode="greedy", keep_caches=False),
        )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("batch", [1, 3])
    def test_precedence_constrained(self, policy, rng, dtype, batch):
        if dtype is np.float32:
            policy.cast(np.float32)
        features = rng.normal(size=(batch, 6, 4))
        precedence = chain_precedence(batch, 6)
        assert_rollouts_bitwise_equal(
            policy.greedy_decode(features, precedence=precedence),
            policy.forward(
                features,
                mode="greedy",
                precedence=precedence,
                keep_caches=False,
            ),
        )

    def test_padded_batch(self, policy, rng):
        # Ragged graphs decode as one padded batch; padded rows must not
        # perturb the real rows' floats.
        features = rng.normal(size=(3, 7, 4))
        lengths = np.array([7, 4, 2])
        assert_rollouts_bitwise_equal(
            policy.greedy_decode(features, lengths=lengths),
            policy.forward(
                features, mode="greedy", lengths=lengths, keep_caches=False
            ),
        )

    def test_padded_rows_match_solo_decodes(self, policy, rng):
        features = rng.normal(size=(2, 6, 4))
        lengths = np.array([6, 3])
        batched = policy.greedy_decode(features, lengths=lengths)
        for b, length in enumerate(lengths):
            solo = policy.greedy_decode(features[b : b + 1, :length, :])
            np.testing.assert_array_equal(
                batched.actions[b, :length], solo.actions[0]
            )
            assert batched.log_prob[b] == solo.log_prob[0]


class TestSchedulerKnob:
    def test_both_paths_produce_identical_schedules(self, small_sampler):
        graphs = [small_sampler.sample() for _ in range(4)]
        legacy = RespectScheduler(use_vectorized_decode=False)
        vectorized = RespectScheduler(use_vectorized_decode=True)
        for lr, vr in zip(
            legacy.schedule_batch(graphs, 4),
            vectorized.schedule_batch(graphs, 4),
        ):
            assert lr.schedule.assignment == vr.schedule.assignment
            assert lr.extras["log_prob"] == vr.extras["log_prob"]

    def test_knob_excluded_from_fingerprint(self):
        # Same outputs -> same cache key; the knob must be invisible.
        assert (
            RespectScheduler(use_vectorized_decode=False).options_fingerprint()
            == RespectScheduler(
                use_vectorized_decode=True
            ).options_fingerprint()
        )


class TestSigmoid:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_branch_free_matches_two_branch_reference(self, rng, dtype):
        x = np.concatenate(
            [
                rng.normal(scale=3.0, size=500),
                np.array([0.0, -0.0, 1e-9, -1e-9, 50.0, -50.0, 800.0, -800.0]),
            ]
        ).astype(dtype)
        # The classic masked two-pass evaluation the branch-free form
        # replaced; results must agree bit for bit.
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ez = np.exp(x[~pos])
        out[~pos] = ez / (1.0 + ez)
        got = F.sigmoid(x)
        assert got.dtype == out.dtype
        assert got.tolist() == out.tolist()
