"""Tests for the checkpoint lifecycle subsystem."""

import json

import numpy as np
import pytest

from repro.embedding.features import EmbeddingConfig
from repro.errors import CheckpointError
from repro.rl.checkpoints import (
    CheckpointSpec,
    PRETRAINED_DIR,
    available_checkpoints,
    checkpoint_cache_dir,
    checkpoint_metadata,
    ensure_pretrained,
    load_checkpoint,
    read_metadata,
    register_checkpoint,
    save_checkpoint,
    _REGISTRY,
)
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import load_pretrained_policy


def _make_policy(feature_dim=15, hidden_size=8, seed=3):
    return PointerNetworkPolicy(
        feature_dim=feature_dim, hidden_size=hidden_size, seed=seed
    )


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        policy = _make_policy()
        save_checkpoint(policy, tmp_path, "unit")
        restored = load_checkpoint(tmp_path, "unit")
        assert restored.hidden_size == policy.hidden_size
        for name, param in policy.parameters().items():
            np.testing.assert_array_equal(
                restored.parameters()[name].value, param.value
            )

    def test_metadata_records_recipe_and_provenance(self, tmp_path):
        from repro.rl.trainer import RespectTrainingConfig

        policy = _make_policy()
        config = RespectTrainingConfig(dataset_size=7, seed=11)
        meta = checkpoint_metadata(
            policy, "unit", training_config=config, source="unit-test"
        )
        save_checkpoint(policy, tmp_path, "unit", metadata=meta)
        read = read_metadata(tmp_path, "unit")
        assert read["format_version"] == 1
        assert read["seed"] == 11
        assert read["training_config"]["dataset_size"] == 7
        assert read["provenance"]["created_by"] == "unit-test"


class TestCorruption:
    def test_truncated_npz_raises_checkpoint_error(self, tmp_path):
        policy = _make_policy()
        save_checkpoint(policy, tmp_path, "unit")
        weights = tmp_path / "unit.npz"
        weights.write_bytes(weights.read_bytes()[: 100])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(tmp_path, "unit")

    def test_garbage_npz_raises_checkpoint_error(self, tmp_path):
        policy = _make_policy()
        save_checkpoint(policy, tmp_path, "unit")
        (tmp_path / "unit.npz").write_bytes(b"not an archive at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path, "unit")

    def test_feature_dim_mismatch_raises_checkpoint_error(self, tmp_path):
        # Weights trained at feature_dim=10 but a sidecar declaring 15.
        save_checkpoint(_make_policy(feature_dim=10), tmp_path, "unit")
        meta = json.loads((tmp_path / "unit.json").read_text())
        meta["feature_dim"] = 15
        (tmp_path / "unit.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="does not match"):
            load_checkpoint(tmp_path, "unit")

    def test_missing_config_key_raises_checkpoint_error(self, tmp_path):
        save_checkpoint(_make_policy(), tmp_path, "unit")
        meta = json.loads((tmp_path / "unit.json").read_text())
        del meta["hidden_size"]
        (tmp_path / "unit.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="required keys"):
            load_checkpoint(tmp_path, "unit")

    def test_invalid_json_sidecar_raises_checkpoint_error(self, tmp_path):
        save_checkpoint(_make_policy(), tmp_path, "unit")
        (tmp_path / "unit.json").write_text("{ not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(tmp_path, "unit")

    def test_missing_files_raise_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path, "ghost")


class TestFreshCheckout:
    def test_respect_small_artifact_is_committed(self):
        """Regression for the original bug: the default checkpoint must
        ship with the repository so a fresh checkout works offline."""
        assert (PRETRAINED_DIR / "respect_small.json").exists()
        assert (PRETRAINED_DIR / "respect_small.npz").exists()

    def test_load_pretrained_policy_fresh_checkout(self):
        policy = load_pretrained_policy()
        assert policy.feature_dim == EmbeddingConfig().feature_dim

    def test_shipped_sidecar_has_versioned_metadata(self):
        meta = read_metadata(PRETRAINED_DIR, "respect_small")
        assert meta["format_version"] == 1
        assert "training_config" in meta
        assert "provenance" in meta


class TestEnsurePretrained:
    def test_default_checkpoint_registered(self):
        assert "respect_small" in available_checkpoints()

    def test_unknown_name_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_CACHE", str(tmp_path))
        with pytest.raises(CheckpointError, match="no training recipe"):
            ensure_pretrained("no_such_checkpoint")

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_CACHE", str(tmp_path / "cc"))
        assert checkpoint_cache_dir() == tmp_path / "cc"

    def test_train_on_first_use_then_cache_hit(self, tmp_path, monkeypatch):
        from repro.rl.trainer import RespectTrainingConfig

        monkeypatch.setenv("REPRO_CHECKPOINT_CACHE", str(tmp_path))
        spec = CheckpointSpec(
            name="unit_tiny",
            description="tiny recipe for tests",
            config_factory=lambda: RespectTrainingConfig(
                dataset_size=4,
                num_nodes=6,
                degrees=(2,),
                stage_choices=(2,),
                hidden_size=8,
                imitation_steps=2,
                reinforce_steps=0,
                seed=0,
            ),
        )
        register_checkpoint(spec)
        try:
            trained = ensure_pretrained("unit_tiny")
            assert (tmp_path / "unit_tiny.npz").exists()
            meta = read_metadata(tmp_path, "unit_tiny")
            assert meta["training_config"]["dataset_size"] == 4
            # Second call must hit the cache, not retrain.
            def boom(*args, **kwargs):
                raise AssertionError("retrained despite cached artifact")

            monkeypatch.setattr(
                "repro.rl.checkpoints.train_checkpoint", boom
            )
            cached = ensure_pretrained("unit_tiny")
            for name, param in trained.parameters().items():
                np.testing.assert_array_equal(
                    cached.parameters()[name].value, param.value
                )
        finally:
            _REGISTRY.pop("unit_tiny", None)


class TestCorruptCacheRecovery:
    def test_torn_cache_artifact_triggers_regeneration(
        self, tmp_path, monkeypatch
    ):
        from repro.rl.trainer import RespectTrainingConfig

        monkeypatch.setenv("REPRO_CHECKPOINT_CACHE", str(tmp_path))
        register_checkpoint(
            CheckpointSpec(
                name="unit_torn",
                description="tiny recipe for torn-cache test",
                config_factory=lambda: RespectTrainingConfig(
                    dataset_size=4,
                    num_nodes=6,
                    degrees=(2,),
                    stage_choices=(2,),
                    hidden_size=8,
                    imitation_steps=2,
                    reinforce_steps=0,
                    seed=0,
                ),
            )
        )
        try:
            # Simulate an interrupted first-use save: both files exist
            # but the sidecar is torn.
            (tmp_path / "unit_torn.npz").write_bytes(b"garbage")
            (tmp_path / "unit_torn.json").write_text("{ torn")
            policy = ensure_pretrained("unit_torn")
            assert policy.hidden_size == 8
            # The cache was repaired: a second load succeeds directly.
            load_checkpoint(tmp_path, "unit_torn")
        finally:
            _REGISTRY.pop("unit_torn", None)
