"""Tests for the pointer-network policy, including full-BPTT grad checks."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.rl.ptrnet import PointerNetworkPolicy


@pytest.fixture
def tiny_policy():
    return PointerNetworkPolicy(feature_dim=4, hidden_size=6, logit_clip=5.0, seed=1)


@pytest.fixture
def features(rng):
    return rng.normal(size=(2, 5, 4))


class TestForward:
    def test_outputs_are_permutations(self, tiny_policy, features):
        rollout = tiny_policy.forward(features, mode="greedy")
        for b in range(2):
            assert sorted(rollout.actions[b]) == list(range(5))

    def test_sampling_reproducible(self, tiny_policy, features):
        a = tiny_policy.forward(features, mode="sample", rng=3)
        b = tiny_policy.forward(features, mode="sample", rng=3)
        np.testing.assert_array_equal(a.actions, b.actions)

    def test_log_prob_nonpositive(self, tiny_policy, features):
        rollout = tiny_policy.forward(features, mode="greedy")
        assert np.all(rollout.log_prob <= 1e-12)

    def test_teacher_mode_follows_target(self, tiny_policy, features, rng):
        target = np.stack([rng.permutation(5) for _ in range(2)])
        rollout = tiny_policy.forward(features, mode="teacher", target=target)
        np.testing.assert_array_equal(rollout.actions, target)

    def test_teacher_requires_target(self, tiny_policy, features):
        with pytest.raises(TrainingError):
            tiny_policy.forward(features, mode="teacher")

    def test_bad_mode_rejected(self, tiny_policy, features):
        with pytest.raises(TrainingError):
            tiny_policy.forward(features, mode="beam")

    def test_feature_dim_checked(self, tiny_policy, rng):
        with pytest.raises(TrainingError):
            tiny_policy.forward(rng.normal(size=(1, 5, 9)))

    def test_entropy_nonnegative(self, tiny_policy, features):
        rollout = tiny_policy.forward(features, mode="sample", rng=0)
        assert np.all(rollout.entropy >= -1e-12)


class TestPrecedenceMask:
    def test_decoded_orders_are_topological(self, tiny_policy, rng):
        # Chain precedence: node i depends on i-1.
        T = 5
        precedence = np.zeros((1, T, T), dtype=bool)
        for i in range(1, T):
            precedence[0, i, i - 1] = True
        feats = rng.normal(size=(1, T, 4))
        rollout = tiny_policy.forward(feats, mode="greedy", precedence=precedence)
        assert list(rollout.actions[0]) == list(range(T))

    def test_sampled_orders_respect_precedence(self, tiny_policy, rng):
        T = 6
        precedence = np.zeros((2, T, T), dtype=bool)
        precedence[:, 3, 0] = True   # 3 needs 0
        precedence[:, 5, 3] = True   # 5 needs 3
        feats = rng.normal(size=(2, T, 4))
        for seed in range(5):
            rollout = tiny_policy.forward(
                feats, mode="sample", rng=seed, precedence=precedence
            )
            for b in range(2):
                order = list(rollout.actions[b])
                assert order.index(0) < order.index(3) < order.index(5)

    def test_bad_precedence_shape_rejected(self, tiny_policy, features):
        with pytest.raises(TrainingError):
            tiny_policy.forward(features, precedence=np.zeros((2, 3, 3), bool))

    def test_teacher_violating_precedence_rejected(self, tiny_policy, rng):
        T = 4
        precedence = np.zeros((1, T, T), dtype=bool)
        precedence[0, 0, 1] = True  # 0 needs 1 first
        feats = rng.normal(size=(1, T, 4))
        target = np.array([[0, 1, 2, 3]])
        with pytest.raises(TrainingError):
            tiny_policy.forward(
                feats, mode="teacher", target=target, precedence=precedence
            )


class TestBackward:
    def test_full_bptt_gradient_check(self, rng):
        """Finite-difference check of the entire policy backward pass."""
        policy = PointerNetworkPolicy(feature_dim=3, hidden_size=5,
                                      logit_clip=5.0, seed=2)
        features = rng.normal(size=(2, 4, 3))
        target = np.stack([rng.permutation(4) for _ in range(2)])
        coeff = np.array([0.8, -1.1])

        def loss():
            r = policy.forward(features, mode="teacher", target=target)
            return float(np.sum(coeff * (-r.log_prob)))

        policy.zero_grad()
        rollout = policy.forward(features, mode="teacher", target=target)
        policy.backward(rollout, coeff)

        eps = 1e-6
        for name, param in policy.named_parameters():
            flat = param.value.ravel()
            gflat = param.grad.ravel()
            indices = rng.choice(flat.size, size=min(5, flat.size), replace=False)
            for i in indices:
                old = flat[i]
                flat[i] = old + eps
                up = loss()
                flat[i] = old - eps
                down = loss()
                flat[i] = old
                numeric = (up - down) / (2 * eps)
                # Mixed tolerance: tiny gradients live in FD noise.
                assert numeric == pytest.approx(gflat[i], rel=1e-4, abs=1e-7), (
                    f"{name}[{i}]"
                )

    def test_entropy_gradient_check(self, rng):
        """Finite-difference check of the exact entropy-bonus gradient.

        Teacher mode pins the trajectory, so the rollout's mean per-step
        entropy is a deterministic, differentiable function of the
        parameters; the surrogate loss ``-sum_b ec_b * H_b`` must match
        central differences.
        """
        policy = PointerNetworkPolicy(feature_dim=3, hidden_size=5,
                                      logit_clip=5.0, seed=2)
        features = rng.normal(size=(2, 4, 3))
        target = np.stack([rng.permutation(4) for _ in range(2)])
        entropy_coeff = np.array([0.7, -0.4])

        def loss():
            r = policy.forward(features, mode="teacher", target=target)
            return float(np.sum(-entropy_coeff * r.entropy))

        policy.zero_grad()
        rollout = policy.forward(features, mode="teacher", target=target)
        policy.backward(rollout, np.zeros(2), entropy_coeff=entropy_coeff)

        eps = 1e-6
        for name, param in policy.named_parameters():
            flat = param.value.ravel()
            gflat = param.grad.ravel()
            indices = rng.choice(flat.size, size=min(5, flat.size),
                                 replace=False)
            for i in indices:
                old = flat[i]
                flat[i] = old + eps
                up = loss()
                flat[i] = old - eps
                down = loss()
                flat[i] = old
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(gflat[i], rel=1e-4, abs=1e-7), (
                    f"{name}[{i}]"
                )

    def test_backward_rejects_bad_coeff_shape(self, tiny_policy, features):
        rollout = tiny_policy.forward(features, mode="greedy")
        with pytest.raises(TrainingError):
            tiny_policy.backward(rollout, np.zeros(3))

    def test_backward_rejects_bad_entropy_coeff_shape(
        self, tiny_policy, features
    ):
        rollout = tiny_policy.forward(features, mode="sample", rng=0)
        with pytest.raises(TrainingError):
            tiny_policy.backward(rollout, np.zeros(2),
                                 entropy_coeff=np.zeros(3))

    def test_config_dict_round_trip(self, tiny_policy):
        config = tiny_policy.config_dict()
        clone = PointerNetworkPolicy(**config)
        assert clone.hidden_size == tiny_policy.hidden_size
        assert clone.feature_dim == tiny_policy.feature_dim


class TestPaddedBatches:
    """Variable-length (padded) greedy decoding via ``lengths``."""

    def test_padded_rows_match_solo_decodes(self, tiny_policy, rng):
        sizes = [3, 5, 2, 4]
        rows = [rng.normal(size=(n, 4)) for n in sizes]
        features = np.zeros((len(sizes), max(sizes), 4))
        for b, row in enumerate(rows):
            features[b, : len(row)] = row
        batched = tiny_policy.forward(
            features, mode="greedy", lengths=np.array(sizes)
        )
        for b, row in enumerate(rows):
            solo = tiny_policy.forward(row[None, :, :], mode="greedy")
            np.testing.assert_array_equal(
                batched.actions[b, : sizes[b]], solo.actions[0]
            )
            assert batched.log_prob[b] == pytest.approx(solo.log_prob[0])

    def test_padded_rows_are_permutations_of_real_positions(
        self, tiny_policy, rng
    ):
        sizes = np.array([2, 5, 3])
        features = rng.normal(size=(3, 5, 4))
        rollout = tiny_policy.forward(features, mode="greedy", lengths=sizes)
        for b, n in enumerate(sizes):
            assert sorted(rollout.actions[b, :n]) == list(range(n))

    def test_lengths_require_greedy_mode(self, tiny_policy, features):
        with pytest.raises(TrainingError):
            tiny_policy.forward(
                features, mode="sample", lengths=np.array([5, 3])
            )

    def test_out_of_range_lengths_rejected(self, tiny_policy, features):
        with pytest.raises(TrainingError):
            tiny_policy.forward(features, lengths=np.array([5, 6]))
        with pytest.raises(TrainingError):
            tiny_policy.forward(features, lengths=np.array([0, 5]))
        with pytest.raises(TrainingError):
            tiny_policy.forward(features, lengths=np.array([5]))

    def test_backward_rejects_padded_rollouts(self, tiny_policy, features):
        rollout = tiny_policy.forward(
            features, mode="greedy", lengths=np.array([5, 3])
        )
        with pytest.raises(TrainingError):
            tiny_policy.backward(rollout, np.ones(2))

    def test_keep_caches_false_matches_and_blocks_backward(
        self, tiny_policy, features
    ):
        cached = tiny_policy.forward(features, mode="greedy")
        cacheless = tiny_policy.forward(
            features, mode="greedy", keep_caches=False
        )
        np.testing.assert_array_equal(cacheless.actions, cached.actions)
        assert cacheless.steps == [] and cacheless.enc_caches == []
        with pytest.raises(TrainingError):
            tiny_policy.backward(cacheless, np.ones(2))
