"""Unit + property tests for the reward functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.reward import (
    exact_match_fraction,
    sequence_cosine_reward,
    stage_cosine_reward,
)


class TestSequenceCosine:
    def test_identical_sequences_score_one(self):
        assert sequence_cosine_reward([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sequence_cosine_reward([0, 1], [0, 1, 2])

    def test_different_sequences_below_one(self):
        assert sequence_cosine_reward([2, 1, 0], [0, 1, 2]) < 1.0

    def test_zero_index_contributes(self):
        # Without the +1 shift, a leading 0 would be invisible.
        r1 = sequence_cosine_reward([0, 1], [0, 1])
        r2 = sequence_cosine_reward([1, 0], [0, 1])
        assert r1 == pytest.approx(1.0)
        assert r2 < r1


class TestStageCosine:
    def test_identical_all_zero_stages_score_one(self):
        assert stage_cosine_reward([0, 0, 0], [0, 0, 0]) == pytest.approx(1.0)

    def test_identical_stages_score_one(self):
        assert stage_cosine_reward([0, 1, 2, 2], [0, 1, 2, 2]) == pytest.approx(1.0)

    def test_divergent_stages_penalized(self):
        close = stage_cosine_reward([0, 1, 1, 2], [0, 1, 2, 2])
        far = stage_cosine_reward([2, 2, 0, 0], [0, 0, 2, 2])
        assert far < close < 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stage_cosine_reward([0], [0, 1])


class TestExactMatch:
    def test_full_match(self):
        assert exact_match_fraction([3, 1, 2], [3, 1, 2]) == 1.0

    def test_partial_match(self):
        assert exact_match_fraction([3, 1, 2], [3, 2, 1]) == pytest.approx(1 / 3)

    def test_empty_sequences(self):
        assert exact_match_fraction([], []) == 1.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20)
)
def test_rewards_bounded(stages):
    """Property: cosine rewards of non-negative vectors lie in [0, 1]."""
    other = list(reversed(stages))
    r = stage_cosine_reward(stages, other)
    assert 0.0 <= r <= 1.0 + 1e-12
    assert stage_cosine_reward(stages, stages) == pytest.approx(1.0)
