"""Tests for the end-to-end RESPECT scheduler and checkpoint handling."""

import numpy as np
import pytest

from repro.embedding.features import EmbeddingConfig
from repro.errors import CheckpointError, SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import (
    RespectScheduler,
    load_policy,
    load_pretrained_policy,
    save_policy,
)


@pytest.fixture(scope="module")
def pretrained():
    return load_pretrained_policy()


class TestCheckpointIo:
    def test_save_load_round_trip(self, tmp_path):
        policy = PointerNetworkPolicy(feature_dim=15, hidden_size=8, seed=4)
        save_policy(policy, tmp_path, "unit")
        restored = load_policy(tmp_path, "unit")
        assert restored.hidden_size == 8
        np.testing.assert_array_equal(
            restored.w_emb.value, policy.w_emb.value
        )

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_policy(tmp_path, "ghost")

    def test_pretrained_checkpoint_ships(self, pretrained):
        assert pretrained.feature_dim == EmbeddingConfig().feature_dim


class TestRespectScheduler:
    def test_feature_dim_mismatch_rejected(self):
        policy = PointerNetworkPolicy(feature_dim=3, hidden_size=8)
        with pytest.raises(SchedulingError):
            RespectScheduler(policy=policy)

    def test_schedules_synthetic_graphs(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        for seed in range(3):
            graph = sample_synthetic_dag(num_nodes=30, degree=3, seed=seed)
            result = scheduler.schedule(graph, 4)
            assert result.schedule.is_valid()
            assert result.method == "respect"
            assert result.solve_time > 0

    def test_constrained_decoding_needs_no_repair(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=30, degree=4, seed=9)
        result = scheduler.schedule(graph, 5)
        assert result.extras["repaired_violations"] == 0

    def test_generalizes_to_larger_graphs(self, pretrained):
        """The paper's headline generalization claim: trained on |V|=30,
        scheduling 100+-node graphs without retraining."""
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=120, degree=3, seed=1)
        result = scheduler.schedule(graph, 6)
        assert result.schedule.is_valid()

    def test_sibling_rule_option(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained, enforce_siblings=True)
        graph = sample_synthetic_dag(num_nodes=20, degree=3, seed=2)
        result = scheduler.schedule(graph, 3)
        assert result.schedule.sibling_violations() == []

    def test_invalid_stage_count_rejected(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=10, degree=2, seed=0)
        with pytest.raises(SchedulingError):
            scheduler.schedule(graph, 0)


class TestScheduleBatch:
    def test_batched_identical_to_sequential_mixed_sizes(self, pretrained):
        """B=8 mixed-size graphs: schedule_batch must reproduce the exact
        per-graph schedule() outputs (the padding/masking must not leak
        into any row's decode)."""
        scheduler = RespectScheduler(policy=pretrained)
        configs = [
            (10, 2), (14, 3), (18, 2), (22, 4),
            (26, 3), (30, 3), (34, 4), (30, 2),
        ]
        graphs = [
            sample_synthetic_dag(num_nodes=n, degree=d, seed=seed)
            for seed, (n, d) in enumerate(configs)
        ]
        stage_counts = [4, 5, 4, 6, 5, 4, 6, 5]
        sequential = [
            scheduler.schedule(graph, stages)
            for graph, stages in zip(graphs, stage_counts)
        ]
        batched = scheduler.schedule_batch(graphs, stage_counts)
        assert len(batched) == len(graphs)
        for seq, bat in zip(sequential, batched):
            assert bat.schedule.assignment == seq.schedule.assignment
            assert bat.schedule.is_valid()
            assert bat.method == "respect"
            assert bat.extras["batch_size"] == len(graphs)

    def test_shared_stage_count_broadcasts(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graphs = [
            sample_synthetic_dag(num_nodes=12, degree=2, seed=s)
            for s in range(3)
        ]
        results = scheduler.schedule_batch(graphs, 4)
        for graph, result in zip(graphs, results):
            expected = scheduler.schedule(graph, 4)
            assert result.schedule.assignment == expected.schedule.assignment

    def test_amortized_solve_time_reported(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graphs = [
            sample_synthetic_dag(num_nodes=10, degree=2, seed=s)
            for s in range(4)
        ]
        results = scheduler.schedule_batch(graphs, 3)
        for result in results:
            assert result.solve_time > 0
            assert result.solve_time == pytest.approx(
                result.extras["batch_seconds"] / 4
            )

    def test_empty_batch(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        assert scheduler.schedule_batch([], 4) == []

    def test_stage_list_length_mismatch_rejected(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graphs = [sample_synthetic_dag(num_nodes=8, degree=2, seed=0)]
        with pytest.raises(SchedulingError):
            scheduler.schedule_batch(graphs, [4, 5])

    def test_invalid_stage_count_rejected(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graphs = [sample_synthetic_dag(num_nodes=8, degree=2, seed=0)]
        with pytest.raises(SchedulingError):
            scheduler.schedule_batch(graphs, 0)

    def test_decode_orders_match_schedule_orders(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graphs = [
            sample_synthetic_dag(num_nodes=n, degree=2, seed=s)
            for s, n in enumerate([9, 15, 12])
        ]
        orders = scheduler.decode_orders(graphs)
        for graph, order in zip(graphs, orders):
            assert sorted(order) == sorted(n.name for n in graph.nodes)
        assert scheduler.decode_orders([]) == []


class TestScheduleStageSweep:
    def test_sweep_identical_to_per_stage_schedules(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=24, degree=3, seed=5)
        stage_counts = (3, 4, 6)
        sweep = scheduler.schedule_stage_sweep(graph, stage_counts)
        assert len(sweep) == 3
        for result, num_stages in zip(sweep, stage_counts):
            expected = scheduler.schedule(graph, num_stages)
            assert result.schedule.assignment == expected.schedule.assignment
            assert result.extras["sweep_size"] == 3
            assert result.solve_time == pytest.approx(
                result.extras["sweep_seconds"] / 3
            )

    def test_empty_sweep(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=8, degree=2, seed=0)
        assert scheduler.schedule_stage_sweep(graph, []) == []

    def test_invalid_stage_count_rejected(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=8, degree=2, seed=0)
        with pytest.raises(SchedulingError):
            scheduler.schedule_stage_sweep(graph, [4, 0])
