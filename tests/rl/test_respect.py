"""Tests for the end-to-end RESPECT scheduler and checkpoint handling."""

import numpy as np
import pytest

from repro.embedding.features import EmbeddingConfig
from repro.errors import CheckpointError, SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import (
    RespectScheduler,
    load_policy,
    load_pretrained_policy,
    save_policy,
)


@pytest.fixture(scope="module")
def pretrained():
    return load_pretrained_policy()


class TestCheckpointIo:
    def test_save_load_round_trip(self, tmp_path):
        policy = PointerNetworkPolicy(feature_dim=15, hidden_size=8, seed=4)
        save_policy(policy, tmp_path, "unit")
        restored = load_policy(tmp_path, "unit")
        assert restored.hidden_size == 8
        np.testing.assert_array_equal(
            restored.w_emb.value, policy.w_emb.value
        )

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_policy(tmp_path, "ghost")

    def test_pretrained_checkpoint_ships(self, pretrained):
        assert pretrained.feature_dim == EmbeddingConfig().feature_dim


class TestRespectScheduler:
    def test_feature_dim_mismatch_rejected(self):
        policy = PointerNetworkPolicy(feature_dim=3, hidden_size=8)
        with pytest.raises(SchedulingError):
            RespectScheduler(policy=policy)

    def test_schedules_synthetic_graphs(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        for seed in range(3):
            graph = sample_synthetic_dag(num_nodes=30, degree=3, seed=seed)
            result = scheduler.schedule(graph, 4)
            assert result.schedule.is_valid()
            assert result.method == "respect"
            assert result.solve_time > 0

    def test_constrained_decoding_needs_no_repair(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=30, degree=4, seed=9)
        result = scheduler.schedule(graph, 5)
        assert result.extras["repaired_violations"] == 0

    def test_generalizes_to_larger_graphs(self, pretrained):
        """The paper's headline generalization claim: trained on |V|=30,
        scheduling 100+-node graphs without retraining."""
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=120, degree=3, seed=1)
        result = scheduler.schedule(graph, 6)
        assert result.schedule.is_valid()

    def test_sibling_rule_option(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained, enforce_siblings=True)
        graph = sample_synthetic_dag(num_nodes=20, degree=3, seed=2)
        result = scheduler.schedule(graph, 3)
        assert result.schedule.sibling_violations() == []

    def test_invalid_stage_count_rejected(self, pretrained):
        scheduler = RespectScheduler(policy=pretrained)
        graph = sample_synthetic_dag(num_nodes=10, degree=2, seed=0)
        with pytest.raises(SchedulingError):
            scheduler.schedule(graph, 0)
