"""Tests for the imitation and REINFORCE trainers (CPU-scale smoke runs)."""

import numpy as np
import pytest

from repro.datasets.synthetic import generate_dataset
from repro.errors import TrainingError
from repro.rl.imitation import ImitationConfig, ImitationTrainer
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.rl.trainer import RespectTrainingConfig, train_respect_policy


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_dataset(24, num_nodes=8, degrees=(2, 3),
                            stage_choices=(2, 3), seed=5)


@pytest.fixture
def tiny_policy(tiny_dataset):
    feature_dim = tiny_dataset[0].queue.features.shape[1]
    return PointerNetworkPolicy(feature_dim=feature_dim, hidden_size=16, seed=3)


class TestImitation:
    def test_loss_decreases(self, tiny_policy, tiny_dataset):
        trainer = ImitationTrainer(
            tiny_policy, tiny_dataset, ImitationConfig(batch_size=8, seed=1)
        )
        history = trainer.train(25)
        assert history[-1].loss < history[0].loss

    def test_token_accuracy_improves(self, tiny_policy, tiny_dataset):
        trainer = ImitationTrainer(
            tiny_policy, tiny_dataset, ImitationConfig(batch_size=8, seed=1)
        )
        history = trainer.train(30)
        assert history[-1].token_accuracy > history[0].token_accuracy

    def test_empty_dataset_rejected(self, tiny_policy):
        with pytest.raises(TrainingError):
            ImitationTrainer(tiny_policy, [])

    def test_zero_steps_rejected(self, tiny_policy, tiny_dataset):
        trainer = ImitationTrainer(tiny_policy, tiny_dataset)
        with pytest.raises(TrainingError):
            trainer.train(0)


class TestReinforce:
    def test_runs_and_records_history(self, tiny_policy, tiny_dataset):
        trainer = ReinforceTrainer(
            tiny_policy,
            tiny_dataset,
            ReinforceConfig(batch_size=8, baseline="batch_mean", seed=2),
        )
        history = trainer.train(5)
        assert len(history) == 5
        assert all(0.0 <= m.mean_cost <= 2.0 for m in history)

    def test_rollout_baseline_initialized(self, tiny_policy, tiny_dataset):
        trainer = ReinforceTrainer(
            tiny_policy,
            tiny_dataset,
            ReinforceConfig(batch_size=8, baseline="rollout", seed=2),
        )
        history = trainer.train(3)
        # Rollout baselines come from greedy decoding, so they are
        # cost-scaled (not zero like the "none" baseline).
        assert any(m.mean_baseline != 0.0 for m in history) or history[0].mean_cost == 0

    def test_unknown_baseline_rejected(self, tiny_policy, tiny_dataset):
        with pytest.raises(TrainingError):
            ReinforceTrainer(
                tiny_policy, tiny_dataset, ReinforceConfig(baseline="magic")
            )


class TestEvalTrainSplit:
    def test_default_split_disjoint(self, tiny_policy, tiny_dataset):
        trainer = ReinforceTrainer(
            tiny_policy, tiny_dataset,
            ReinforceConfig(baseline="none", eval_fraction=0.25),
        )
        eval_ids = {id(e) for e in trainer.eval_examples}
        train_ids = {id(e) for e in trainer.train_examples}
        assert not eval_ids & train_ids
        assert len(eval_ids) + len(train_ids) == len(tiny_dataset)

    def test_full_eval_fraction_never_overlaps(self, tiny_policy, tiny_dataset):
        # Regression: eval_fraction rounding to the whole dataset used to
        # fall back to training on *all* examples, overlapping the eval
        # split the rollout baseline is refreshed against.
        trainer = ReinforceTrainer(
            tiny_policy, tiny_dataset,
            ReinforceConfig(baseline="none", eval_fraction=1.0),
        )
        assert trainer.train_examples  # never empty
        eval_ids = {id(e) for e in trainer.eval_examples}
        assert not eval_ids & {id(e) for e in trainer.train_examples}
        assert len(trainer.eval_examples) == len(tiny_dataset) - 1

    def test_zero_eval_fraction_trains_on_everything(
        self, tiny_policy, tiny_dataset
    ):
        trainer = ReinforceTrainer(
            tiny_policy, tiny_dataset,
            ReinforceConfig(baseline="none", eval_fraction=0.0),
        )
        assert not trainer.eval_examples
        assert len(trainer.train_examples) == len(tiny_dataset)

    def test_singleton_dataset_trains(self, tiny_policy, tiny_dataset):
        trainer = ReinforceTrainer(
            tiny_policy, tiny_dataset[:1],
            ReinforceConfig(baseline="none", batch_size=1),
        )
        assert len(trainer.train_examples) == 1
        assert not trainer.eval_examples
        trainer.train(1)  # still trainable


class TestEntropyBonus:
    def test_entropy_bonus_changes_gradients(self, tiny_policy, tiny_dataset):
        import copy

        from repro.datasets.synthetic import batch_examples

        chunk, features, _ = next(
            batch_examples(tiny_dataset, 8, shuffle=False)
        )
        plain = copy.deepcopy(tiny_policy)
        trainer = ReinforceTrainer(
            plain, tiny_dataset,
            ReinforceConfig(baseline="batch_mean", entropy_bonus=0.0, seed=4),
        )
        trainer.train_step(chunk, features)

        bonused = copy.deepcopy(tiny_policy)
        trainer_b = ReinforceTrainer(
            bonused, tiny_dataset,
            ReinforceConfig(baseline="batch_mean", entropy_bonus=0.5, seed=4),
        )
        trainer_b.train_step(chunk, features)

        # Same seed -> same sampled rollout; only the entropy term in the
        # surrogate loss differs, so the resulting parameters diverge.
        diffs = [
            float(np.abs(a - b).max())
            for a, b in zip(
                plain.state_dict().values(), bonused.state_dict().values()
            )
        ]
        assert max(diffs) > 0.0

    def test_metrics_record_entropy(self, tiny_policy, tiny_dataset):
        trainer = ReinforceTrainer(
            tiny_policy, tiny_dataset,
            ReinforceConfig(baseline="none", entropy_bonus=0.1, seed=4),
        )
        history = trainer.train(2)
        assert all(m.mean_entropy >= 0.0 for m in history)
        assert any(m.mean_entropy > 0.0 for m in history)


class TestPipeline:
    def test_end_to_end_training_improves_imitation(self):
        config = RespectTrainingConfig(
            dataset_size=16,
            num_nodes=8,
            degrees=(2,),
            stage_choices=(2, 3),
            hidden_size=16,
            imitation_steps=20,
            reinforce_steps=3,
            imitation=ImitationConfig(batch_size=8, seed=0),
            reinforce=ReinforceConfig(batch_size=8, seed=0,
                                      baseline="batch_mean"),
            seed=0,
        )
        result = train_respect_policy(config)
        metrics = result.final_metrics()
        assert metrics["imitation_token_accuracy"] > 0.5
        assert "reinforce_reward" in metrics

    def test_reuses_supplied_examples_and_policy(self, tiny_dataset, tiny_policy):
        config = RespectTrainingConfig(
            imitation_steps=2, reinforce_steps=0,
            imitation=ImitationConfig(batch_size=8),
        )
        result = train_respect_policy(
            config, examples=tiny_dataset, policy=tiny_policy
        )
        assert result.policy is tiny_policy
        assert len(result.examples) == len(tiny_dataset)


class TestPluggableCost:
    def test_cost_fn_drives_training_costs(self, tiny_policy, tiny_dataset):
        """A custom cost over the decoded order replaces the Eq. 3 cost."""
        calls = []

        def order_length_cost(example, order):
            calls.append((example, tuple(order)))
            # Cost keyed on the first decoded node's queue position:
            # deterministic, order-dependent, in [0, 1].
            first = example.queue.node_names.index(order[0])
            return first / max(1, len(order) - 1)

        trainer = ReinforceTrainer(
            tiny_policy,
            tiny_dataset,
            ReinforceConfig(batch_size=8, baseline="batch_mean", seed=2),
            cost_fn=order_length_cost,
        )
        history = trainer.train(3)
        assert len(history) == 3
        assert calls, "cost_fn was never consulted"
        for example, order in calls:
            assert sorted(order) == sorted(example.queue.node_names)
        assert all(0.0 <= m.mean_cost <= 1.0 for m in history)

    def test_cost_fn_used_by_rollout_baseline_eval(self, tiny_policy, tiny_dataset):
        counter = {"calls": 0}

        def constant_cost(example, order):
            counter["calls"] += 1
            return 0.25

        trainer = ReinforceTrainer(
            tiny_policy,
            tiny_dataset,
            ReinforceConfig(batch_size=8, baseline="rollout", seed=2),
            cost_fn=constant_cost,
        )
        # The rollout baseline evaluates on construction via cost_fn.
        assert counter["calls"] > 0
        metrics = trainer.train(1)[-1]
        assert metrics.mean_cost == pytest.approx(0.25)
        assert metrics.mean_baseline == pytest.approx(0.25)

    def test_non_callable_cost_fn_rejected(self, tiny_policy, tiny_dataset):
        with pytest.raises(TrainingError):
            ReinforceTrainer(
                tiny_policy, tiny_dataset, ReinforceConfig(), cost_fn=42
            )
