"""Workload generation: arrival processes, tenants, replay determinism."""

import numpy as np
import pytest

from repro.cluster.workload import (
    BurstyArrivals,
    PoissonArrivals,
    Request,
    Scenario,
    TenantSpec,
    TraceArrivals,
    generate_requests,
    tenant_request_counts,
)
from repro.errors import DeploymentError


def _scenario(**overrides):
    defaults = dict(
        name="s",
        tenants=(
            TenantSpec("a", {"m1": 0.7, "m2": 0.3}, rate_per_s=50.0, slo_seconds=0.1),
            TenantSpec(
                "b",
                {"m2": 1.0},
                rate_per_s=20.0,
                slo_seconds=0.2,
                arrivals=BurstyArrivals(),
            ),
        ),
        duration_s=2.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestArrivalProcesses:
    def test_poisson_rate_roughly_matches(self):
        rng = np.random.default_rng(0)
        times = PoissonArrivals().sample_times(100.0, 50.0, rng)
        assert 0.8 * 5000 < len(times) < 1.2 * 5000
        assert all(0 <= t < 50.0 for t in times)
        assert times == sorted(times)

    def test_poisson_zero_rate_is_silent(self):
        rng = np.random.default_rng(0)
        assert PoissonArrivals().sample_times(0.0, 10.0, rng) == []

    def test_bursty_preserves_mean_rate(self):
        rng = np.random.default_rng(1)
        times = BurstyArrivals(burst_factor=4.0, on_fraction=0.2).sample_times(
            100.0, 50.0, rng
        )
        assert 0.7 * 5000 < len(times) < 1.3 * 5000
        assert times == sorted(times)

    def test_bursty_validates_parameters(self):
        with pytest.raises(DeploymentError):
            BurstyArrivals(on_fraction=0.0)
        with pytest.raises(DeploymentError):
            BurstyArrivals(burst_factor=0.5)
        with pytest.raises(DeploymentError):
            BurstyArrivals(burst_factor=10.0, on_fraction=0.5)
        with pytest.raises(DeploymentError):
            BurstyArrivals(mean_burst_s=0.0)

    def test_trace_replays_and_clips(self):
        rng = np.random.default_rng(0)
        trace = TraceArrivals([0.5, 0.1, 3.0])
        assert trace.sample_times(123.0, 2.0, rng) == [0.1, 0.5]

    def test_trace_rejects_negative_times(self):
        with pytest.raises(DeploymentError):
            TraceArrivals([-1.0])


class TestTenantAndScenarioValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(DeploymentError):
            TenantSpec("t", {}, 1.0, 0.1)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(DeploymentError):
            TenantSpec("t", {"m": 0.0}, 1.0, 0.1)

    def test_negative_rate_rejected(self):
        with pytest.raises(DeploymentError):
            TenantSpec("t", {"m": 1.0}, -1.0, 0.1)

    def test_nonpositive_slo_rejected(self):
        with pytest.raises(DeploymentError):
            TenantSpec("t", {"m": 1.0}, 1.0, 0.0)

    def test_duplicate_tenants_rejected(self):
        tenant = TenantSpec("t", {"m": 1.0}, 1.0, 0.1)
        with pytest.raises(DeploymentError):
            Scenario("s", (tenant, tenant), 1.0)

    def test_model_names_sorted_union(self):
        assert _scenario().model_names() == ["m1", "m2"]


class TestGenerateRequests:
    def test_replay_is_identical(self):
        scenario = _scenario()
        first = generate_requests(scenario, seed=42)
        second = generate_requests(scenario, seed=42)
        assert first == second  # Request is frozen => field-exact equality
        assert first != generate_requests(scenario, seed=43)

    def test_stream_is_time_ordered_with_contiguous_indices(self):
        requests = generate_requests(_scenario(), seed=0)
        assert [r.index for r in requests] == list(range(len(requests)))
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)

    def test_requests_respect_tenant_mix_and_slo(self):
        requests = generate_requests(_scenario(), seed=0)
        for request in requests:
            assert isinstance(request, Request)
            if request.tenant == "a":
                assert request.model in {"m1", "m2"}
                assert request.slo_seconds == 0.1
            else:
                assert request.model == "m2"
                assert request.slo_seconds == 0.2
        counts = tenant_request_counts(requests)
        assert set(counts) == {"a", "b"}
        assert counts["a"] > counts["b"]  # 50 req/s vs 20 req/s

    def test_deadline_property(self):
        request = Request(0, "t", "m", arrival_s=1.5, slo_seconds=0.25)
        assert request.deadline_s == pytest.approx(1.75)
