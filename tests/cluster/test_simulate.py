"""Fleet DES: pipeline equivalence, report invariants, determinism."""

import pytest

from repro.cluster import (
    FleetSimulator,
    ReplicaSpec,
    RoundRobinRouter,
    SloAwareRouter,
    build_fleet,
    default_routers,
    simulate_scenario,
)
from repro.cluster.workload import Request
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.postprocess import postprocess_schedule
from repro.tpu.pipeline import PipelinedTpuSystem
from repro.tpu.power import estimate_energy
from repro.tpu.quantize import quantize_graph


def _burst(model: str, count: int) -> list:
    return [
        Request(i, "t", model, arrival_s=0.0, slo_seconds=10.0)
        for i in range(count)
    ]


class TestPipelineEquivalence:
    """One replica + one model + a t=0 burst must reproduce the tier-1
    pipeline simulator exactly: same completions, busy times and energy."""

    @pytest.fixture(scope="class")
    def single_fleet(self, catalog):
        return build_fleet(
            [ReplicaSpec("only", 4)],
            {"tiny": catalog["tiny"]},
            scheduler=ListScheduler(),
        )

    def test_burst_matches_pipelined_tpu_system(self, catalog, single_fleet):
        num = 40
        graph = quantize_graph(catalog["tiny"])
        schedule = postprocess_schedule(
            ListScheduler().schedule(graph, 4).schedule
        )
        system = PipelinedTpuSystem()
        pipeline_report = system.run(graph, schedule, num_inferences=num)

        simulator = FleetSimulator(single_fleet, RoundRobinRouter())
        fleet_report = simulator.simulate(_burst("tiny", num))
        replica = fleet_report.replicas[0]

        assert fleet_report.horizon_s == pytest.approx(
            pipeline_report.makespan_seconds, rel=1e-12
        )
        assert replica.served == num
        for util, busy in zip(
            replica.stage_utilization, pipeline_report.stage_busy_seconds
        ):
            assert util * fleet_report.horizon_s == pytest.approx(busy, rel=1e-9)
        # Identical byte flows + busy times => identical energy estimate.
        energy = estimate_energy(pipeline_report)
        assert replica.energy.total_joules == pytest.approx(
            energy.total_joules, rel=1e-6
        )


class TestReportInvariants:
    @pytest.mark.parametrize("router_index", [0, 1, 2])
    def test_invariants_hold_for_every_router(
        self, hetero_fleet, skewed_scenario, router_index
    ):
        router = default_routers()[router_index]
        report = simulate_scenario(skewed_scenario, hetero_fleet, router, seed=3)
        # Drain: every admitted request completes.
        assert report.completed + report.rejected == report.requests
        assert sum(t.completed for t in report.tenants) == report.completed
        assert sum(t.requests for t in report.tenants) == report.requests
        assert sum(r.served for r in report.replicas) == report.completed
        # Utilization is a busy fraction of the horizon.
        for replica in report.replicas:
            assert 0.0 <= replica.utilization <= 1.0
            assert all(0.0 <= u <= 1.0 for u in replica.stage_utilization)
            assert 0.0 <= replica.bus_utilization <= 1.0
            assert replica.utilization == max(replica.stage_utilization)
        assert report.throughput_per_s == pytest.approx(
            report.completed / report.horizon_s
        )
        assert 0.0 <= report.slo_attainment <= 1.0
        # Latencies are causal: nothing completes faster than its
        # uncontended pipeline traversal on the fastest replica.
        fastest = min(
            replica.deployment(name).latency_seconds
            for replica in hetero_fleet.replicas
            for name in hetero_fleet.models
        )
        for tenant in report.tenants:
            if tenant.completed:
                assert tenant.latency_p50_s >= fastest
                assert tenant.latency_p99_s >= tenant.latency_p50_s

    def test_empty_stream(self, hetero_fleet):
        simulator = FleetSimulator(hetero_fleet, RoundRobinRouter())
        report = simulator.simulate([], duration_s=1.0)
        assert report.requests == 0
        assert report.completed == 0
        assert report.horizon_s == 1.0
        assert report.slo_attainment == 0.0
        assert report.throughput_per_s == 0.0
        for replica in report.replicas:
            assert replica.served == 0
            assert replica.utilization == 0.0
            # Idle replicas still burn idle/host power (the power-model
            # regression: no ZeroDivisionError on zero inferences).
            assert replica.energy.total_joules > 0
            assert replica.energy.joules_per_inference == 0.0

    def test_attainment_scored_per_request_slo(self, homo_fleet):
        # Two requests from one tenant with different deadlines: the
        # impossible 1ns SLO must count as a miss even though the
        # tenant's first-seen SLO is generous.
        requests = [
            Request(0, "t", "tiny", arrival_s=0.0, slo_seconds=5.0),
            Request(1, "t", "tiny", arrival_s=0.0, slo_seconds=1e-9),
        ]
        simulator = FleetSimulator(homo_fleet, RoundRobinRouter())
        report = simulator.simulate(requests)
        tenant = report.tenant("t")
        assert tenant.completed == 2
        assert tenant.slo_attainment == pytest.approx(0.5)
        assert report.slo_attainment == pytest.approx(0.5)

    def test_duplicate_request_indices_rejected(self, homo_fleet):
        from repro.errors import DeploymentError

        requests = [
            Request(0, "t", "tiny", arrival_s=0.0, slo_seconds=1.0),
            Request(0, "t", "tiny", arrival_s=0.1, slo_seconds=1.0),
        ]
        simulator = FleetSimulator(homo_fleet, RoundRobinRouter())
        with pytest.raises(DeploymentError):
            simulator.simulate(requests)


class TestModelSwitchReload:
    def test_switching_models_costs_time(self, catalog):
        fleet = build_fleet(
            [ReplicaSpec("only", 2)], catalog, scheduler=ListScheduler()
        )
        requests = []
        for i in range(20):
            model = "tiny" if i % 2 == 0 else "big"
            requests.append(
                Request(i, "t", model, arrival_s=0.0, slo_seconds=10.0)
            )
        with_reload = FleetSimulator(
            fleet, RoundRobinRouter(), model_switch_reload=True
        ).simulate(requests)
        without = FleetSimulator(
            fleet, RoundRobinRouter(), model_switch_reload=False
        ).simulate(requests)
        assert with_reload.horizon_s > without.horizon_s

    def test_single_model_unaffected_by_reload_flag(self, catalog):
        fleet = build_fleet(
            [ReplicaSpec("only", 2)],
            {"tiny": catalog["tiny"]},
            scheduler=ListScheduler(),
        )
        on = FleetSimulator(
            fleet, RoundRobinRouter(), model_switch_reload=True
        ).simulate(_burst("tiny", 10))
        off = FleetSimulator(
            fleet, RoundRobinRouter(), model_switch_reload=False
        ).simulate(_burst("tiny", 10))
        assert on == off


class TestDeterminism:
    def test_same_seed_same_report(self, hetero_fleet, skewed_scenario):
        first = simulate_scenario(
            skewed_scenario, hetero_fleet, SloAwareRouter(), seed=11
        )
        second = simulate_scenario(
            skewed_scenario, hetero_fleet, SloAwareRouter(), seed=11
        )
        assert first == second

    def test_different_seed_different_trace(self, hetero_fleet, skewed_scenario):
        first = simulate_scenario(
            skewed_scenario, hetero_fleet, SloAwareRouter(), seed=11
        )
        other = simulate_scenario(
            skewed_scenario, hetero_fleet, SloAwareRouter(), seed=12
        )
        assert first != other
