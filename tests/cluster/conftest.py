"""Shared fixtures for the cluster test suite.

Synthetic two-model catalogs over artificially small-SRAM device specs
keep the fleet tests fast while still exhibiting the heterogeneity the
routers exploit (weight streaming on short pipelines, a slow shared
bus, model-switch reloads).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.cluster import Fleet, ReplicaSpec, Scenario, TenantSpec, build_fleet
from repro.graphs.dag import ComputationalGraph
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.spec import EdgeTPUSpec, UsbSpec


@pytest.fixture(scope="session")
def catalog() -> Dict[str, ComputationalGraph]:
    tiny = sample_synthetic_dag(num_nodes=10, degree=2, seed=1)
    tiny.name = "tiny"
    big = sample_synthetic_dag(num_nodes=40, degree=3, seed=2)
    big.name = "big"
    return {"tiny": tiny, "big": big}


@pytest.fixture(scope="session")
def small_sram_spec() -> EdgeTPUSpec:
    return EdgeTPUSpec(name="small_sram", sram_bytes=400_000)


@pytest.fixture(scope="session")
def slow_bus_spec() -> EdgeTPUSpec:
    return EdgeTPUSpec(
        name="slow_bus",
        sram_bytes=400_000,
        usb=UsbSpec(bandwidth_bytes_per_s=80e6, per_transfer_latency_s=5e-4),
    )


@pytest.fixture(scope="session")
def hetero_specs(small_sram_spec, slow_bus_spec) -> List[ReplicaSpec]:
    return [
        ReplicaSpec("fast_a", 4, small_sram_spec),
        ReplicaSpec("fast_b", 4, small_sram_spec),
        ReplicaSpec("short", 2, small_sram_spec),
        ReplicaSpec("slowbus", 4, slow_bus_spec, bus_mode="shared"),
    ]


@pytest.fixture(scope="session")
def hetero_fleet(hetero_specs, catalog) -> Fleet:
    return build_fleet(hetero_specs, catalog, scheduler=ListScheduler())


@pytest.fixture(scope="session")
def homo_fleet(catalog) -> Fleet:
    specs = [ReplicaSpec(f"r{i}", 4) for i in range(3)]
    return build_fleet(specs, {"tiny": catalog["tiny"]}, scheduler=ListScheduler())


@pytest.fixture
def skewed_scenario() -> Scenario:
    """Heavy tight-SLO tenant on the big model over light background."""
    return Scenario(
        name="skewed_synth",
        tenants=(
            TenantSpec("heavy", {"big": 1.0}, rate_per_s=100.0, slo_seconds=0.03),
            TenantSpec("light", {"tiny": 1.0}, rate_per_s=60.0, slo_seconds=0.06),
            TenantSpec(
                "mixed",
                {"tiny": 0.5, "big": 0.5},
                rate_per_s=20.0,
                slo_seconds=0.06,
            ),
        ),
        duration_s=2.0,
    )


@pytest.fixture
def overload_scenario() -> Scenario:
    """One tenant pushing past a single replica's capacity."""
    return Scenario(
        name="homog_overload",
        tenants=(
            TenantSpec("steady", {"tiny": 1.0}, rate_per_s=4000.0, slo_seconds=0.1),
        ),
        duration_s=0.5,
    )
