"""End-to-end acceptance: zoo models -> service-backed fleet -> routers.

The issue's acceptance scenario: >= 3 tenants over >= 3 zoo models on a
heterogeneous fleet of >= 4 replicas, schedules looked up through a
shared SchedulingService, with bit-identical FleetReports across two
fully independent runs under the same seed, and the SLO-aware router
strictly beating round-robin on the skewed-tenant scenario.
"""

import pytest

from repro.cluster import (
    RoundRobinRouter,
    SloAwareRouter,
    build_fleet,
    simulate_scenario,
)
from repro.cluster.scenarios import (
    DEFAULT_MODELS,
    heterogeneous_fleet,
    scenario_models,
    skewed_tenants_scenario,
)
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService

SEED = 0


@pytest.fixture(scope="module")
def scenario():
    return skewed_tenants_scenario(duration_s=3.0)


def _fresh_run(scenario, router):
    """Everything from scratch: models, service, fleet, trace, report."""
    models = scenario_models(scenario)
    with SchedulingService(ListScheduler()) as service:
        fleet = build_fleet(heterogeneous_fleet(4), models, service=service)
    return fleet, simulate_scenario(scenario, fleet, router, seed=SEED)


def test_acceptance_scenario_shape(scenario):
    assert len(scenario.tenants) >= 3
    assert len(scenario.model_names()) >= 3
    assert set(scenario.model_names()) <= set(DEFAULT_MODELS)
    assert len(heterogeneous_fleet(4)) >= 4
    stage_counts = {spec.num_stages for spec in heterogeneous_fleet(4)}
    bus_modes = {spec.bus_mode for spec in heterogeneous_fleet(4)}
    specs = {spec.spec.name for spec in heterogeneous_fleet(4)}
    # Genuinely heterogeneous: stage counts, bus modes and device specs
    # all vary across the fleet.
    assert len(stage_counts) > 1
    assert len(bus_modes) > 1
    assert len(specs) > 1


def test_service_backed_schedule_reuse(scenario):
    fleet, report = _fresh_run(scenario, SloAwareRouter())
    # 3 models x 4 replicas, of which 3 replicas share the 4-stage count:
    # 6 of the 12 schedule lookups must come from the fingerprint cache.
    assert fleet.build_stats.schedule_requests == 12
    assert fleet.build_stats.cache_hits == 6
    assert report.schedule_reuse_hit_rate == pytest.approx(0.5)


def test_bit_identical_replay_across_independent_runs(scenario):
    _, first = _fresh_run(scenario, SloAwareRouter())
    _, second = _fresh_run(scenario, SloAwareRouter())
    # Dataclass equality is field-exact (floats included): the runs are
    # bit-identical, not merely statistically close.
    assert first == second


def test_slo_aware_strictly_beats_round_robin(scenario):
    _, rr = _fresh_run(scenario, RoundRobinRouter())
    _, slo = _fresh_run(scenario, SloAwareRouter())
    assert rr.requests == slo.requests  # identical trace
    assert slo.slo_attainment > rr.slo_attainment
    assert slo.tenant("heavy").latency_p99_s < rr.tenant("heavy").latency_p99_s
    # Both drained the stream: attainment differs by routing alone.
    assert rr.completed == rr.requests
    assert slo.completed == slo.requests
