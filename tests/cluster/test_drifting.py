"""Tests for the drifting-graph workload scenario."""

import pytest

from repro.cluster.drifting import (
    GraphDriftScenario,
    GraphTenantSpec,
    generate_graph_requests,
)
from repro.cluster.scenarios import attention_drift_scenario
from repro.errors import DeploymentError
from repro.graphs.fingerprint import graph_fingerprint


@pytest.fixture(scope="module")
def scenario():
    return attention_drift_scenario(duration_s=8.0, drift_at_s=3.0)


class TestScenarioValidation:
    def test_drift_point_must_be_inside_horizon(self, scenario):
        with pytest.raises(DeploymentError):
            GraphDriftScenario(
                name="bad",
                tenants=scenario.tenants,
                duration_s=4.0,
                drift_at_s=4.0,
                pre_family=scenario.pre_family,
                post_family=scenario.post_family,
            )

    def test_tenant_validation(self):
        with pytest.raises(DeploymentError):
            GraphTenantSpec(name="t", rate_per_s=-1.0, num_stages=4)
        with pytest.raises(DeploymentError):
            GraphTenantSpec(name="t", rate_per_s=1.0, num_stages=0)

    def test_duplicate_tenants_rejected(self, scenario):
        with pytest.raises(DeploymentError):
            GraphDriftScenario(
                name="dup",
                tenants=(scenario.tenants[0], scenario.tenants[0]),
                duration_s=8.0,
                drift_at_s=3.0,
                pre_family=scenario.pre_family,
                post_family=scenario.post_family,
            )


class TestRequestGeneration:
    def test_time_ordered_with_global_indices(self, scenario):
        requests = generate_graph_requests(scenario, seed=0)
        assert requests
        assert [r.index for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0 <= r.arrival_s < scenario.duration_s for r in requests)

    def test_phase_splits_exactly_at_drift_point(self, scenario):
        requests = generate_graph_requests(scenario, seed=0)
        for request in requests:
            expected = "post" if request.arrival_s >= scenario.drift_at_s else "pre"
            assert request.phase == expected
        phases = {r.phase for r in requests}
        assert phases == {"pre", "post"}

    def test_families_differ_across_phases(self, scenario):
        requests = generate_graph_requests(scenario, seed=0)
        pre_nodes = {r.graph.num_nodes for r in requests if r.phase == "pre"}
        post_nodes = {r.graph.num_nodes for r in requests if r.phase == "post"}
        # attention heads add nodes on top of the shared backbone size
        assert pre_nodes == {24}
        assert post_nodes == {28}
        assert any(
            "mhsa_0" in r.graph for r in requests if r.phase == "post"
        )
        assert not any(
            "mhsa_0" in r.graph for r in requests if r.phase == "pre"
        )

    def test_deterministic_replay(self, scenario):
        first = generate_graph_requests(scenario, seed=5)
        second = generate_graph_requests(scenario, seed=5)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.arrival_s == b.arrival_s
            assert a.tenant == b.tenant
            assert a.phase == b.phase
            assert graph_fingerprint(a.graph) == graph_fingerprint(b.graph)

    def test_seeds_differ(self, scenario):
        first = generate_graph_requests(scenario, seed=1)
        second = generate_graph_requests(scenario, seed=2)
        assert [r.arrival_s for r in first] != [r.arrival_s for r in second]

    def test_every_tenant_contributes(self, scenario):
        requests = generate_graph_requests(scenario, seed=0)
        tenants = {r.tenant for r in requests}
        assert tenants == {t.name for t in scenario.tenants}
