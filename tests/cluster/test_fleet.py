"""Fleet construction: service-backed schedules, reuse stats, validation."""

import pytest

from repro.cluster import ReplicaSpec, build_fleet
from repro.errors import DeploymentError
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService
from repro.tpu.quantize import is_quantized


class TestReplicaSpec:
    def test_rejects_zero_stages(self):
        with pytest.raises(DeploymentError):
            ReplicaSpec("r", 0)

    def test_rejects_unknown_bus_mode(self):
        with pytest.raises(DeploymentError):
            ReplicaSpec("r", 2, bus_mode="token_ring")


class TestBuildFleet:
    def test_schedule_reuse_across_equal_stage_replicas(self, catalog):
        specs = [ReplicaSpec("a", 4), ReplicaSpec("b", 4), ReplicaSpec("c", 2)]
        fleet = build_fleet(specs, catalog, scheduler=ListScheduler())
        stats = fleet.build_stats
        # 3 replicas x 2 models = 6 requests; replica b's two schedules
        # come straight from replica a's cache entries.
        assert stats.schedule_requests == 6
        assert stats.cache_hits == 2
        assert stats.unique_solves == 4
        assert stats.hit_rate == pytest.approx(2 / 6)
        hits = [
            d.schedule_cache_hit
            for replica in fleet.replicas
            for d in replica.deployments.values()
        ]
        assert sum(hits) == 2

    def test_duplicate_content_models_count_as_reuse(self, catalog):
        """Content-identical models under two catalog names share one
        solve even within a replica's concurrent burst — and the burst
        must report that reuse exactly as the old sequential loop did
        (whether the sibling answered from the cache or by coalescing
        onto the in-flight solve)."""
        graph = next(iter(catalog.values()))
        models = {"original": graph, "alias": graph}
        fleet = build_fleet(
            [ReplicaSpec("a", 4)], models, scheduler=ListScheduler()
        )
        stats = fleet.build_stats
        assert stats.schedule_requests == 2
        assert stats.cache_hits == 1
        assert stats.unique_solves == 1
        replica = fleet.replicas[0]
        assert (
            replica.deployment("original").profiles
            == replica.deployment("alias").profiles
        )
        assert sum(
            d.schedule_cache_hit for d in replica.deployments.values()
        ) == 1

    def test_external_service_is_shared_and_left_open(self, catalog):
        with SchedulingService(ListScheduler()) as service:
            first = build_fleet(
                [ReplicaSpec("a", 4)], catalog, service=service
            )
            second = build_fleet(
                [ReplicaSpec("b", 4)], catalog, service=service
            )
            # The second fleet reuses the first fleet's schedules.
            assert first.build_stats.cache_hits == 0
            assert second.build_stats.cache_hits == 2
            assert service.stats().requests == 4

    def test_deployments_match_replica_stage_counts(self, hetero_fleet):
        for replica in hetero_fleet.replicas:
            for deployment in replica.deployments.values():
                assert deployment.num_stages == replica.num_stages
                assert deployment.period_seconds > 0
                assert deployment.latency_seconds >= deployment.period_seconds
                assert deployment.switch_latency_seconds >= (
                    deployment.switch_period_seconds
                )

    def test_models_are_quantized_once(self, hetero_fleet):
        for graph in hetero_fleet.models.values():
            assert is_quantized(graph)

    def test_requires_exactly_one_scheduling_backend(self, catalog):
        scheduler = ListScheduler()
        with pytest.raises(DeploymentError):
            build_fleet([ReplicaSpec("a", 2)], catalog)
        with SchedulingService(scheduler) as service:
            with pytest.raises(DeploymentError):
                build_fleet(
                    [ReplicaSpec("a", 2)],
                    catalog,
                    scheduler=scheduler,
                    service=service,
                )

    def test_duplicate_replica_names_rejected(self, catalog):
        specs = [ReplicaSpec("same", 2), ReplicaSpec("same", 4)]
        with pytest.raises(DeploymentError):
            build_fleet(specs, catalog, scheduler=ListScheduler())

    def test_empty_inputs_rejected(self, catalog):
        with pytest.raises(DeploymentError):
            build_fleet([], catalog, scheduler=ListScheduler())
        with pytest.raises(DeploymentError):
            build_fleet(
                [ReplicaSpec("a", 2)], {}, scheduler=ListScheduler()
            )

    def test_replica_lookup(self, hetero_fleet):
        assert hetero_fleet.replica("fast_a").name == "fast_a"
        with pytest.raises(DeploymentError):
            hetero_fleet.replica("missing")
        with pytest.raises(DeploymentError):
            hetero_fleet.replicas[0].deployment("unknown_model")
