"""Router policies: SLO-aware vs round-robin, balancing, admission."""

import pytest

from repro.cluster import (
    FleetSimulator,
    LeastOutstandingWorkRouter,
    Request,
    RoundRobinRouter,
    Router,
    SloAwareRouter,
    default_routers,
    simulate_scenario,
)
from repro.cluster.workload import Scenario, TenantSpec
from repro.errors import DeploymentError


class TestRoundRobin:
    def test_cycles_evenly(self, hetero_fleet, skewed_scenario):
        report = simulate_scenario(
            skewed_scenario, hetero_fleet, RoundRobinRouter(), seed=3
        )
        served = [r.served for r in report.replicas]
        assert max(served) - min(served) <= 1


class TestLeastOutstandingWork:
    def test_balances_overloaded_homogeneous_fleet(
        self, homo_fleet, overload_scenario
    ):
        report = simulate_scenario(
            overload_scenario, homo_fleet, LeastOutstandingWorkRouter(), seed=5
        )
        served = [r.served for r in report.replicas]
        # Past one replica's capacity the backlog spills across the whole
        # fleet: every replica carries a substantial share of the load.
        assert all(s >= report.completed / (2 * len(served)) for s in served)
        assert report.slo_attainment == 1.0

    def test_prefers_idle_replicas(self, hetero_fleet, skewed_scenario):
        report = simulate_scenario(
            skewed_scenario, hetero_fleet, LeastOutstandingWorkRouter(), seed=3
        )
        # The slow shared-bus replica should receive almost nothing while
        # the fast boxes absorb the stream.
        assert report.replica("slowbus").served < report.replica("fast_a").served


class TestSloAware:
    def test_beats_round_robin_on_skewed_tenants(
        self, hetero_fleet, skewed_scenario
    ):
        rr = simulate_scenario(
            skewed_scenario, hetero_fleet, RoundRobinRouter(), seed=3
        )
        slo = simulate_scenario(
            skewed_scenario, hetero_fleet, SloAwareRouter(), seed=3
        )
        assert slo.slo_attainment > rr.slo_attainment
        heavy_rr = rr.tenant("heavy")
        heavy_slo = slo.tenant("heavy")
        assert heavy_slo.slo_attainment > heavy_rr.slo_attainment
        assert heavy_slo.latency_p99_s < heavy_rr.latency_p99_s

    def test_admission_control_rejects_hopeless_requests(self, hetero_fleet):
        # An SLO far below any replica's pipeline latency is infeasible
        # from the first request on.
        scenario = Scenario(
            name="hopeless",
            tenants=(
                TenantSpec("t", {"big": 1.0}, rate_per_s=50.0, slo_seconds=1e-6),
            ),
            duration_s=0.5,
        )
        report = simulate_scenario(
            scenario, hetero_fleet, SloAwareRouter(reject_infeasible=True), seed=0
        )
        assert report.rejected == report.requests
        assert report.completed == 0
        assert report.slo_attainment == 0.0

    def test_rejections_count_as_slo_misses(self, hetero_fleet, skewed_scenario):
        report = simulate_scenario(
            skewed_scenario,
            hetero_fleet,
            SloAwareRouter(reject_infeasible=True),
            seed=3,
        )
        for tenant in report.tenants:
            within = tenant.slo_attainment * tenant.requests
            assert within <= tenant.completed + 1e-9


class TestRouterContract:
    def test_default_routers_cover_all_policies(self):
        names = [router.name for router in default_routers()]
        assert names == [
            "round_robin",
            "least_outstanding_work",
            "slo_aware",
        ]

    def test_unknown_model_raises(self, homo_fleet):
        request = Request(0, "t", "not_deployed", arrival_s=0.0, slo_seconds=1.0)
        simulator = FleetSimulator(homo_fleet, RoundRobinRouter())
        with pytest.raises(DeploymentError):
            simulator.simulate([request])

    def test_bad_router_index_raises(self, homo_fleet):
        class BadRouter(Router):
            name = "bad"

            def route(self, request, states, now):
                return 99

        request = Request(0, "t", "tiny", arrival_s=0.0, slo_seconds=1.0)
        simulator = FleetSimulator(homo_fleet, BadRouter())
        with pytest.raises(DeploymentError):
            simulator.simulate([request])
