"""Tests for the deployment flow and the energy model."""

import pytest

from repro.errors import DeploymentError
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.schedule import Schedule
from repro.tpu.deploy import deploy
from repro.tpu.pipeline import PipelineReport
from repro.tpu.power import EnergyReport, PowerModel, estimate_energy
from repro.tpu.quantize import is_quantized, quantize_graph


class TestDeploy:
    def test_quantizes_float_graphs(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        pipeline = deploy(diamond_graph, schedule)
        assert is_quantized(pipeline.graph)
        assert pipeline.num_stages == 2

    def test_partitions_into_stage_subgraphs(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        pipeline = deploy(diamond_graph, schedule)
        assert [len(s) for s in pipeline.subgraphs] == [2, 2]
        assert pipeline.subgraphs[0].node_names == ["a", "b"]

    def test_repair_fixes_invalid_schedules(self, diamond_graph):
        bad = Schedule(diamond_graph, 2, {"a": 1, "b": 0, "c": 0, "d": 0})
        pipeline = deploy(diamond_graph, bad, repair=True)
        assert pipeline.schedule.is_valid()

    def test_no_repair_rejects_invalid(self, diamond_graph):
        bad = Schedule(diamond_graph, 2, {"a": 1, "b": 0, "c": 0, "d": 0})
        with pytest.raises(DeploymentError):
            deploy(diamond_graph, bad, repair=False)

    def test_simulate_smoke(self, small_sampler):
        graph = small_sampler.sample()
        quantized = quantize_graph(graph)
        result = IlpScheduler().schedule(quantized, 3)
        pipeline = deploy(quantized, result.schedule)
        report = pipeline.simulate(num_inferences=20)
        assert report.num_inferences == 20
        assert report.seconds_per_inference > 0

    def test_summary_mentions_every_stage(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        summary = deploy(diamond_graph, schedule).summary()
        assert "stage 0" in summary
        assert "stage 1" in summary


class TestEnergyModel:
    def _report(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        return deploy(diamond_graph, schedule).simulate(num_inferences=50)

    def test_energy_positive_and_decomposed(self, diamond_graph):
        report = self._report(diamond_graph)
        energy = estimate_energy(report)
        assert isinstance(energy, EnergyReport)
        assert energy.total_joules > 0
        assert energy.joules_per_inference == pytest.approx(
            energy.total_joules / 50
        )
        assert set(energy.breakdown) == {"tpu_active", "tpu_idle", "host", "usb"}
        assert energy.total_joules == pytest.approx(
            sum(energy.breakdown.values())
        )

    def test_higher_power_higher_energy(self, diamond_graph):
        report = self._report(diamond_graph)
        low = estimate_energy(report, PowerModel(tpu_active_watts=1.0))
        high = estimate_energy(report, PowerModel(tpu_active_watts=4.0))
        assert high.total_joules > low.total_joules

    def test_negative_power_rejected(self):
        with pytest.raises(DeploymentError):
            PowerModel(tpu_active_watts=-1.0)

    def test_empty_run_has_zero_joules_per_inference(self):
        # Regression: an idle window (e.g. a fleet replica that served
        # nothing) used to crash with ZeroDivisionError; it should report
        # its idle/host energy with joules_per_inference == 0.0.
        report = PipelineReport(
            num_inferences=0,
            makespan_seconds=2.0,
            throughput_per_second=0.0,
            mean_latency_seconds=0.0,
            steady_period_seconds=0.0,
            stage_busy_seconds=[0.0, 0.0],
            bus_busy_seconds=0.0,
            bottleneck="idle",
            profiles=[],
        )
        energy = estimate_energy(report)
        assert energy.joules_per_inference == 0.0
        assert energy.total_joules > 0  # idle + host power over 2 s
        assert energy.breakdown["usb"] == 0.0
        assert energy.breakdown["tpu_active"] == 0.0
