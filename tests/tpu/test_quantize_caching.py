"""Unit tests for quantization and the parameter-cache allocator."""

import pytest

from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph
from repro.tpu.caching import allocate_parameter_cache
from repro.tpu.quantize import is_quantized, quantize_graph


class TestQuantize:
    def test_param_bytes_follow_int8_model(self, diamond_graph):
        quantized = quantize_graph(diamond_graph)
        # 600 float bytes = 150 elements; conv without a recorded shape
        # falls back to 16 channels of calibration metadata + header.
        assert quantized.node("c").param_bytes == 150 + 16 * 8 + 64

    def test_param_bytes_shrink_about_4x_on_real_tensors(self):
        from repro.models.builder import LayerGraphBuilder

        b = LayerGraphBuilder("q")
        x = b.input((28, 28, 64))
        y = b.conv(x, 128, 3, use_bias=False)
        graph = b.finish()
        quantized = quantize_graph(graph)
        original = graph.node(y).param_bytes
        new = quantized.node(y).param_bytes
        # 73728 weights: 4x shrink dominates the 128-channel overhead.
        assert original / 4 < new < original / 3

    def test_activation_bytes_shrink_4x(self, diamond_graph):
        quantized = quantize_graph(diamond_graph)
        assert quantized.node("a").output_bytes == 25  # 100 / 4

    def test_zero_param_nodes_stay_zero(self, diamond_graph):
        quantized = quantize_graph(diamond_graph)
        assert quantized.node("d").param_bytes == 0

    def test_marks_nodes_quantized(self, diamond_graph):
        assert not is_quantized(diamond_graph)
        assert is_quantized(quantize_graph(diamond_graph))

    def test_structure_preserved(self, diamond_graph):
        quantized = quantize_graph(diamond_graph)
        assert quantized.node_names == diamond_graph.node_names
        assert list(quantized.edges()) == list(diamond_graph.edges())

    def test_macs_unchanged(self, diamond_graph):
        quantized = quantize_graph(diamond_graph)
        assert quantized.node("c").macs == diamond_graph.node("c").macs


class TestCachingAllocator:
    def test_everything_fits(self, diamond_graph):
        plan = allocate_parameter_cache(
            diamond_graph, diamond_graph.node_names, sram_bytes=10_000
        )
        assert plan.fits_entirely()
        assert plan.on_chip_total == diamond_graph.total_param_bytes

    def test_overflow_streams_whole_tensors(self, diamond_graph):
        # b=400 fits in 500; c=600 does not -> streamed entirely.
        plan = allocate_parameter_cache(
            diamond_graph, diamond_graph.node_names, sram_bytes=500
        )
        assert plan.on_chip == {"b": 400}
        assert plan.off_chip == {"c": 600}
        assert not plan.fits_entirely()

    def test_zero_sram_streams_everything(self, diamond_graph):
        plan = allocate_parameter_cache(
            diamond_graph, diamond_graph.node_names, sram_bytes=0
        )
        assert plan.on_chip_total == 0
        assert plan.off_chip_total == 1000

    def test_execution_order_priority(self, chain_graph):
        # First-fit in topological order: early tensors win the SRAM.
        plan = allocate_parameter_cache(
            chain_graph, chain_graph.node_names, sram_bytes=400
        )
        assert "n1" in plan.on_chip
        assert "n4" in plan.off_chip

    def test_subset_of_nodes_only(self, diamond_graph):
        plan = allocate_parameter_cache(diamond_graph, ["b"], sram_bytes=10_000)
        assert plan.total == 400

    def test_negative_sram_rejected(self, diamond_graph):
        with pytest.raises(DeploymentError):
            allocate_parameter_cache(diamond_graph, ["b"], sram_bytes=-1)

    def test_bad_order_rejected(self, diamond_graph):
        with pytest.raises(DeploymentError):
            allocate_parameter_cache(
                diamond_graph, ["b", "c"], sram_bytes=100, order=["b"]
            )
