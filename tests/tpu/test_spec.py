"""Unit tests for device specifications."""

import pytest

from repro.errors import DeploymentError
from repro.graphs import ops
from repro.tpu.spec import EdgeTPUSpec, UsbSpec, default_spec


class TestEdgeTPUSpec:
    def test_default_values_sane(self):
        spec = default_spec()
        assert 7 * 2**20 < spec.sram_bytes < 8.1 * 2**20
        assert spec.peak_macs_per_s == pytest.approx(2e12)

    def test_sustained_rate_per_op_kind(self):
        spec = default_spec()
        conv = spec.sustained_macs_per_s(ops.CONV2D)
        depthwise = spec.sustained_macs_per_s(ops.DEPTHWISE_CONV2D)
        assert conv > depthwise > 0
        assert conv <= spec.peak_macs_per_s

    def test_unknown_op_falls_back_to_conv(self):
        spec = default_spec()
        assert spec.sustained_macs_per_s("generic") == spec.sustained_macs_per_s(
            ops.CONV2D
        )

    def test_invalid_configs_rejected(self):
        with pytest.raises(DeploymentError):
            EdgeTPUSpec(sram_bytes=0)
        with pytest.raises(DeploymentError):
            EdgeTPUSpec(peak_macs_per_s=-1)
        with pytest.raises(DeploymentError):
            EdgeTPUSpec(weight_stream_overhead=0.5)


class TestUsb:
    def test_bigger_transfers_take_longer(self):
        usb = UsbSpec()
        assert usb.transfer_seconds(2_000_000) > usb.transfer_seconds(1_000_000)

    def test_latency_floor(self):
        usb = UsbSpec()
        assert usb.transfer_seconds(1) >= usb.per_transfer_latency_s
