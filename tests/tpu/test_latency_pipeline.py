"""Tests for the latency model and the pipeline discrete-event simulator."""

import pytest

from repro.errors import DeploymentError
from repro.graphs import ops
from repro.graphs.dag import ComputationalGraph, OpNode
from repro.scheduling.schedule import Schedule
from repro.tpu.caching import CachingPlan
from repro.tpu.latency import op_compute_seconds, weight_stream_seconds
from repro.tpu.pipeline import (
    PipelinedTpuSystem,
    compute_stage_profiles,
)
from repro.tpu.quantize import quantize_graph
from repro.tpu.spec import EdgeTPUSpec, UsbSpec, default_spec


@pytest.fixture
def spec():
    return default_spec()


class TestOpLatency:
    def test_compute_op_uses_mac_model(self, spec):
        node = OpNode(name="conv", op_type=ops.CONV2D, macs=10**9,
                      output_bytes=1000)
        seconds = op_compute_seconds(node, spec)
        assert seconds == pytest.approx(
            10**9 / spec.sustained_macs_per_s(ops.CONV2D)
        )

    def test_elementwise_uses_byte_model(self, spec):
        node = OpNode(name="relu", op_type=ops.ACTIVATION, output_bytes=32_000)
        assert op_compute_seconds(node, spec) == pytest.approx(
            32_000 / spec.elementwise_bytes_per_s
        )

    def test_input_is_free(self, spec):
        node = OpNode(name="in", op_type=ops.INPUT, output_bytes=10**6)
        assert op_compute_seconds(node, spec) == 0.0

    def test_depthwise_slower_per_mac_than_conv(self, spec):
        conv = OpNode(name="a", op_type=ops.CONV2D, macs=10**8)
        depthwise = OpNode(name="b", op_type=ops.DEPTHWISE_CONV2D, macs=10**8)
        assert op_compute_seconds(depthwise, spec) > op_compute_seconds(conv, spec)

    def test_weight_streaming_includes_overhead(self, spec):
        raw = spec.usb.transfer_seconds(10**6)
        assert weight_stream_seconds(10**6, spec) == pytest.approx(
            raw * spec.weight_stream_overhead
        )
        assert weight_stream_seconds(0, spec) == 0.0


class TestUsbSpec:
    def test_transfer_latency_plus_bandwidth(self):
        usb = UsbSpec(bandwidth_bytes_per_s=100e6, per_transfer_latency_s=1e-3)
        assert usb.transfer_seconds(100_000_000) == pytest.approx(1.001)

    def test_zero_bytes_free(self):
        assert UsbSpec().transfer_seconds(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(DeploymentError):
            UsbSpec().transfer_seconds(-1)


class TestStageProfiles:
    def test_profile_accounting(self, diamond_graph, spec):
        graph = quantize_graph(diamond_graph)
        schedule = Schedule(graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        profiles = compute_stage_profiles(graph, schedule, spec)
        assert len(profiles) == 2
        # Stage 1 receives a's tensor (its child c lives there) and b's
        # tensor (child d) -> 25 + 50 bytes.
        assert profiles[1].input_bytes == 25 + 50
        # Stage 0 sends a and b once each; stage 1 emits the model output.
        assert profiles[0].output_bytes == 25 + 50
        assert profiles[1].output_bytes == graph.node("d").output_bytes

    def test_model_input_charged_to_stage0(self, chain_graph, spec):
        graph = quantize_graph(chain_graph)
        schedule = Schedule(
            graph, 2, {n: (0 if i < 3 else 1)
                       for i, n in enumerate(graph.node_names)}
        )
        profiles = compute_stage_profiles(graph, schedule, spec)
        assert profiles[0].input_bytes == graph.node("n0").output_bytes


class TestPipelineSimulation:
    def _simple_system(self, stream_stage1=False):
        graph = ComputationalGraph("toy")
        graph.add_op("in", op_type=ops.INPUT, output_bytes=1000)
        graph.add_op("c1", op_type=ops.CONV2D, param_bytes=5000,
                     output_bytes=1000, macs=10**7, inputs=["in"])
        graph.add_op("c2", op_type=ops.CONV2D,
                     param_bytes=90_000 if stream_stage1 else 5000,
                     output_bytes=500, macs=10**7, inputs=["c1"])
        for node in graph.nodes:
            node.attrs["quantized"] = True
        schedule = Schedule(graph, 2, {"in": 0, "c1": 0, "c2": 1})
        return graph, schedule

    def test_throughput_approaches_theoretical_period(self, spec):
        graph, schedule = self._simple_system()
        system = PipelinedTpuSystem(spec)
        report = system.run(graph, schedule, num_inferences=300)
        period = system.theoretical_period(report.profiles)
        assert report.steady_period_seconds == pytest.approx(period, rel=0.05)

    def test_more_inferences_amortize_fill(self, spec):
        graph, schedule = self._simple_system()
        system = PipelinedTpuSystem(spec)
        short = system.run(graph, schedule, num_inferences=5)
        long = system.run(graph, schedule, num_inferences=200)
        assert long.seconds_per_inference < short.seconds_per_inference

    def test_cache_overflow_creates_bottleneck(self):
        tiny_sram = EdgeTPUSpec(sram_bytes=10_000)
        system = PipelinedTpuSystem(tiny_sram)
        graph, schedule = self._simple_system(stream_stage1=True)
        report = system.run(graph, schedule, num_inferences=50)
        assert report.profiles[1].off_chip_bytes == 90_000
        assert report.bottleneck in ("stage_1", "link_1")
        assert report.profiles[1].weight_stream_seconds > 0

    def test_shared_bus_slower_than_per_stage(self, spec):
        graph, schedule = self._simple_system()
        per_stage = PipelinedTpuSystem(spec, bus_mode="per_stage").run(
            graph, schedule, 100
        )
        shared = PipelinedTpuSystem(spec, bus_mode="shared").run(
            graph, schedule, 100
        )
        assert shared.seconds_per_inference >= per_stage.seconds_per_inference

    def test_invalid_schedule_rejected(self, spec):
        graph, _ = self._simple_system()
        bad = Schedule(graph, 2, {"in": 1, "c1": 0, "c2": 1})
        with pytest.raises(DeploymentError):
            PipelinedTpuSystem(spec).run(graph, bad, 10)

    def test_unknown_bus_mode_rejected(self, spec):
        with pytest.raises(DeploymentError):
            PipelinedTpuSystem(spec, bus_mode="warp")

    def test_zero_inferences_rejected(self, spec):
        graph, schedule = self._simple_system()
        with pytest.raises(DeploymentError):
            PipelinedTpuSystem(spec).run(graph, schedule, 0)

    def test_report_bus_utilization_bounded(self, spec):
        graph, schedule = self._simple_system()
        report = PipelinedTpuSystem(spec, bus_mode="shared").run(
            graph, schedule, 100
        )
        assert 0.0 <= report.bus_utilization <= 1.0 + 1e-9


class TestMeanLatency:
    def _system(self):
        g = ComputationalGraph("toy")
        g.add_op("in", op_type=ops.INPUT, output_bytes=1000)
        g.add_op("c1", op_type=ops.CONV2D, param_bytes=5000,
                 output_bytes=1000, macs=10**7, inputs=["in"])
        g.add_op("c2", op_type=ops.CONV2D, param_bytes=5000,
                 output_bytes=500, macs=10**7, inputs=["c1"])
        for node in g.nodes:
            node.attrs["quantized"] = True
        return g, Schedule(g, 2, {"in": 0, "c1": 0, "c2": 1})

    def test_single_inference_latency_is_makespan(self, spec):
        graph, schedule = self._system()
        report = PipelinedTpuSystem(spec).run(graph, schedule, 1)
        assert report.mean_latency_seconds == pytest.approx(
            report.makespan_seconds
        )

    def test_latency_is_not_inverse_throughput(self, spec):
        # Regression: mean_latency_seconds used to be makespan / count,
        # a duplicate of seconds_per_inference.  True latency (completion
        # minus admission) spans the whole pipeline per inference and
        # therefore *exceeds* the steady-state per-inference period.
        graph, schedule = self._system()
        report = PipelinedTpuSystem(spec).run(graph, schedule, 200)
        assert report.mean_latency_seconds > report.seconds_per_inference
        assert report.mean_latency_seconds >= report.steady_period_seconds

    def test_latency_at_least_unloaded_flight_time(self, spec):
        graph, schedule = self._system()
        system = PipelinedTpuSystem(spec)
        solo = system.run(graph, schedule, 1)
        loaded = system.run(graph, schedule, 200)
        # Queueing can only add to the unloaded (single-inference) time.
        assert loaded.mean_latency_seconds >= solo.mean_latency_seconds - 1e-12

    def test_latency_bounded_by_makespan(self, spec):
        graph, schedule = self._system()
        report = PipelinedTpuSystem(spec).run(graph, schedule, 50)
        assert report.mean_latency_seconds <= report.makespan_seconds
