"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.dag import ComputationalGraph, OpNode
from repro.graphs.sampler import SyntheticDAGSampler


@pytest.fixture
def diamond_graph() -> ComputationalGraph:
    """The canonical 4-node diamond: a -> {b, c} -> d."""
    g = ComputationalGraph(name="diamond")
    g.add_op("a", op_type="input", output_bytes=100)
    g.add_op("b", op_type="conv2d", param_bytes=400, output_bytes=200, macs=1000,
             inputs=["a"])
    g.add_op("c", op_type="conv2d", param_bytes=600, output_bytes=300, macs=2000,
             inputs=["a"])
    g.add_op("d", op_type="add", output_bytes=200, inputs=["b", "c"])
    return g


@pytest.fixture
def chain_graph() -> ComputationalGraph:
    """A 6-node chain with varied parameter sizes."""
    g = ComputationalGraph(name="chain")
    sizes = [0, 100, 250, 50, 700, 300]
    previous = None
    for i, size in enumerate(sizes):
        name = f"n{i}"
        g.add_op(
            name,
            op_type="input" if i == 0 else "conv2d",
            param_bytes=size,
            output_bytes=64 + 8 * i,
            macs=size * 10,
            inputs=[previous] if previous else [],
        )
        previous = name
    return g


@pytest.fixture
def small_sampler() -> SyntheticDAGSampler:
    """A deterministic synthetic sampler for 10-node graphs."""
    return SyntheticDAGSampler(num_nodes=10, degree=3, seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
