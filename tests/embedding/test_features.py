"""Tests for the Sec. III-A graph embedding."""

import numpy as np
import pytest

from repro.embedding.features import (
    EmbeddingConfig,
    embed_graph,
    embedding_feature_names,
)
from repro.embedding.queue import build_encoder_queue, build_precedence_matrix
from repro.errors import EmbeddingError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.sampler import sample_synthetic_dag


class TestConfig:
    def test_default_feature_dim(self):
        config = EmbeddingConfig()
        # level + 6 parent levels + 6 parent ids + node id + memory.
        assert config.feature_dim == 15

    def test_ablated_dims(self):
        assert EmbeddingConfig(include_parent_ids=False).feature_dim == 9
        assert EmbeddingConfig(include_memory=False).feature_dim == 14

    def test_feature_names_match_dim(self):
        for config in (EmbeddingConfig(), EmbeddingConfig(max_parents=3)):
            assert len(embedding_feature_names(config)) == config.feature_dim


class TestEmbedding:
    def test_shape(self, diamond_graph):
        rows = embed_graph(diamond_graph)
        assert rows.shape == (4, 15)

    def test_levels_normalized(self, diamond_graph):
        rows = embed_graph(diamond_graph)
        levels = rows[:, 0]
        assert levels[0] == 0.0      # source
        assert levels[-1] == 1.0     # sink at max depth
        assert np.all((0 <= levels) & (levels <= 1))

    def test_missing_parent_id_slots_are_minus_one(self, diamond_graph):
        config = EmbeddingConfig(max_parents=2)
        rows = embed_graph(diamond_graph, config)
        names = embedding_feature_names(config)
        first_pid = names.index("parent_id_0")
        # Source row: no parents -> both ID slots -1 (paper convention).
        assert rows[0, first_pid] == -1.0
        assert rows[0, first_pid + 1] == -1.0

    def test_memory_normalized_to_largest_node(self, diamond_graph):
        rows = embed_graph(diamond_graph)
        memory = rows[:, -1]
        assert memory.max() == pytest.approx(1.0)  # node c
        assert memory.min() == 0.0

    def test_node_ids_deterministic(self, diamond_graph):
        a = embed_graph(diamond_graph)
        b = embed_graph(diamond_graph)
        np.testing.assert_array_equal(a, b)

    def test_excess_parents_keep_latest_levels(self):
        g = ComputationalGraph()
        for i in range(5):
            g.add_op(f"p{i}")
        g.add_op("child", inputs=[f"p{i}" for i in range(5)])
        # p-nodes are all level 0; with max_parents=2 the embedding
        # keeps two of them without crashing.
        rows = embed_graph(g, EmbeddingConfig(max_parents=2))
        assert rows.shape == (6, 2 * 2 + 3)

    def test_empty_graph_rejected(self):
        with pytest.raises(EmbeddingError):
            embed_graph(ComputationalGraph())

    def test_all_columns_disabled_rejected(self):
        config = EmbeddingConfig(
            include_levels=False,
            include_parent_levels=False,
            include_parent_ids=False,
            include_node_id=False,
            include_memory=False,
        )
        with pytest.raises(EmbeddingError):
            embed_graph_config_check(config)


def embed_graph_config_check(config):
    graph = ComputationalGraph()
    graph.add_op("a")
    return embed_graph(graph, config)


class TestEncoderQueue:
    def test_rows_follow_topological_order(self, diamond_graph):
        queue = build_encoder_queue(diamond_graph)
        assert queue.node_names == diamond_graph.topological_order()
        assert len(queue) == 4

    def test_names_for_round_trip(self, diamond_graph):
        queue = build_encoder_queue(diamond_graph)
        assert queue.names_for([3, 0]) == [queue.node_names[3], queue.node_names[0]]

    def test_precedence_matrix(self, diamond_graph):
        queue = build_encoder_queue(diamond_graph)
        pos = {n: i for i, n in enumerate(queue.node_names)}
        matrix = queue.precedence
        assert matrix[pos["d"], pos["b"]]
        assert matrix[pos["d"], pos["c"]]
        assert not matrix[pos["a"], :].any()
        # Row sums equal in-degrees.
        assert matrix[pos["d"]].sum() == 2

    def test_precedence_lower_triangular_in_topo_order(self):
        graph = sample_synthetic_dag(num_nodes=20, degree=3, seed=4)
        queue = build_encoder_queue(graph)
        # Parents precede children in a topological queue.
        assert not np.triu(queue.precedence, k=0).any()
