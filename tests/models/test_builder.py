"""Unit tests for the Keras-style layer-graph builder."""

import pytest

from repro.errors import GraphError
from repro.graphs import ops
from repro.models.builder import LayerGraphBuilder


@pytest.fixture
def builder():
    return LayerGraphBuilder("test_model")


class TestShapes:
    def test_conv_same_padding(self, builder):
        x = builder.input((32, 32, 3))
        y = builder.conv(x, 16, 3, strides=2, padding="same")
        assert builder.shape_of(y) == (16, 16, 16)

    def test_conv_valid_padding(self, builder):
        x = builder.input((32, 32, 3))
        y = builder.conv(x, 8, 5, padding="valid")
        assert builder.shape_of(y) == (28, 28, 8)

    def test_zero_pad(self, builder):
        x = builder.input((10, 10, 4))
        y = builder.zero_pad(x, 3)
        assert builder.shape_of(y) == (16, 16, 4)

    def test_pool_defaults_stride_to_pool(self, builder):
        x = builder.input((8, 8, 2))
        y = builder.max_pool(x, 2)
        assert builder.shape_of(y) == (4, 4, 2)

    def test_global_avg_pool_flattens(self, builder):
        x = builder.input((7, 7, 64))
        y = builder.global_avg_pool(x)
        assert builder.shape_of(y) == (64,)

    def test_concat_channels(self, builder):
        x = builder.input((4, 4, 3))
        a = builder.conv(x, 8, 1)
        b = builder.conv(x, 16, 1)
        y = builder.concat([a, b])
        assert builder.shape_of(y) == (4, 4, 24)

    def test_concat_spatial_mismatch_rejected(self, builder):
        x = builder.input((8, 8, 3))
        a = builder.conv(x, 4, 1)
        b = builder.conv(x, 4, 1, strides=2)
        with pytest.raises(GraphError):
            builder.concat([a, b])

    def test_add_shape_mismatch_rejected(self, builder):
        x = builder.input((8, 8, 3))
        a = builder.conv(x, 4, 1)
        b = builder.conv(x, 8, 1)
        with pytest.raises(GraphError):
            builder.add([a, b])


class TestParameterAccounting:
    def test_conv_params(self, builder):
        x = builder.input((8, 8, 3))
        y = builder.conv(x, 16, 3, use_bias=True)
        # (3*3*3*16 + 16) float32 parameters.
        assert builder.graph.node(y).param_bytes == (432 + 16) * 4

    def test_conv_no_bias(self, builder):
        x = builder.input((8, 8, 3))
        y = builder.conv(x, 16, 3, use_bias=False)
        assert builder.graph.node(y).param_bytes == 432 * 4

    def test_bn_params(self, builder):
        x = builder.input((8, 8, 32))
        y = builder.bn(x)
        assert builder.graph.node(y).param_bytes == 4 * 32 * 4

    def test_dense_params(self, builder):
        x = builder.input((7, 7, 4))
        g = builder.global_avg_pool(x)
        y = builder.dense(g, 10)
        assert builder.graph.node(y).param_bytes == (4 * 10 + 10) * 4

    def test_sep_conv_params(self, builder):
        x = builder.input((8, 8, 16))
        y = builder.sep_conv(x, 32, 3)
        # depthwise 3*3*16 + pointwise 1*1*16*32 (no bias).
        assert builder.graph.node(y).param_bytes == (144 + 512) * 4

    def test_activation_and_pool_have_no_params(self, builder):
        x = builder.input((8, 8, 4))
        assert builder.graph.node(builder.act(x)).param_bytes == 0
        assert builder.graph.node(builder.max_pool(x, 2)).param_bytes == 0


class TestMacs:
    def test_conv_macs(self, builder):
        x = builder.input((8, 8, 3))
        y = builder.conv(x, 16, 3, padding="same")
        assert builder.graph.node(y).macs == 8 * 8 * 3 * 3 * 3 * 16

    def test_dense_macs(self, builder):
        x = builder.input((7, 7, 4))
        g = builder.global_avg_pool(x)
        y = builder.dense(g, 10)
        assert builder.graph.node(y).macs == 40


class TestNaming:
    def test_explicit_names(self, builder):
        x = builder.input((4, 4, 1), name="img")
        assert "img" in builder.graph

    def test_auto_names_unique(self, builder):
        x = builder.input((4, 4, 1))
        a = builder.conv(x, 2, 1)
        b = builder.conv(x, 2, 1)
        assert a != b

    def test_finish_returns_valid_dag(self, builder):
        x = builder.input((4, 4, 1))
        builder.conv(x, 2, 1)
        graph = builder.finish()
        assert graph.is_dag()
