"""Table I reproduction tests: every model must match the paper exactly."""

import pytest

from repro.errors import GraphError
from repro.graphs.validate import validate_graph
from repro.models.zoo import (
    FIG4_MODELS,
    FIG5_MODELS,
    MODEL_BUILDERS,
    TABLE1_EXPECTED,
    build_model,
    list_models,
    model_statistics,
)

#: Published float32 parameter counts (keras.applications docs), in
#: millions; builders must land within 1%.
_KNOWN_PARAM_COUNTS_M = {
    "Xception": 22.91,
    "ResNet50": 25.64,
    "ResNet101": 44.71,
    "ResNet152": 60.42,
    "ResNet50v2": 25.61,
    "ResNet101v2": 44.68,
    "ResNet152v2": 60.38,
    "DenseNet121": 8.06,
    "DenseNet169": 14.31,
    "DenseNet201": 20.24,
    "InceptionResNetV2": 55.87,
}


@pytest.mark.parametrize("name", list(TABLE1_EXPECTED))
def test_table1_statistics_match_paper(name):
    stats = model_statistics(build_model(name))
    assert stats == TABLE1_EXPECTED[name]


@pytest.mark.parametrize("name", list(MODEL_BUILDERS))
def test_models_are_valid_single_source_dags(name):
    graph = build_model(name)
    assert validate_graph(graph, require_single_source=True,
                          require_known_ops=True) == []


@pytest.mark.parametrize("name", sorted(_KNOWN_PARAM_COUNTS_M))
def test_parameter_counts_match_published_values(name):
    graph = build_model(name)
    params_m = graph.total_param_bytes / 4 / 1e6
    expected = _KNOWN_PARAM_COUNTS_M[name]
    assert params_m == pytest.approx(expected, rel=0.01)


def test_unknown_model_rejected():
    with pytest.raises(GraphError):
        build_model("AlexNet9000")


def test_list_models_covers_figures():
    names = list_models()
    assert set(FIG4_MODELS) <= set(names)
    assert set(FIG5_MODELS) <= set(names)
    assert len(FIG5_MODELS) == 12


def test_builders_are_deterministic():
    a = build_model("ResNet50")
    b = build_model("ResNet50")
    assert a.node_names == b.node_names
    assert list(a.edges()) == list(b.edges())
    assert a.total_param_bytes == b.total_param_bytes
