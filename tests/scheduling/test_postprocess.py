"""Unit tests for post-inference processing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.postprocess import (
    enforce_sibling_rule,
    postprocess_schedule,
    repair_dependencies,
)
from repro.scheduling.schedule import Schedule


class TestRepairDependencies:
    def test_noop_on_valid_schedule(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        repaired = repair_dependencies(schedule)
        assert repaired.assignment == schedule.assignment

    def test_pushes_node_forward(self, diamond_graph):
        schedule = Schedule(diamond_graph, 3, {"a": 1, "b": 0, "c": 1, "d": 0})
        repaired = repair_dependencies(schedule)
        assert repaired.is_valid()
        # `a` stays, children move to at least a's stage.
        assert repaired.assignment["b"] >= 1
        assert repaired.assignment["d"] >= repaired.assignment["c"]

    def test_cascading_repair(self, chain_graph):
        assignment = {f"n{i}": 0 for i in range(6)}
        assignment["n0"] = 2
        repaired = repair_dependencies(Schedule(chain_graph, 3, assignment))
        assert repaired.is_valid()
        assert all(s == 2 for s in repaired.assignment.values())

    def test_original_untouched(self, diamond_graph):
        schedule = Schedule(diamond_graph, 3, {"a": 1, "b": 0, "c": 1, "d": 0})
        repair_dependencies(schedule)
        assert schedule.assignment["b"] == 0


class TestSiblingRule:
    def test_groups_children_to_earliest_stage(self, diamond_graph):
        schedule = Schedule(diamond_graph, 3, {"a": 0, "b": 0, "c": 2, "d": 2})
        grouped = enforce_sibling_rule(schedule)
        assert grouped.assignment["b"] == grouped.assignment["c"]
        assert grouped.is_valid()

    def test_noop_when_children_already_together(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 1, "c": 1, "d": 1})
        grouped = enforce_sibling_rule(schedule)
        assert grouped.assignment == schedule.assignment

    def test_result_has_no_sibling_violations(self, small_sampler):
        for _ in range(5):
            graph = small_sampler.sample()
            base = Schedule(
                graph, 4,
                {n: i % 4 for i, n in enumerate(graph.node_names)},
            )
            base = repair_dependencies(base)
            grouped = enforce_sibling_rule(base)
            assert grouped.is_valid()
            # Grouping may interact with repair, but must converge to a
            # state without sibling violations (fixed point).
            assert grouped.sibling_violations() == []


class TestPostprocess:
    def test_combined_pipeline(self, diamond_graph):
        schedule = Schedule(diamond_graph, 3, {"a": 1, "b": 0, "c": 2, "d": 2})
        out = postprocess_schedule(schedule, enforce_siblings=True)
        assert out.is_valid()
        assert out.sibling_violations() == []


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_stages=st.integers(min_value=1, max_value=6),
)
def test_repair_always_produces_valid_schedules(seed, num_stages):
    """Property: dependency repair fixes arbitrary stage assignments and
    never moves a node backwards."""
    graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=seed)
    rng_assignment = {
        name: (seed + i * 7) % num_stages
        for i, name in enumerate(graph.node_names)
    }
    schedule = Schedule(graph, num_stages, rng_assignment)
    repaired = repair_dependencies(schedule)
    assert repaired.is_valid()
    for name in graph.node_names:
        assert repaired.assignment[name] >= schedule.assignment[name]
