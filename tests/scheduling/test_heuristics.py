"""Unit tests for list scheduling, Hu, force-directed, annealing, DP."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.annealing import SimulatedAnnealingScheduler
from repro.scheduling.dp_budget import DpBudgetScheduler
from repro.scheduling.force_directed import ForceDirectedScheduler
from repro.scheduling.heuristics import HuScheduler, ListScheduler
from repro.scheduling.ilp import IlpScheduler

ALL_HEURISTICS = [
    ListScheduler,
    HuScheduler,
    ForceDirectedScheduler,
    SimulatedAnnealingScheduler,
    DpBudgetScheduler,
]


@pytest.mark.parametrize("scheduler_cls", ALL_HEURISTICS)
def test_heuristics_produce_valid_schedules(scheduler_cls):
    scheduler = scheduler_cls()
    for seed in range(3):
        graph = sample_synthetic_dag(num_nodes=18, degree=3, seed=seed)
        for stages in (1, 3, 5):
            result = scheduler.schedule(graph, stages)
            assert result.schedule.is_valid(), f"{scheduler_cls.__name__}"
            assert result.solve_time >= 0


@pytest.mark.parametrize("scheduler_cls", ALL_HEURISTICS)
def test_heuristics_never_beat_exact_peak(scheduler_cls):
    """Sanity: the exact peak optimum lower-bounds every heuristic."""
    scheduler = scheduler_cls()
    exact = IlpScheduler(peak_tolerance=0.0)
    graph = sample_synthetic_dag(num_nodes=15, degree=2, seed=42)
    optimal = exact.schedule(graph, 4).extras["peak_optimum_bytes"]
    heuristic = scheduler.schedule(graph, 4)
    assert heuristic.schedule.peak_stage_param_bytes >= optimal


class TestListScheduler:
    def test_budget_slack_validated(self):
        with pytest.raises(SchedulingError):
            ListScheduler(budget_slack=0)

    def test_memory_spread_across_stages(self, chain_graph):
        result = ListScheduler().schedule(chain_graph, 3)
        used_stages = {s for s in result.schedule.assignment.values()}
        assert len(used_stages) >= 2


class TestHuScheduler:
    def test_level_proportional_mapping(self, chain_graph):
        result = HuScheduler().schedule(chain_graph, 3)
        # Chain of 6 levels into 3 stages: two levels per stage.
        stages = [result.schedule.assignment[f"n{i}"] for i in range(6)]
        assert stages == sorted(stages)
        assert stages[0] == 0
        assert stages[-1] == 2


class TestSimulatedAnnealing:
    def test_deterministic_given_seed(self):
        graph = sample_synthetic_dag(num_nodes=12, degree=2, seed=9)
        a = SimulatedAnnealingScheduler(iterations=300, seed=5).schedule(graph, 3)
        b = SimulatedAnnealingScheduler(iterations=300, seed=5).schedule(graph, 3)
        assert a.schedule.assignment == b.schedule.assignment

    def test_improves_or_matches_initial_list_schedule(self):
        graph = sample_synthetic_dag(num_nodes=14, degree=3, seed=11)
        start = ListScheduler().schedule(graph, 4).schedule.objective(0.25)
        annealed = SimulatedAnnealingScheduler(iterations=500, seed=1).schedule(
            graph, 4
        )
        assert annealed.objective <= start + 1e-9

    def test_config_validation(self):
        with pytest.raises(SchedulingError):
            SimulatedAnnealingScheduler(iterations=0)
        with pytest.raises(SchedulingError):
            SimulatedAnnealingScheduler(initial_temperature=-1)


class TestDpBudget:
    def test_contiguous_cuts(self, chain_graph):
        result = DpBudgetScheduler().schedule(chain_graph, 3)
        order = chain_graph.topological_order()
        stages = [result.schedule.assignment[n] for n in order]
        assert stages == sorted(stages)

    def test_budget_is_minimal_contiguous(self, chain_graph):
        result = DpBudgetScheduler().schedule(chain_graph, 3)
        # sizes [0,100,250,50,700,300] into 3 contiguous parts: peak 700.
        assert result.extras["budget"] == 700
