"""Unit tests for the Schedule representation and its metrics."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.schedule import Schedule, ScheduleResult


@pytest.fixture
def diamond_schedule(diamond_graph):
    return Schedule(diamond_graph, 3, {"a": 0, "b": 0, "c": 1, "d": 2})


class TestValidation:
    def test_missing_node_rejected(self, diamond_graph):
        with pytest.raises(SchedulingError):
            Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1})

    def test_unknown_node_rejected(self, diamond_graph):
        with pytest.raises(SchedulingError):
            Schedule(diamond_graph, 2,
                     {"a": 0, "b": 0, "c": 1, "d": 1, "ghost": 0})

    def test_out_of_range_stage_rejected(self, diamond_graph):
        with pytest.raises(SchedulingError):
            Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 2})

    def test_zero_stages_rejected(self, diamond_graph):
        with pytest.raises(SchedulingError):
            Schedule(diamond_graph, 0, {})


class TestStructure:
    def test_stage_nodes(self, diamond_schedule):
        assert diamond_schedule.stage_nodes(0) == ["a", "b"]
        assert diamond_schedule.stage_nodes(1) == ["c"]
        assert diamond_schedule.stages() == [["a", "b"], ["c"], ["d"]]

    def test_stage_of(self, diamond_schedule):
        assert diamond_schedule.stage_of("c") == 1


class TestMemoryMetrics:
    def test_stage_param_bytes(self, diamond_schedule):
        assert diamond_schedule.stage_param_bytes() == [400, 600, 0]

    def test_peak(self, diamond_schedule):
        assert diamond_schedule.peak_stage_param_bytes == 600


class TestCommunication:
    def test_cut_edges(self, diamond_schedule):
        assert set(diamond_schedule.cut_edges()) == {
            ("a", "c"), ("b", "d"), ("c", "d"),
        }

    def test_hop_weighted_comm(self, diamond_schedule):
        # a->c: 100*1, b->d: 200*2, c->d: 300*1.
        assert diamond_schedule.hop_weighted_comm_bytes() == 100 + 400 + 300

    def test_transfer_bytes_dedups_consumer_stages(self, diamond_graph):
        # Both children of `a` in stage 1: one transfer of a's tensor.
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 1, "c": 1, "d": 1})
        assert schedule.transfer_bytes() == 100

    def test_transfer_bytes_counts_distinct_stages(self, diamond_graph):
        schedule = Schedule(diamond_graph, 3, {"a": 0, "b": 1, "c": 2, "d": 2})
        # a feeds stage 1 and stage 2: two transfers; b feeds stage 2.
        assert schedule.transfer_bytes() == 2 * 100 + 200


class TestValidity:
    def test_valid_schedule(self, diamond_schedule):
        assert diamond_schedule.is_valid()
        assert diamond_schedule.dependency_violations() == []

    def test_violation_detected(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 1, "b": 0, "c": 1, "d": 1})
        assert not schedule.is_valid()
        assert ("a", "b") in schedule.dependency_violations()

    def test_sibling_violations(self, diamond_graph):
        schedule = Schedule(diamond_graph, 2, {"a": 0, "b": 0, "c": 1, "d": 1})
        assert schedule.sibling_violations() == ["a"]
        same = Schedule(diamond_graph, 2, {"a": 0, "b": 1, "c": 1, "d": 1})
        assert same.sibling_violations() == []


class TestObjectiveAndSequence:
    def test_objective_combines_terms(self, diamond_schedule):
        assert diamond_schedule.objective(0.0) == 600
        assert diamond_schedule.objective(1.0) == 600 + 800

    def test_to_sequence_stage_major(self, diamond_schedule):
        assert diamond_schedule.to_sequence() == ["a", "b", "c", "d"]

    def test_copy_independent(self, diamond_schedule):
        clone = diamond_schedule.copy()
        clone.assignment["d"] = 1
        assert diamond_schedule.assignment["d"] == 2

    def test_equality(self, diamond_graph, diamond_schedule):
        same = Schedule(diamond_graph, 3, dict(diamond_schedule.assignment))
        assert same == diamond_schedule


class TestScheduleResult:
    def test_objective_defaults_from_schedule(self, diamond_schedule):
        result = ScheduleResult(
            schedule=diamond_schedule, solve_time=0.1, method="test"
        )
        assert result.objective == diamond_schedule.objective()

    def test_explicit_objective_kept(self, diamond_schedule):
        result = ScheduleResult(
            schedule=diamond_schedule, solve_time=0.1, method="test",
            objective=123.0,
        )
        assert result.objective == 123.0
