"""Unit + property tests for rho packing and gamma extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.schedule import Schedule
from repro.scheduling.sequence import (
    minimal_feasible_budget,
    pack_sequence,
    schedule_to_sequence,
    validate_sequence,
)


class TestValidateSequence:
    def test_accepts_permutation(self, diamond_graph):
        validate_sequence(diamond_graph, ["a", "b", "c", "d"])

    def test_rejects_wrong_length(self, diamond_graph):
        with pytest.raises(SchedulingError):
            validate_sequence(diamond_graph, ["a", "b"])

    def test_rejects_duplicates(self, diamond_graph):
        with pytest.raises(SchedulingError):
            validate_sequence(diamond_graph, ["a", "b", "b", "d"])

    def test_rejects_unknown_names(self, diamond_graph):
        with pytest.raises(SchedulingError):
            validate_sequence(diamond_graph, ["a", "b", "c", "zzz"])


class TestMinimalFeasibleBudget:
    def test_single_stage_is_total(self):
        assert minimal_feasible_budget([3, 4, 5], 1) == 12

    def test_many_stages_is_max(self):
        assert minimal_feasible_budget([3, 9, 5], 10) == 9

    def test_classic_partition(self):
        # [7,2,5,10,8] into 3 -> optimal peak 14 ({7,2,5},{10},{8} -> 14).
        assert minimal_feasible_budget([7, 2, 5, 10, 8], 3) == 14

    def test_empty(self):
        assert minimal_feasible_budget([], 3) == 0


class TestPackSequence:
    def test_topological_order_packs_validly(self, chain_graph):
        order = chain_graph.topological_order()
        schedule = pack_sequence(chain_graph, order, 3)
        assert schedule.is_valid()
        assert set(schedule.assignment.values()) <= {0, 1, 2}

    def test_minimal_budget_is_optimal_contiguous(self, chain_graph):
        order = chain_graph.topological_order()
        schedule = pack_sequence(chain_graph, order, 3)
        sizes = [chain_graph.node(n).param_bytes for n in order]
        assert schedule.peak_stage_param_bytes == minimal_feasible_budget(sizes, 3)

    def test_explicit_budget_respected_except_last_stage(self, chain_graph):
        order = chain_graph.topological_order()
        schedule = pack_sequence(chain_graph, order, 2, budget_bytes=400)
        sizes = schedule.stage_param_bytes()
        # Stage 0 respects the budget; the final stage absorbs overflow.
        assert sizes[0] <= 400

    def test_budget_slack_mode(self, chain_graph):
        order = chain_graph.topological_order()
        schedule = pack_sequence(chain_graph, order, 2, budget_slack=1.0)
        assert schedule.num_stages == 2

    def test_single_stage(self, diamond_graph):
        schedule = pack_sequence(
            diamond_graph, diamond_graph.topological_order(), 1
        )
        assert set(schedule.assignment.values()) == {0}

    def test_dependency_aware_respects_parents(self, diamond_graph):
        # Deliberately bad order: d before its parents is impossible to
        # request topologically, but dependency_aware bumps stages.
        order = ["a", "c", "b", "d"]
        schedule = pack_sequence(
            diamond_graph, order, 4, budget_bytes=1, dependency_aware=True
        )
        assert schedule.is_valid()


class TestGammaRoundTrip:
    def test_round_trip_reconstructs_stages(self, chain_graph):
        order = chain_graph.topological_order()
        original = pack_sequence(chain_graph, order, 3)
        gamma = schedule_to_sequence(original)
        repacked = pack_sequence(
            chain_graph, gamma, 3,
            budget_bytes=original.peak_stage_param_bytes,
        )
        assert repacked.assignment == original.assignment


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_stages=st.integers(min_value=1, max_value=6),
)
def test_packing_topological_orders_is_always_valid(seed, num_stages):
    """Property: rho on any topological order yields a dependency-valid
    schedule whose stage indices are monotone along the sequence."""
    graph = sample_synthetic_dag(num_nodes=15, degree=3, seed=seed)
    order = graph.topological_order()
    schedule = pack_sequence(graph, order, num_stages)
    assert schedule.is_valid()
    stages = [schedule.assignment[n] for n in order]
    assert stages == sorted(stages)
