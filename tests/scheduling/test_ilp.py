"""Unit tests for the exact ILP scheduler (both encodings, both objectives)."""

import pytest

from repro.errors import SolverError
from repro.graphs.sampler import SyntheticDAGSampler
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.ilp import IlpScheduler


class TestConfig:
    def test_rejects_unknown_objective(self):
        with pytest.raises(SolverError):
            IlpScheduler(objective="psychic")

    def test_rejects_unknown_formulation(self):
        with pytest.raises(SolverError):
            IlpScheduler(formulation="tensor")

    def test_rejects_negative_weight(self):
        with pytest.raises(SolverError):
            IlpScheduler(comm_weight=-1)


class TestTrivialCases:
    def test_single_stage(self, diamond_graph):
        result = IlpScheduler().schedule(diamond_graph, 1)
        assert set(result.schedule.assignment.values()) == {0}
        assert result.status == "optimal"

    def test_zero_stage_rejected(self, diamond_graph):
        with pytest.raises(SolverError):
            IlpScheduler().schedule(diamond_graph, 0)


class TestOptimality:
    def test_diamond_two_stages_balances_memory(self, diamond_graph):
        result = IlpScheduler(peak_tolerance=0.0).schedule(diamond_graph, 2)
        # params: b=400, c=600 -> optimal peak 600.
        assert result.extras["peak_optimum_bytes"] == 600
        assert result.schedule.is_valid()

    def test_chain_three_stages(self, chain_graph):
        result = IlpScheduler(peak_tolerance=0.0).schedule(chain_graph, 3)
        # sizes [0,100,250,50,700,300]: optimal contiguous peak is 700.
        assert result.extras["peak_optimum_bytes"] == 700

    def test_weighted_matches_bnb(self, small_sampler):
        ilp = IlpScheduler(objective="weighted", comm_weight=0.05)
        bnb = BranchAndBoundScheduler(objective="weighted", comm_weight=0.05)
        for _ in range(3):
            graph = small_sampler.sample()
            for stages in (2, 4):
                a = ilp.schedule(graph, stages)
                b = bnb.schedule(graph, stages)
                assert a.objective == pytest.approx(b.objective, rel=1e-9)

    def test_lexicographic_matches_bnb(self):
        sampler = SyntheticDAGSampler(num_nodes=10, degree=2, seed=77)
        ilp = IlpScheduler(peak_tolerance=0.0)
        bnb = BranchAndBoundScheduler(peak_tolerance=0.0)
        for _ in range(3):
            graph = sampler.sample()
            a = ilp.schedule(graph, 3)
            b = bnb.schedule(graph, 3)
            assert a.objective == pytest.approx(b.objective)
            assert a.extras["comm_bytes"] == pytest.approx(b.extras["comm_bytes"])

    def test_step_and_assignment_encodings_agree(self, small_sampler):
        step = IlpScheduler(peak_tolerance=0.0)
        onehot = IlpScheduler(peak_tolerance=0.0, formulation="assignment")
        graph = small_sampler.sample()
        a = step.schedule(graph, 4)
        b = onehot.schedule(graph, 4)
        assert a.objective == pytest.approx(b.objective)


class TestLexicographicStructure:
    def test_phase2_respects_cap(self, small_sampler):
        graph = small_sampler.sample()
        result = IlpScheduler(peak_tolerance=0.05).schedule(graph, 3)
        assert (
            result.schedule.peak_stage_param_bytes
            <= result.extras["peak_cap_bytes"]
        )

    def test_phase2_never_raises_comm_above_weighted_peak_only(self, small_sampler):
        """Phase 2 must not worsen communication vs the phase-1 schedule's
        trivially achievable comm (it minimizes comm within the cap)."""
        graph = small_sampler.sample()
        lex = IlpScheduler(peak_tolerance=0.0).schedule(graph, 3)
        peak_only = IlpScheduler(objective="weighted", comm_weight=0.0).schedule(
            graph, 3
        )
        assert (
            lex.schedule.hop_weighted_comm_bytes()
            <= peak_only.schedule.hop_weighted_comm_bytes()
        )

    def test_extras_populated(self, diamond_graph):
        result = IlpScheduler().schedule(diamond_graph, 2)
        assert "peak_optimum_bytes" in result.extras
        assert "comm_bytes" in result.extras
        assert result.extras["objective_mode"] == "lexicographic"


class TestValidity:
    def test_schedules_always_dependency_valid(self, small_sampler):
        scheduler = IlpScheduler()
        for _ in range(4):
            graph = small_sampler.sample()
            result = scheduler.schedule(graph, 5)
            assert result.schedule.is_valid()
