"""Unit tests for the branch-and-bound exact scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.schedule import Schedule


class TestLimits:
    def test_rejects_large_graphs(self):
        graph = sample_synthetic_dag(num_nodes=30, degree=2, seed=0)
        scheduler = BranchAndBoundScheduler(max_nodes=20)
        with pytest.raises(SchedulingError):
            scheduler.schedule(graph, 2)

    def test_rejects_unknown_objective(self):
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(objective="quantum")

    def test_node_budget_enforced(self):
        graph = sample_synthetic_dag(num_nodes=20, degree=2, seed=3)
        scheduler = BranchAndBoundScheduler(node_budget=5)
        with pytest.raises(SchedulingError):
            scheduler.schedule(graph, 4)


class TestOptimality:
    def test_diamond_optimum(self, diamond_graph):
        result = BranchAndBoundScheduler(peak_tolerance=0.0).schedule(
            diamond_graph, 2
        )
        assert result.objective == 600  # peak memory optimum
        assert result.schedule.is_valid()
        assert result.status == "optimal"

    def test_never_worse_than_list_heuristic(self):
        bnb = BranchAndBoundScheduler(objective="weighted", comm_weight=0.1)
        heuristic = ListScheduler()
        for seed in range(4):
            graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=seed)
            exact = bnb.schedule(graph, 3)
            approx = heuristic.schedule(graph, 3)
            assert exact.objective <= approx.schedule.objective(0.1) + 1e-9

    def test_single_stage_trivial(self, diamond_graph):
        result = BranchAndBoundScheduler().schedule(diamond_graph, 1)
        assert set(result.schedule.assignment.values()) == {0}

    def test_more_stages_never_hurt_peak(self, diamond_graph):
        peaks = []
        for stages in (1, 2, 3, 4):
            result = BranchAndBoundScheduler(peak_tolerance=0.0).schedule(
                diamond_graph, stages
            )
            peaks.append(result.schedule.peak_stage_param_bytes)
        assert peaks == sorted(peaks, reverse=True)

    def test_lexicographic_comm_minimal_within_cap(self, diamond_graph):
        result = BranchAndBoundScheduler(peak_tolerance=0.0).schedule(
            diamond_graph, 2
        )
        # With peak fixed at 600 (b and c apart), the cheapest valid
        # schedule keeps d with c: a,b | c,d has cuts a->c (100) and
        # b->d (200) = 300 hop-weighted bytes.
        assert result.extras["comm_bytes"] == 300
