"""Unit tests for the Edge TPU compiler proxy."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.schedule import Schedule


class TestParameterBalancing:
    def test_contiguous_segments(self, chain_graph):
        result = EdgeTpuCompilerProxy().schedule(chain_graph, 3)
        order = chain_graph.topological_order()
        stages = [result.schedule.assignment[n] for n in order]
        assert stages == sorted(stages)

    def test_valid_on_branchy_graphs(self):
        for seed in range(4):
            graph = sample_synthetic_dag(num_nodes=20, degree=4, seed=seed)
            result = EdgeTpuCompilerProxy().schedule(graph, 4)
            assert result.schedule.is_valid()

    def test_segments_roughly_balanced(self, chain_graph):
        result = EdgeTpuCompilerProxy().schedule(chain_graph, 2)
        sizes = result.schedule.stage_param_bytes()
        total = chain_graph.total_param_bytes
        # Greedy per-segment target: first segment crosses total/2.
        assert sizes[0] >= total / 2

    def test_more_stages_than_nodes(self, diamond_graph):
        result = EdgeTpuCompilerProxy().schedule(diamond_graph, 10)
        assert result.schedule.is_valid()

    def test_status_heuristic(self, diamond_graph):
        result = EdgeTpuCompilerProxy().schedule(diamond_graph, 2)
        assert result.status == "heuristic"


class TestProfilingPartitioner:
    def test_profiler_improves_or_matches(self, chain_graph):
        # A profiler that scores the true peak memory: profiling search
        # must then not return a worse-peak partition than no profiling.
        def peak_profiler(schedule: Schedule) -> float:
            return float(schedule.peak_stage_param_bytes)

        plain = EdgeTpuCompilerProxy().schedule(chain_graph, 3)
        profiled = EdgeTpuCompilerProxy(profiler=peak_profiler).schedule(
            chain_graph, 3
        )
        assert (
            profiled.schedule.peak_stage_param_bytes
            <= plain.schedule.peak_stage_param_bytes
        )
        assert profiled.extras["profile_iterations"] >= 1

    def test_profiling_cost_is_paid_in_solve_time(self, chain_graph):
        calls = []

        def counting_profiler(schedule: Schedule) -> float:
            calls.append(1)
            return float(schedule.peak_stage_param_bytes)

        EdgeTpuCompilerProxy(profiler=counting_profiler).schedule(chain_graph, 3)
        assert len(calls) >= 2  # initial + at least one candidate

    def test_negative_iterations_rejected(self):
        with pytest.raises(SchedulingError):
            EdgeTpuCompilerProxy(max_profile_iterations=-1)
