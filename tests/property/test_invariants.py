"""Cross-module property-based tests of the core invariants.

These pin the mathematical relationships every figure relies on:
exactness dominance, quantization monotonicity, pipeline-simulation
bounds, and schedule-metric consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.schedule import Schedule
from repro.tpu.pipeline import PipelinedTpuSystem, compute_stage_profiles
from repro.tpu.quantize import quantize_graph
from repro.tpu.spec import default_spec

_seeds = st.integers(min_value=0, max_value=5_000)
_stages = st.integers(min_value=2, max_value=5)


@settings(max_examples=10, deadline=None)
@given(seed=_seeds, num_stages=_stages)
def test_exact_peak_lower_bounds_heuristics(seed, num_stages):
    """The ILP peak optimum is a true lower bound for every heuristic."""
    graph = sample_synthetic_dag(num_nodes=14, degree=3, seed=seed)
    optimum = (
        IlpScheduler(peak_tolerance=0.0)
        .schedule(graph, num_stages)
        .extras["peak_optimum_bytes"]
    )
    for scheduler in (ListScheduler(), EdgeTpuCompilerProxy()):
        result = scheduler.schedule(graph, num_stages)
        assert result.schedule.peak_stage_param_bytes >= optimum


@settings(max_examples=10, deadline=None)
@given(seed=_seeds)
def test_exact_peak_monotone_in_stage_count(seed):
    """More pipeline stages can never worsen the exact peak optimum."""
    graph = sample_synthetic_dag(num_nodes=14, degree=2, seed=seed)
    ilp = IlpScheduler(peak_tolerance=0.0)
    peaks = [
        ilp.schedule(graph, n).extras["peak_optimum_bytes"] for n in (1, 2, 4)
    ]
    assert peaks[0] >= peaks[1] >= peaks[2]


@settings(max_examples=15, deadline=None)
@given(seed=_seeds)
def test_quantization_shrinks_and_preserves(seed):
    """int8 conversion shrinks every tensor and preserves structure."""
    graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=seed)
    quantized = quantize_graph(graph)
    assert quantized.node_names == graph.node_names
    for node in graph.nodes:
        q = quantized.node(node.name)
        assert q.output_bytes <= node.output_bytes
        if node.param_bytes == 0:
            assert q.param_bytes == 0
        assert q.macs == node.macs


@settings(max_examples=8, deadline=None)
@given(seed=_seeds, num_stages=_stages)
def test_simulated_period_bounded_below_by_theory(seed, num_stages):
    """The DES steady-state period can never beat the resource bound."""
    graph = quantize_graph(sample_synthetic_dag(num_nodes=12, degree=2, seed=seed))
    schedule = ListScheduler().schedule(graph, num_stages).schedule
    system = PipelinedTpuSystem()
    report = system.run(graph, schedule, num_inferences=80)
    bound = system.theoretical_period(report.profiles)
    # Rigorous bound: every resource performs N * work seconds of busy
    # time inside the makespan, so makespan / N >= max resource work.
    assert report.makespan_seconds / report.num_inferences >= bound * (1 - 1e-9)
    # The tail-window period estimator can be biased low when the
    # bottleneck sits early (downstream queues drain with compressed
    # spacing); it still may not beat the bound by a wide margin.
    assert report.steady_period_seconds >= bound * 0.9


@settings(max_examples=10, deadline=None)
@given(seed=_seeds, num_stages=_stages)
def test_profile_bytes_consistent_with_schedule(seed, num_stages):
    """Stage-profile byte accounting matches the schedule's own metrics."""
    graph = quantize_graph(sample_synthetic_dag(num_nodes=12, degree=3, seed=seed))
    schedule = ListScheduler().schedule(graph, num_stages).schedule
    profiles = compute_stage_profiles(graph, schedule, default_spec())
    on_off = sum(p.on_chip_bytes + p.off_chip_bytes for p in profiles)
    assert on_off == graph.total_param_bytes
    # Conservation: a cross-stage tensor is uploaded to the host once
    # (out) and delivered to between 1 and (num_stages - 1) consumer
    # stages (in); model inputs/outputs terminate at the host.
    total_in = sum(p.input_bytes for p in profiles)
    total_out = sum(p.output_bytes for p in profiles)
    model_in = sum(graph.node(s).output_bytes for s in graph.sources)
    model_out = sum(graph.node(s).output_bytes for s in graph.sinks)
    uploads = total_out - model_out        # producer tensors sent up
    deliveries = total_in - model_in       # copies sent back down
    assert uploads >= 0
    assert deliveries >= uploads
    assert deliveries <= max(1, num_stages - 1) * max(uploads, 1)
