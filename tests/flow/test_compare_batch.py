"""End-to-end tests for batched comparisons: per-graph stage counts and
the service-routed method dicts."""

import pytest

from repro.flow.compare import (
    compare_methods_over_models,
    run_method_batch,
    schedule_many,
    serve_methods,
)
from repro.graphs.sampler import sample_synthetic_dag
from repro.errors import SchedulingError
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.tpu.quantize import quantize_graph


@pytest.fixture
def quantized_graphs():
    return [
        quantize_graph(sample_synthetic_dag(num_nodes=10, degree=3, seed=seed))
        for seed in range(4)
    ]


class RecordingBatchScheduler:
    """Fake batched scheduler that records the stage counts it received."""

    method_name = "recording"

    def __init__(self):
        self.received = None

    def schedule(self, graph, num_stages):
        assignment = {
            name: min(i, num_stages - 1)
            for i, name in enumerate(graph.node_names)
        }
        return ScheduleResult(
            Schedule(graph, num_stages, assignment), 0.0, self.method_name
        )

    def schedule_batch(self, graphs, stage_counts):
        self.received = list(stage_counts)
        return [self.schedule(g, s) for g, s in zip(graphs, stage_counts)]


class TestPerGraphStageCounts:
    def test_schedule_many_forwards_per_graph_counts(self, quantized_graphs):
        scheduler = RecordingBatchScheduler()
        counts = [2, 3, 4, 2]
        results = schedule_many(scheduler, quantized_graphs, counts)
        assert scheduler.received == counts
        for result, stages in zip(results, counts):
            assert result.schedule.num_stages == stages

    def test_run_method_batch_records_per_outcome_int(self, quantized_graphs):
        counts = [2, 3, 4, 2]
        outcomes = run_method_batch(
            quantized_graphs,
            RecordingBatchScheduler(),
            counts,
            num_inferences=5,
        )
        for outcome, stages in zip(outcomes, counts):
            # Regression: every outcome used to carry the whole sequence.
            assert isinstance(outcome.num_stages, int)
            assert outcome.num_stages == stages
            assert outcome.schedule_result.schedule.num_stages == stages
            assert len(outcome.report.stage_busy_seconds) == stages

    def test_run_method_batch_shared_int_unchanged(self, quantized_graphs):
        outcomes = run_method_batch(
            quantized_graphs,
            RecordingBatchScheduler(),
            3,
            num_inferences=5,
        )
        assert [o.num_stages for o in outcomes] == [3] * len(quantized_graphs)

    def test_mismatched_counts_rejected(self, quantized_graphs):
        with pytest.raises(SchedulingError):
            run_method_batch(
                quantized_graphs, RecordingBatchScheduler(), [2, 3],
                num_inferences=5,
            )

    def test_compare_over_models_per_graph_counts(self, quantized_graphs):
        counts = [2, 2, 3, 4]
        per_graph = compare_methods_over_models(
            quantized_graphs,
            {"proxy": EdgeTpuCompilerProxy},
            counts,
            num_inferences=5,
        )
        assert [cell["proxy"].num_stages for cell in per_graph] == counts


class TestServedMethods:
    def test_serve_methods_matches_unserved(self, quantized_graphs):
        direct = compare_methods_over_models(
            quantized_graphs,
            {"proxy": EdgeTpuCompilerProxy},
            3,
            num_inferences=5,
        )
        served = compare_methods_over_models(
            quantized_graphs,
            serve_methods({"proxy": EdgeTpuCompilerProxy}),
            3,
            num_inferences=5,
        )
        for direct_cell, served_cell in zip(direct, served):
            assert (
                served_cell["proxy"].schedule_result.schedule.assignment
                == direct_cell["proxy"].schedule_result.schedule.assignment
            )
            assert served_cell["proxy"].num_stages == 3

    def test_serve_methods_shares_cache_across_calls(self, quantized_graphs):
        methods = serve_methods({"proxy": EdgeTpuCompilerProxy})
        first = compare_methods_over_models(
            quantized_graphs, methods, 3, num_inferences=5
        )
        second = compare_methods_over_models(
            quantized_graphs, methods, 3, num_inferences=5
        )
        for a, b in zip(first, second):
            assert (
                a["proxy"].schedule_result.schedule.assignment
                == b["proxy"].schedule_result.schedule.assignment
            )
        # The second sweep was served from the method's shared cache.
        probe = methods["proxy"]()
        try:
            assert probe.cache.stats().hits >= len(quantized_graphs)
        finally:
            probe.close()

    def test_serve_methods_caches_repeats(self, quantized_graphs):
        methods = serve_methods({"recording": RecordingBatchScheduler})
        factory = methods["recording"]
        service = factory()
        try:
            repeated = quantized_graphs + quantized_graphs
            outcomes = run_method_batch(
                repeated, service, 3, num_inferences=5
            )
            assert len(outcomes) == len(repeated)
            stats = service.stats()
            assert stats.cache_hits + stats.coalesced >= len(quantized_graphs)
            assert stats.scheduled_graphs <= len(quantized_graphs)
        finally:
            service.close()
