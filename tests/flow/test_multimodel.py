"""Tests for multi-model co-scheduling."""

import pytest

from repro.errors import GraphError
from repro.flow.multimodel import merge_graphs, split_schedule
from repro.graphs.sampler import SyntheticDAGSampler
from repro.scheduling.ilp import IlpScheduler
from repro.tpu.pipeline import PipelinedTpuSystem
from repro.tpu.quantize import quantize_graph


@pytest.fixture
def two_models():
    sampler = SyntheticDAGSampler(num_nodes=10, degree=2, seed=21)
    a = sampler.sample()
    b = sampler.sample()
    return a, b


class TestMerge:
    def test_merged_sizes(self, two_models):
        a, b = two_models
        merged = merge_graphs([a, b])
        assert merged.num_nodes == a.num_nodes + b.num_nodes
        assert merged.num_edges == a.num_edges + b.num_edges
        assert merged.total_param_bytes == a.total_param_bytes + b.total_param_bytes

    def test_namespacing(self, two_models):
        a, b = two_models
        merged = merge_graphs([a, b])
        assert f"{a.name}::n000" in merged
        assert f"{b.name}::n000" in merged

    def test_models_stay_disconnected(self, two_models):
        a, b = two_models
        merged = merge_graphs([a, b])
        assert len(merged.sources) == 2

    def test_duplicate_names_rejected(self, two_models):
        a, _ = two_models
        with pytest.raises(GraphError):
            merge_graphs([a, a])

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            merge_graphs([])


class TestJointScheduling:
    def test_joint_schedule_splits_validly(self, two_models):
        a, b = two_models
        merged = merge_graphs([a, b])
        result = IlpScheduler().schedule(merged, 3)
        per_model = split_schedule(result.schedule, [a, b])
        assert set(per_model) == {a.name, b.name}
        for schedule in per_model.values():
            assert schedule.is_valid()

    def test_joint_peak_not_worse_than_sum_of_solo(self, two_models):
        """Co-scheduling shares the pipeline: joint peak <= sum of solo
        peaks (packing both models into the same stages can only help)."""
        a, b = two_models
        ilp = IlpScheduler(peak_tolerance=0.0)
        solo = (
            ilp.schedule(a, 3).extras["peak_optimum_bytes"]
            + ilp.schedule(b, 3).extras["peak_optimum_bytes"]
        )
        joint = ilp.schedule(merge_graphs([a, b]), 3).extras[
            "peak_optimum_bytes"
        ]
        assert joint <= solo

    def test_merged_graph_simulates(self, two_models):
        a, b = two_models
        merged = quantize_graph(merge_graphs([a, b]))
        result = IlpScheduler().schedule(merged, 3)
        report = PipelinedTpuSystem().run(merged, result.schedule, 20)
        assert report.seconds_per_inference > 0
