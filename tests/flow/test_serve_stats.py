"""Per-method service stats exposed from serve_methods results."""

import pytest

from repro.errors import SchedulingError
from repro.flow.compare import (
    compare_methods,
    default_methods,
    serve_methods,
    served_method_stats,
)
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.heuristics import ListScheduler
from repro.tpu.quantize import quantize_graph


@pytest.fixture
def graph():
    return quantize_graph(sample_synthetic_dag(num_nodes=12, degree=2, seed=0))


def test_stats_report_cache_reuse_across_comparisons(graph):
    methods = serve_methods({"list": ListScheduler})
    compare_methods(graph, methods, num_stages=2)
    compare_methods(graph, methods, num_stages=2)
    stats = served_method_stats(methods)
    assert set(stats) == {"list"}
    listed = stats["list"]
    assert listed.method == "list"
    assert listed.services == 2  # one service per compare_methods call
    assert listed.requests == 2
    assert listed.cache_hits == 1  # second call hits the shared cache
    assert listed.hit_rate == pytest.approx(0.5)
    assert listed.scheduled_graphs == 1
    assert listed.batches == 1
    assert listed.mean_batch_size == pytest.approx(1.0)


def test_stats_before_any_request_are_zeroed():
    methods = serve_methods({"list": ListScheduler})
    stats = served_method_stats(methods)["list"]
    assert stats.services == 0
    assert stats.requests == 0
    assert stats.hit_rate == 0.0
    assert stats.mean_batch_size == 0.0


def test_unserved_methods_are_rejected(graph):
    with pytest.raises(SchedulingError):
        served_method_stats(default_methods())


def test_abandoned_services_fold_without_retention(graph):
    # Factories track their services only weakly: once a comparison call
    # abandons its service, the finalizer folds the final counters into
    # running tallies — stats stay exact over arbitrarily many calls
    # while no service object is retained by the method dict.
    import gc

    methods = serve_methods({"list": ListScheduler})
    rounds = 7
    for _ in range(rounds):
        compare_methods(graph, methods, num_stages=2)
    gc.collect()  # ensure abandoned façades have finalized
    stats = served_method_stats(methods)["list"]
    assert stats.services == rounds
    assert stats.requests == rounds
    assert stats.cache_hits == rounds - 1
    assert stats.scheduled_graphs == 1
