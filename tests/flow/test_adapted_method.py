"""The promoted/adapted policy as a first-class comparison method."""

import pytest

from repro.embedding.features import EmbeddingConfig
from repro.errors import CheckpointError
from repro.flow.compare import (
    adapted_policy_method,
    champion_challenger_methods,
    compare_methods_over_models,
)
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.checkpoints import load_checkpoint, save_checkpoint
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import RespectScheduler
from repro.tpu.quantize import quantize_graph


@pytest.fixture(scope="module")
def challenger_policy():
    return PointerNetworkPolicy(
        feature_dim=EmbeddingConfig().feature_dim, hidden_size=16, seed=9
    )


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory, challenger_policy):
    directory = tmp_path_factory.mktemp("adapted_ckpt")
    save_checkpoint(challenger_policy, directory, "respect_online")
    return directory


@pytest.fixture(scope="module")
def graphs():
    return [
        quantize_graph(sample_synthetic_dag(num_nodes=10, degree=2, seed=s))
        for s in (1, 2)
    ]


class TestAdaptedPolicyMethod:
    def test_factory_builds_scheduler_with_promoted_weights(
        self, checkpoint_dir, challenger_policy
    ):
        factory = adapted_policy_method(checkpoint_dir)
        scheduler = factory()
        assert isinstance(scheduler, RespectScheduler)
        direct = RespectScheduler(
            policy=load_checkpoint(checkpoint_dir, "respect_online")
        )
        assert scheduler.options_fingerprint() == direct.options_fingerprint()

    def test_missing_checkpoint_surfaces_checkpoint_error(self, tmp_path):
        factory = adapted_policy_method(tmp_path, "absent")
        with pytest.raises(CheckpointError):
            factory()

    def test_scheduler_kwargs_forwarded(self, checkpoint_dir):
        scheduler = adapted_policy_method(
            checkpoint_dir, budget_slack=1.25
        )()
        assert scheduler.budget_slack == 1.25


class TestChampionChallengerComparison:
    def test_equivalence_with_direct_schedulers(
        self, checkpoint_dir, challenger_policy, graphs
    ):
        """compare_methods_over_models pits champion vs promoted policy,
        and each method's outcomes equal direct scheduler calls."""
        methods = champion_challenger_methods(checkpoint_dir)
        per_graph = compare_methods_over_models(
            graphs, methods, num_stages=3, num_inferences=4
        )
        assert len(per_graph) == len(graphs)
        champion = RespectScheduler()
        adapted = RespectScheduler(
            policy=load_checkpoint(checkpoint_dir, "respect_online")
        )
        for graph, outcomes in zip(graphs, per_graph):
            assert set(outcomes) == {"respect_champion", "respect_adapted"}
            champ_direct = champion.schedule(graph, 3)
            adapted_direct = adapted.schedule(graph, 3)
            assert (
                outcomes["respect_champion"].schedule_result.schedule.assignment
                == champ_direct.schedule.assignment
            )
            assert (
                outcomes["respect_adapted"].schedule_result.schedule.assignment
                == adapted_direct.schedule.assignment
            )
            assert outcomes["respect_adapted"].method == "respect_adapted"

    def test_custom_champion_factory(self, checkpoint_dir, challenger_policy):
        marker = RespectScheduler(policy=challenger_policy)
        methods = champion_challenger_methods(
            checkpoint_dir, champion_factory=lambda: marker
        )
        assert methods["respect_champion"]() is marker
