"""Tests for dataset generation and labeling."""

import numpy as np
import pytest

from repro.datasets.labels import label_graph
from repro.datasets.synthetic import (
    batch_examples,
    generate_dataset,
    stack_precedence,
)
from repro.errors import TrainingError
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.sequence import pack_sequence


class TestLabelGraph:
    def test_ilp_label(self):
        graph = sample_synthetic_dag(num_nodes=10, degree=2, seed=1)
        schedule, gamma = label_graph(graph, 3, solver="ilp")
        assert schedule.is_valid()
        assert sorted(gamma) == sorted(graph.node_names)

    def test_bnb_label_matches_ilp_objective(self):
        graph = sample_synthetic_dag(num_nodes=10, degree=2, seed=2)
        ilp_schedule, _ = label_graph(graph, 3, solver="ilp")
        bnb_schedule, _ = label_graph(graph, 3, solver="bnb")
        assert (
            ilp_schedule.peak_stage_param_bytes
            == bnb_schedule.peak_stage_param_bytes
        )

    def test_unknown_solver_rejected(self):
        graph = sample_synthetic_dag(num_nodes=8, degree=2, seed=3)
        with pytest.raises(TrainingError):
            label_graph(graph, 2, solver="oracle")

    def test_gamma_is_topologically_consistent(self):
        """gamma follows stage-major order, so parents precede children
        whenever dependencies are respected by the exact schedule."""
        graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=4)
        schedule, gamma = label_graph(graph, 3)
        position = {n: i for i, n in enumerate(gamma)}
        for u, v in graph.edges():
            assert position[u] < position[v]


class TestGenerateDataset:
    def test_counts_and_mix(self):
        examples = generate_dataset(
            10, num_nodes=8, degrees=(2, 4), stage_choices=(2, 3), seed=7
        )
        assert len(examples) == 10
        degrees = {ex.graph.max_in_degree for ex in examples}
        assert degrees <= {2, 3, 4}
        stages = {ex.num_stages for ex in examples}
        assert stages <= {2, 3}

    def test_examples_carry_consistent_labels(self):
        examples = generate_dataset(4, num_nodes=8, seed=8)
        for ex in examples:
            assert sorted(ex.gamma_names) == sorted(ex.graph.node_names)
            names = ex.queue.names_for(ex.gamma_indices)
            assert names == ex.gamma_names
            assert ex.exact_schedule.is_valid()

    def test_reproducible(self):
        a = generate_dataset(3, num_nodes=8, seed=11)
        b = generate_dataset(3, num_nodes=8, seed=11)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.gamma_indices, y.gamma_indices)

    def test_invalid_count_rejected(self):
        with pytest.raises(TrainingError):
            generate_dataset(0)


class TestBatching:
    def test_batches_group_by_size(self):
        small = generate_dataset(4, num_nodes=6, seed=1)
        large = generate_dataset(4, num_nodes=9, seed=2)
        batches = list(batch_examples(small + large, batch_size=8, shuffle=False))
        for chunk, features, targets in batches:
            sizes = {ex.num_nodes for ex in chunk}
            assert len(sizes) == 1
            assert features.shape[:2] == targets.shape

    def test_all_examples_covered(self):
        examples = generate_dataset(7, num_nodes=6, seed=3)
        batches = list(batch_examples(examples, batch_size=3, shuffle=False))
        seen = sum(len(chunk) for chunk, _, _ in batches)
        assert seen == 7

    def test_stack_precedence_shape(self):
        examples = generate_dataset(3, num_nodes=6, seed=4)
        stacked = stack_precedence(examples)
        assert stacked.shape == (3, 6, 6)

    def test_gamma_repacks_through_rho(self):
        """Packing gamma through rho reproduces a valid schedule whose
        peak does not exceed the exact schedule's by more than the
        packing granularity (they share stage boundaries by design)."""
        examples = generate_dataset(3, num_nodes=10, seed=5)
        for ex in examples:
            packed = pack_sequence(ex.graph, ex.gamma_names, ex.num_stages)
            assert packed.is_valid()


class TestEmbeddingDefault:
    def test_embedding_default_is_per_call(self):
        """Regression: the embedding config used to be an evaluated-at-def
        default (one shared instance baked in at import time)."""
        import inspect

        from repro.datasets.synthetic import generate_dataset as gd

        assert inspect.signature(gd).parameters["embedding"].default is None

    def test_explicit_and_default_embeddings_agree(self):
        from repro.embedding.features import EmbeddingConfig

        default = generate_dataset(2, num_nodes=6, seed=6)
        explicit = generate_dataset(2, num_nodes=6, seed=6,
                                    embedding=EmbeddingConfig())
        for a, b in zip(default, explicit):
            assert (a.queue.features == b.queue.features).all()
