"""Schema validation of BENCH_*.json artifacts (scripts/check_bench.py)."""

import importlib.util
import json
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _valid_payload(name="demo"):
    return {
        "bench": name,
        "metrics": {"speedup": 3.5, "nested": {"p50": 0.1, "note": "ok"}},
        "git_rev": "abc1234",
        "seed": 0,
        "created_unix": time.time(),
    }


def _write(tmp_path, payload, filename=None):
    filename = filename or f"BENCH_{payload.get('bench', 'x')}.json"
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return path


def _store_payload():
    payload = _valid_payload("schedule_store")
    payload["metrics"] = {
        "cold_first_n_s": 0.5,
        "warm_first_n_s": 0.01,
        "warm_speedup": 50.0,
        "num_requests": 32,
        "restored_entries": 32,
        "restore_seconds": 0.002,
    }
    return payload


class TestValidation:
    def test_valid_artifact_passes(self, check_bench, tmp_path):
        path = _write(tmp_path, _valid_payload())
        assert check_bench.validate_bench_file(path) == []

    def test_null_git_rev_and_seed_allowed(self, check_bench, tmp_path):
        payload = _valid_payload()
        payload["git_rev"] = None
        payload["seed"] = None
        assert check_bench.validate_bench_file(_write(tmp_path, payload)) == []

    def test_missing_fields_reported(self, check_bench, tmp_path):
        payload = _valid_payload()
        del payload["git_rev"]
        del payload["seed"]
        errors = check_bench.validate_bench_file(_write(tmp_path, payload))
        assert any("git_rev" in e for e in errors)
        assert any("seed" in e for e in errors)

    def test_filename_must_match_bench_name(self, check_bench, tmp_path):
        path = _write(tmp_path, _valid_payload("demo"), "BENCH_other.json")
        errors = check_bench.validate_bench_file(path)
        assert any("does not match filename" in e for e in errors)

    def test_metrics_must_be_object_of_json_leaves(self, check_bench, tmp_path):
        payload = _valid_payload()
        payload["metrics"] = ["not", "a", "dict"]
        errors = check_bench.validate_bench_file(_write(tmp_path, payload))
        assert any("metrics must be an object" in e for e in errors)

    def test_invalid_json_reported_not_raised(self, check_bench, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        errors = check_bench.validate_bench_file(path)
        assert len(errors) == 1 and "invalid JSON" in errors[0]

    def test_bad_scalar_types_reported(self, check_bench, tmp_path):
        payload = _valid_payload()
        payload["seed"] = "zero"
        payload["created_unix"] = -5
        errors = check_bench.validate_bench_file(_write(tmp_path, payload))
        assert any("seed" in e for e in errors)
        assert any("created_unix" in e for e in errors)


class TestRequiredMetrics:
    """Per-bench required metrics (BENCH_REQUIRED_METRICS enforcement)."""

    def test_complete_store_artifact_passes(self, check_bench, tmp_path):
        path = _write(tmp_path, _store_payload())
        assert check_bench.validate_bench_file(path) == []

    @pytest.mark.parametrize(
        "missing",
        [
            "cold_first_n_s",
            "warm_first_n_s",
            "warm_speedup",
            "num_requests",
            "restored_entries",
        ],
    )
    def test_missing_required_metric_fails(self, check_bench, tmp_path, missing):
        payload = _store_payload()
        del payload["metrics"][missing]
        errors = check_bench.validate_bench_file(_write(tmp_path, payload))
        assert any(missing in e and "requires metric" in e for e in errors)

    def test_non_numeric_required_metric_fails(self, check_bench, tmp_path):
        payload = _store_payload()
        payload["metrics"]["warm_speedup"] = "fast"
        errors = check_bench.validate_bench_file(_write(tmp_path, payload))
        assert any(
            "warm_speedup" in e and "must be a number" in e for e in errors
        )

    def test_bool_is_not_a_number(self, check_bench, tmp_path):
        payload = _store_payload()
        payload["metrics"]["num_requests"] = True
        errors = check_bench.validate_bench_file(_write(tmp_path, payload))
        assert any(
            "num_requests" in e and "must be a number" in e for e in errors
        )

    def test_unlisted_bench_has_no_required_metrics(self, check_bench, tmp_path):
        # Benches outside the map keep free-form metrics.
        path = _write(tmp_path, _valid_payload("freeform"))
        assert check_bench.validate_bench_file(path) == []


class TestCli:
    def test_main_passes_on_valid_files(self, check_bench, tmp_path):
        paths = [
            _write(tmp_path, _valid_payload("a")),
            _write(tmp_path, _valid_payload("b")),
        ]
        assert check_bench.main([str(p) for p in paths]) == 0

    def test_main_fails_on_violation(self, check_bench, tmp_path):
        good = _write(tmp_path, _valid_payload("good"))
        bad = _write(tmp_path, {"bench": "bad"}, "BENCH_bad.json")
        assert check_bench.main([str(good), str(bad)]) == 1

    def test_main_fails_when_no_artifacts(self, check_bench):
        assert check_bench.main([str(Path("/nonexistent/BENCH_x.json"))]) == 1

    def test_repo_artifacts_are_valid(self, check_bench):
        """The committed BENCH_*.json at the repo root must stay valid."""
        committed = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert committed, "repo should ship BENCH_*.json artifacts"
        for path in committed:
            assert check_bench.validate_bench_file(path) == [], path
