"""CLI contract of scripts/lint_repro.py: exit codes and --json shape."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "lint_repro.py"
LOCKS_BAD = "tests/analysis/fixtures/locks_bad"

#: Keys every --json payload must carry (tests/tooling pins version 1).
JSON_KEYS = {
    "version",
    "root",
    "rules",
    "files_checked",
    "findings",
    "new",
    "baselined_count",
    "stale_baseline_fingerprints",
    "exit_code",
}

FINDING_KEYS = {
    "rule", "path", "line", "severity", "symbol", "message", "fingerprint",
}


def run_lint(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_repo_gate_is_clean():
    result = run_lint()
    assert result.returncode == 0, result.stdout + result.stderr


def test_json_shape_on_clean_repo():
    result = run_lint("--json")
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    assert set(payload) == JSON_KEYS
    assert payload["version"] == 1
    assert payload["exit_code"] == 0
    assert payload["files_checked"] > 0
    assert len(payload["rules"]) == 6
    for rule in payload["rules"]:
        assert set(rule) == {"id", "description"}


def test_json_reports_violations_with_nonzero_exit():
    result = run_lint(
        "--json", "--no-baseline", "--rule", "lock-discipline", LOCKS_BAD
    )
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["exit_code"] == 1
    assert payload["new"]
    for finding in payload["new"]:
        assert set(finding) == FINDING_KEYS
        assert finding["rule"] == "lock-discipline"
        assert finding["path"].startswith(LOCKS_BAD)


def test_text_mode_flags_violations():
    result = run_lint("--no-baseline", "--rule", "lock-discipline", LOCKS_BAD)
    assert result.returncode == 1
    assert "[lock-discipline]" in result.stdout
    assert "new invariant violations" in result.stderr


def test_update_baseline_then_gate_passes(tmp_path):
    baseline = tmp_path / "baseline.json"
    update = run_lint(
        "--rule", "lock-discipline", "--baseline", str(baseline),
        "--update-baseline", LOCKS_BAD,
    )
    assert update.returncode == 0
    recorded = json.loads(baseline.read_text())
    assert recorded["version"] == 1
    assert recorded["findings"]

    gate = run_lint(
        "--rule", "lock-discipline", "--baseline", str(baseline), LOCKS_BAD
    )
    assert gate.returncode == 0, gate.stdout + gate.stderr
    assert "baselined" in gate.stdout


def test_unknown_rule_is_usage_error():
    result = run_lint("--rule", "no-such-rule")
    assert result.returncode == 2
    assert "unknown rule id" in result.stderr


def test_list_rules():
    result = run_lint("--list-rules")
    assert result.returncode == 0
    for rule_id in (
        "lock-discipline", "determinism", "wire-compat",
        "exception-boundary", "telemetry-naming", "resource-lifecycle",
    ):
        assert rule_id in result.stdout
