"""Unit tests for the :class:`repro.obs.Telemetry` facade."""

from repro.obs import (
    InMemorySpanExporter,
    MetricsRegistry,
    NOOP_SPAN,
    Telemetry,
    current_span,
)


class TestDefaults:
    def test_default_facade_has_real_registry_and_no_tracer(self):
        tel = Telemetry()
        assert isinstance(tel.registry, MetricsRegistry)
        assert tel.tracer is None
        assert not tel.tracing_enabled
        # Counters work without tracing — stats views depend on this.
        tel.counter("c").inc()
        assert tel.counter("c").value == 1

    def test_trace_entry_points_are_noop_without_tracer(self):
        tel = Telemetry()
        assert tel.start_trace("x") is NOOP_SPAN
        assert tel.span("x") is NOOP_SPAN
        span, started = tel.trace_or_current("x")
        assert span is NOOP_SPAN
        assert started


class TestChildLabels:
    def test_child_shares_registry_and_stamps_labels(self):
        tel = Telemetry()
        shard0 = tel.child(shard="0")
        shard1 = tel.child(shard="1")
        assert shard0.registry is tel.registry
        shard0.counter("req").inc(2)
        shard1.counter("req").inc(3)
        assert tel.registry.counter_total("req") == 5
        assert tel.registry.counter_total("req", shard="0") == 2

    def test_nested_children_merge_labels(self):
        tel = Telemetry().child(tier="front").child(outcome="shed")
        tel.counter("adm").inc()
        assert (
            tel.registry.counter_total("adm", tier="front", outcome="shed")
            == 1
        )

    def test_call_site_labels_override_constant_labels(self):
        tel = Telemetry().child(shard="0")
        tel.counter("x", shard="9").inc()
        assert tel.registry.counter_total("x", shard="9") == 1
        assert tel.registry.counter_total("x", shard="0") == 0


class TestTracing:
    def test_with_tracing_roots_sampled_spans(self):
        exporter = InMemorySpanExporter()
        tel = Telemetry.with_tracing(exporter)
        assert tel.tracing_enabled
        span = tel.start_trace("request")
        assert span
        span.end()
        assert exporter.records[0]["name"] == "request"

    def test_facade_labels_become_root_attrs(self):
        exporter = InMemorySpanExporter()
        tel = Telemetry.with_tracing(exporter).child(shard="2")
        tel.start_trace("request").end()
        assert exporter.records[0]["attrs"]["shard"] == "2"

    def test_trace_or_current_joins_active_span(self):
        exporter = InMemorySpanExporter()
        tel = Telemetry.with_tracing(exporter)
        root = tel.start_trace("outer")
        with root.activate():
            joined, started = tel.trace_or_current("inner")
            assert joined is root
            assert not started
        assert current_span() is None
