"""Unit tests for :mod:`repro.obs.metrics`.

The histogram edge cases here (empty window, single sample, values
landing exactly on bucket boundaries) pin the semantics the serving
stats views rely on now that latency percentiles come from registry
histograms instead of pooled raw-sample windows.
"""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    dumps_json,
    parse_prometheus_text,
)


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)
        assert counter.value == 0

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == pytest.approx(1.0)


class TestHistogramEdgeCases:
    def test_empty_percentile_raises(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="empty"):
            hist.percentile(50)

    def test_empty_snapshot_mean_is_zero(self):
        snap = Histogram("h", bounds=(1.0,)).snapshot()
        assert snap.count == 0
        assert snap.mean == 0.0

    def test_single_sample_is_exact_for_every_quantile(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        hist.observe(1.7)
        for q in (0, 1, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(1.7)

    def test_identical_samples_are_exact(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for _ in range(10):
            hist.observe(3.0)
        assert hist.percentile(50) == pytest.approx(3.0)
        assert hist.percentile(99) == pytest.approx(3.0)

    def test_boundary_value_counts_in_le_bucket(self):
        # Prometheus `le` semantics: a value exactly on a bound belongs
        # to that bound's bucket, not the next one.
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap.counts == (0, 1, 0, 0)

    def test_overflow_bucket_catches_large_values(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(100.0)
        snap = hist.snapshot()
        assert snap.counts == (0, 0, 1)
        assert hist.percentile(99) == pytest.approx(100.0)

    def test_percentiles_clamped_to_observed_range(self):
        hist = Histogram("h", bounds=(10.0,))
        hist.observe(2.0)
        hist.observe(3.0)
        # Interpolation inside bucket [0, 10] must not escape [2, 3].
        assert 2.0 <= hist.percentile(1) <= 3.0
        assert 2.0 <= hist.percentile(99) <= 3.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0))

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS)
        )


class TestSnapshotMerge:
    def test_merge_is_lossless_for_shared_bounds(self):
        bounds = (1.0, 2.0, 4.0)
        a = Histogram("a", bounds=bounds)
        b = Histogram("b", bounds=bounds)
        for value in (0.5, 1.5, 3.0):
            a.observe(value)
        for value in (1.0, 8.0):
            b.observe(value)
        merged = a.snapshot().merge(b.snapshot())
        direct = Histogram("all", bounds=bounds)
        for value in (0.5, 1.5, 3.0, 1.0, 8.0):
            direct.observe(value)
        expected = direct.snapshot()
        assert merged.counts == expected.counts
        assert merged.count == expected.count
        assert merged.sum == pytest.approx(expected.sum)
        assert merged.min == expected.min
        assert merged.max == expected.max
        for q in (10, 50, 90):
            assert merged.percentile(q) == pytest.approx(
                expected.percentile(q)
            )

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("a", bounds=(1.0,)).snapshot()
        b = Histogram("b", bounds=(2.0,)).snapshot()
        with pytest.raises(ValueError, match="different bucket bounds"):
            a.merge(b)

    def test_merged_of_nothing_is_empty(self):
        merged = HistogramSnapshot.merged([])
        assert merged.count == 0
        assert merged.mean == 0.0
        with pytest.raises(ValueError):
            merged.percentile(50)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", route="a")
        b = registry.counter("hits", route="a")
        c = registry.counter("hits", route="b")
        assert a is b
        assert a is not c

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_counter_total_sums_matching_label_subsets(self):
        registry = MetricsRegistry()
        registry.counter("req", shard="0").inc(2)
        registry.counter("req", shard="1").inc(3)
        registry.counter("req", tier="front").inc(5)
        assert registry.counter_total("req") == 10
        assert registry.counter_total("req", shard="0") == 2
        assert registry.counter_total("req", tier="front") == 5

    def test_histogram_merged_across_label_sets(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0), shard="0").observe(0.5)
        registry.histogram("lat", buckets=(1.0, 2.0), shard="1").observe(1.5)
        merged = registry.histogram_merged("lat")
        assert merged.count == 2
        assert merged.min == 0.5
        assert merged.max == 1.5


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter(
            "respect_requests_total", help="Requests served", shard="0"
        ).inc(7)
        registry.counter("respect_requests_total", shard="1").inc(3)
        registry.gauge("respect_backlog").set(2)
        hist = registry.histogram(
            "respect_request_latency_seconds", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_prometheus_round_trip_preserves_values(self):
        registry = self._populated()
        text = registry.render_prometheus()
        assert "# TYPE respect_requests_total counter" in text
        assert "# HELP respect_requests_total Requests served" in text
        parsed = parse_prometheus_text(text)
        series = parsed["respect_requests_total"]
        assert series['respect_requests_total{shard="0"}'] == 7
        assert series['respect_requests_total{shard="1"}'] == 3
        assert parsed["respect_backlog"]["respect_backlog"] == 2
        buckets = parsed["respect_request_latency_seconds_bucket"]
        # Cumulative le buckets.
        assert buckets['respect_request_latency_seconds_bucket{le="0.1"}'] == 1
        assert buckets['respect_request_latency_seconds_bucket{le="1"}'] == 2
        assert (
            buckets['respect_request_latency_seconds_bucket{le="+Inf"}'] == 3
        )
        count = parsed["respect_request_latency_seconds_count"]
        assert count["respect_request_latency_seconds_count"] == 3

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("odd", path='a"b\\c\nd').inc()
        parsed = parse_prometheus_text(registry.render_prometheus())
        (value,) = parsed["odd"].values()
        assert value == 1

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text('broken{x="y" 1')
        with pytest.raises(ValueError):
            parse_prometheus_text("name not_a_number")

    def test_json_export_matches_instruments(self):
        registry = self._populated()
        payload = json.loads(dumps_json(registry))
        by_name = {}
        for row in payload["metrics"]:
            by_name.setdefault(row["name"], []).append(row)
        totals = sum(
            row["value"] for row in by_name["respect_requests_total"]
        )
        assert totals == 10
        (hist_row,) = by_name["respect_request_latency_seconds"]
        assert hist_row["count"] == 3
        assert hist_row["buckets"][-1]["le"] == "+Inf"
        assert not math.isinf(hist_row["max"])
