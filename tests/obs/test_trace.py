"""Unit tests for :mod:`repro.obs.trace`."""

import threading

import pytest

from repro.obs.trace import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    NOOP_SPAN,
    Tracer,
    build_trace_tree,
    current_span,
    format_span_tree,
    new_trace_id,
)


@pytest.fixture()
def exporter():
    return InMemorySpanExporter()


@pytest.fixture()
def tracer(exporter):
    return Tracer(exporter=exporter, sample_rate=1.0)


class TestSpanLifecycle:
    def test_root_and_child_share_trace_and_link_parent(
        self, tracer, exporter
    ):
        root = tracer.start_trace("request", method="respect")
        child = root.child("lookup", tier="memory")
        child.end()
        root.end()
        records = exporter.records
        assert len(records) == 2
        lookup, request = records
        assert lookup["name"] == "lookup"
        assert lookup["trace_id"] == request["trace_id"]
        assert lookup["parent_id"] == request["span_id"]
        assert request["parent_id"] is None
        assert request["attrs"]["method"] == "respect"

    def test_end_is_idempotent_and_exports_once(self, tracer, exporter):
        span = tracer.start_trace("once")
        span.end()
        span.end()
        assert len(exporter.records) == 1

    def test_context_manager_activates_and_ends(self, tracer, exporter):
        with tracer.start_trace("outer") as outer:
            assert current_span() is outer
            with outer.child("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert [r["name"] for r in exporter.records] == ["inner", "outer"]

    def test_activate_nests_without_ending(self, tracer, exporter):
        span = tracer.start_trace("root")
        with span.activate():
            assert current_span() is span
        assert current_span() is None
        assert exporter.records == []  # still open
        span.end()
        assert len(exporter.records) == 1

    def test_exception_marks_span_error(self, tracer, exporter):
        with pytest.raises(RuntimeError):
            with tracer.start_trace("boom"):
                raise RuntimeError("nope")
        (record,) = exporter.records
        assert record["status"] == "error"

    def test_active_span_is_thread_local(self, tracer):
        root = tracer.start_trace("root")
        seen = []
        with root.activate():

            def probe():
                seen.append(current_span())

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]


class TestSampling:
    def test_disabled_tracer_returns_noop(self):
        assert Tracer(exporter=None).start_trace("x") is NOOP_SPAN
        assert (
            Tracer(exporter=InMemorySpanExporter(), sample_rate=0.0)
            .start_trace("x")
            is NOOP_SPAN
        )

    def test_noop_span_is_falsy_and_chainable(self):
        assert not NOOP_SPAN
        assert NOOP_SPAN.child("x") is NOOP_SPAN
        NOOP_SPAN.set_attr("a", 1).add_event("e")
        with NOOP_SPAN as span:
            assert span is NOOP_SPAN
        assert current_span() is None

    def test_fractional_sampling_is_seeded_and_partial(self, exporter):
        tracer = Tracer(exporter=exporter, sample_rate=0.5, seed=7)
        outcomes = [bool(tracer.start_trace("t")) for _ in range(50)]
        assert any(outcomes) and not all(outcomes)
        tracer2 = Tracer(
            exporter=InMemorySpanExporter(), sample_rate=0.5, seed=7
        )
        outcomes2 = [bool(tracer2.start_trace("t")) for _ in range(50)]
        assert outcomes == outcomes2

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            Tracer(exporter=InMemorySpanExporter(), sample_rate=1.5)

    def test_record_based_sampling_decision(self, exporter):
        assert Tracer(exporter=exporter, sample_rate=1.0).sample() is True
        assert Tracer(exporter=None).sample() is False


class TestRecordsAndIngest:
    def test_record_span_exports_explicit_times(self, tracer, exporter):
        record = tracer.record_span(
            "sim", 10.0, 12.5, new_trace_id(), attrs={"stage": 1}
        )
        assert exporter.records == [record]
        assert record["start_s"] == 10.0
        assert record["end_s"] == 12.5

    def test_ingest_accepts_wellformed_and_drops_malformed(
        self, tracer, exporter
    ):
        good = {
            "name": "worker.decode",
            "trace_id": "t1",
            "span_id": "s1",
            "start_s": 1.0,
            "end_s": 2.0,
        }
        accepted = tracer.ingest(
            [
                good,
                {"name": "no-ids", "start_s": 1.0, "end_s": 2.0},
                {"trace_id": "t", "span_id": "s"},  # no times
                "not-a-mapping",
                None,
            ]
        )
        assert accepted == 1
        assert [r["name"] for r in exporter.records] == ["worker.decode"]

    def test_jsonl_exporter_round_trips(self, tmp_path):
        path = tmp_path / "traces" / "spans.jsonl"
        jsonl = JsonlSpanExporter(path)
        tracer = Tracer(exporter=jsonl)
        with tracer.start_trace("request"):
            pass
        records = jsonl.read_records()
        assert len(records) == 1
        assert records[0]["name"] == "request"


class TestTreeBuilding:
    def test_build_and_format_tree(self, tracer, exporter):
        root = tracer.start_trace("request")
        with root.activate():
            with root.child("lookup", tier="miss"):
                pass
            with root.child("solve"):
                pass
        root.add_event("published")
        root.end()
        (tree,) = build_trace_tree(exporter.records)
        assert tree["name"] == "request"
        assert [c["name"] for c in tree["children"]] == ["lookup", "solve"]
        rendered = format_span_tree(exporter.records)
        assert "request" in rendered
        assert "  lookup" in rendered
        assert "tier" in rendered
        assert "published" in rendered

    def test_orphan_spans_become_roots(self, tracer, exporter):
        tracer.record_span(
            "orphan", 0.0, 1.0, "t", parent_id="missing-parent"
        )
        (tree,) = build_trace_tree(exporter.records)
        assert tree["name"] == "orphan"

    def test_exporter_trace_filtering(self, tracer, exporter):
        a = tracer.start_trace("a")
        a.end()
        b = tracer.start_trace("b")
        b.end()
        ids = exporter.trace_ids()
        assert len(ids) == 2
        assert [r["name"] for r in exporter.trace(ids[0])] == ["a"]
