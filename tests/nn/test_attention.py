"""Gradient-checked tests for the glimpse and pointer attention heads."""

import numpy as np

from repro.nn.attention import AttentionHead, Glimpse

from tests.nn.test_lstm import numeric_grad


class TestAttentionHead:
    def test_score_shape(self, rng):
        head = AttentionHead(5, rng=1)
        contexts = rng.normal(size=(2, 4, 5))
        query = rng.normal(size=(2, 5))
        scores, _ = head.forward(contexts, query)
        assert scores.shape == (2, 4)

    def test_logit_clip_bounds_scores(self, rng):
        head = AttentionHead(5, logit_clip=3.0, rng=1)
        contexts = 50 * rng.normal(size=(2, 4, 5))
        query = 50 * rng.normal(size=(2, 5))
        scores, _ = head.forward(contexts, query)
        assert np.all(np.abs(scores) <= 3.0 + 1e-12)

    def test_gradient_check(self, rng):
        head = AttentionHead(3, logit_clip=4.0, rng=2)
        contexts = rng.normal(size=(2, 3, 3))
        query = rng.normal(size=(2, 3))
        dscores = rng.normal(size=(2, 3))

        def loss():
            scores, _ = head.forward(contexts, query)
            return float(np.sum(scores * dscores))

        head.zero_grad()
        _, cache = head.forward(contexts, query)
        dctx, dq = head.backward(dscores, cache)
        np.testing.assert_allclose(numeric_grad(loss, contexts), dctx, atol=1e-6)
        np.testing.assert_allclose(numeric_grad(loss, query), dq, atol=1e-6)
        for name, param in head.named_parameters():
            np.testing.assert_allclose(
                numeric_grad(loss, param.value), param.grad, atol=1e-6,
                err_msg=f"param {name}",
            )


class TestGlimpse:
    def test_masked_positions_excluded(self, rng):
        glimpse = Glimpse(4, rng=3)
        contexts = rng.normal(size=(1, 3, 4))
        query = rng.normal(size=(1, 4))
        mask = np.array([[True, False, True]])
        _, cache = glimpse.forward(contexts, query, mask)
        assert cache["weights"][0, 1] == 0.0

    def test_gradient_check_with_mask(self, rng):
        glimpse = Glimpse(3, rng=4)
        contexts = rng.normal(size=(2, 4, 3))
        query = rng.normal(size=(2, 3))
        mask = np.array(
            [[True, True, False, True], [True, False, True, True]]
        )
        dg = rng.normal(size=(2, 3))

        def loss():
            g, _ = glimpse.forward(contexts, query, mask)
            return float(np.sum(g * dg))

        glimpse.zero_grad()
        _, cache = glimpse.forward(contexts, query, mask)
        dctx, dq = glimpse.backward(dg, cache)
        np.testing.assert_allclose(numeric_grad(loss, contexts), dctx, atol=1e-6)
        np.testing.assert_allclose(numeric_grad(loss, query), dq, atol=1e-6)
        for name, param in glimpse.named_parameters():
            np.testing.assert_allclose(
                numeric_grad(loss, param.value), param.grad, atol=1e-6,
                err_msg=f"param {name}",
            )
