"""Unit tests for parameter management, checkpointing and Adam."""

import numpy as np
import pytest

from repro.errors import CheckpointError, TrainingError
from repro.nn.adam import Adam
from repro.nn.lstm import LSTMCell
from repro.nn.params import Module, Parameter


class _Quadratic(Module):
    """Toy module with loss (w - target)^2 for optimizer tests."""

    def __init__(self, dim=4):
        super().__init__()
        self.w = self.add_param("w", np.ones(dim) * 5.0)

    def loss_and_grad(self, target):
        diff = self.w.value - target
        self.w.grad += 2 * diff
        return float(np.sum(diff * diff))


class TestModule:
    def test_duplicate_names_rejected(self):
        m = Module()
        m.add_param("x", np.zeros(2))
        with pytest.raises(CheckpointError):
            m.add_param("x", np.zeros(2))
        with pytest.raises(CheckpointError):
            m.add_module("x", Module())

    def test_nested_parameter_names(self):
        outer = Module()
        inner = LSTMCell(2, 3, rng=0)
        outer.add_module("cell", inner)
        names = set(outer.parameters())
        assert "cell.w_x" in names
        assert "cell.bias" in names

    def test_num_parameters(self):
        cell = LSTMCell(2, 3, rng=0)
        assert cell.num_parameters() == 2 * 12 + 3 * 12 + 12

    def test_zero_grad(self):
        m = _Quadratic()
        m.loss_and_grad(np.zeros(4))
        assert np.any(m.w.grad != 0)
        m.zero_grad()
        assert np.all(m.w.grad == 0)


class TestCheckpointing:
    def test_state_dict_round_trip(self):
        a = LSTMCell(2, 3, rng=1)
        b = LSTMCell(2, 3, rng=2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.w_x.value, b.w_x.value)

    def test_mismatched_state_rejected(self):
        a = LSTMCell(2, 3, rng=1)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(CheckpointError):
            a.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        a = LSTMCell(2, 3, rng=1)
        state = a.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(CheckpointError):
            a.load_state_dict(state)

    def test_npz_round_trip(self, tmp_path):
        a = LSTMCell(2, 3, rng=1)
        path = tmp_path / "cell.npz"
        a.save_npz(path)
        b = LSTMCell(2, 3, rng=9)
        b.load_npz(path)
        np.testing.assert_array_equal(a.w_h.value, b.w_h.value)

    def test_missing_checkpoint_raises(self, tmp_path):
        cell = LSTMCell(2, 3)
        with pytest.raises(CheckpointError):
            cell.load_npz(tmp_path / "nope.npz")


class TestAdam:
    def test_converges_on_quadratic(self):
        m = _Quadratic()
        target = np.array([1.0, -2.0, 0.5, 3.0])
        adam = Adam(m, lr=0.1, grad_clip_norm=None)
        for _ in range(400):
            m.zero_grad()
            m.loss_and_grad(target)
            adam.step()
        np.testing.assert_allclose(m.w.value, target, atol=1e-2)

    def test_gradient_clipping(self):
        m = _Quadratic()
        adam = Adam(m, lr=0.1, grad_clip_norm=1.0)
        m.zero_grad()
        m.loss_and_grad(np.zeros(4))  # grad norm = 20
        norm = adam.step()
        assert norm == pytest.approx(20.0)

    def test_invalid_config_rejected(self):
        m = _Quadratic()
        with pytest.raises(TrainingError):
            Adam(m, lr=0)
        with pytest.raises(TrainingError):
            Adam(m, beta1=1.5)
