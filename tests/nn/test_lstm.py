"""Gradient-checked tests for the LSTM cell."""

import numpy as np
import pytest

from repro.nn.lstm import LSTMCell


def numeric_grad(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = fn()
        flat[i] = old - eps
        down = fn()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestForward:
    def test_shapes(self, rng):
        cell = LSTMCell(4, 6, rng=1)
        h, c = cell.initial_state(3)
        x = rng.normal(size=(3, 4))
        h2, c2, _ = cell.forward(x, h, c)
        assert h2.shape == (3, 6)
        assert c2.shape == (3, 6)

    def test_forget_bias_initialized(self):
        cell = LSTMCell(2, 3, rng=0)
        bias = cell.bias.value
        np.testing.assert_allclose(bias[3:6], 1.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)

    def test_deterministic_given_seed(self, rng):
        a = LSTMCell(3, 5, rng=42)
        b = LSTMCell(3, 5, rng=42)
        np.testing.assert_array_equal(a.w_x.value, b.w_x.value)


class TestBackward:
    def test_gradient_check_single_step(self, rng):
        cell = LSTMCell(3, 4, rng=2)
        x = rng.normal(size=(2, 3))
        h0 = rng.normal(size=(2, 4))
        c0 = rng.normal(size=(2, 4))
        dh = rng.normal(size=(2, 4))
        dc = rng.normal(size=(2, 4))

        def loss():
            h2, c2, _ = cell.forward(x, h0, c0)
            return float(np.sum(h2 * dh) + np.sum(c2 * dc))

        cell.zero_grad()
        h2, c2, cache = cell.forward(x, h0, c0)
        dx, dh0, dc0 = cell.backward(dh, dc, cache)

        np.testing.assert_allclose(numeric_grad(loss, x), dx, atol=1e-6)
        np.testing.assert_allclose(numeric_grad(loss, h0), dh0, atol=1e-6)
        np.testing.assert_allclose(numeric_grad(loss, c0), dc0, atol=1e-6)
        np.testing.assert_allclose(
            numeric_grad(loss, cell.w_x.value), cell.w_x.grad, atol=1e-6
        )
        np.testing.assert_allclose(
            numeric_grad(loss, cell.w_h.value), cell.w_h.grad, atol=1e-6
        )
        np.testing.assert_allclose(
            numeric_grad(loss, cell.bias.value), cell.bias.grad, atol=1e-6
        )

    def test_gradient_check_two_steps_bptt(self, rng):
        cell = LSTMCell(2, 3, rng=5)
        x1 = rng.normal(size=(2, 2))
        x2 = rng.normal(size=(2, 2))
        dh = rng.normal(size=(2, 3))

        def loss():
            h, c = cell.initial_state(2)
            h, c, _ = cell.forward(x1, h, c)
            h, c, _ = cell.forward(x2, h, c)
            return float(np.sum(h * dh))

        cell.zero_grad()
        h, c = cell.initial_state(2)
        h1, c1, cache1 = cell.forward(x1, h, c)
        h2, c2, cache2 = cell.forward(x2, h1, c1)
        dx2, dh1, dc1 = cell.backward(dh, np.zeros_like(c2), cache2)
        dx1, _, _ = cell.backward(dh1, dc1, cache1)

        np.testing.assert_allclose(numeric_grad(loss, x2), dx2, atol=1e-6)
        np.testing.assert_allclose(numeric_grad(loss, x1), dx1, atol=1e-6)
        np.testing.assert_allclose(
            numeric_grad(loss, cell.w_h.value), cell.w_h.grad, atol=1e-6
        )
