"""Unit tests for activation functions and their derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F


class TestSigmoid:
    def test_midpoint(self):
        assert F.sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        out = F.sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_derivative_matches_fd(self):
        x = np.linspace(-3, 3, 11)
        y = F.sigmoid(x)
        fd = (F.sigmoid(x + 1e-6) - F.sigmoid(x - 1e-6)) / 2e-6
        np.testing.assert_allclose(F.dsigmoid_from_output(y), fd, atol=1e-6)


class TestTanh:
    def test_derivative_matches_fd(self):
        x = np.linspace(-3, 3, 11)
        y = F.tanh(x)
        fd = (F.tanh(x + 1e-6) - F.tanh(x - 1e-6)) / 2e-6
        np.testing.assert_allclose(F.dtanh_from_output(y), fd, atol=1e-6)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        out = F.softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0))

    def test_large_values_stable(self):
        out = F.softmax(np.array([[1e4, 1e4 - 1.0]]))
        assert np.isfinite(out).all()

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(
            np.exp(F.log_softmax(x)), F.softmax(x), atol=1e-12
        )


class TestMaskedSoftmax:
    def test_masked_positions_zero(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        mask = np.array([[True, False, True]])
        out = F.masked_softmax(logits, mask)
        assert out[0, 1] == 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_single_unmasked_gets_all_mass(self):
        logits = np.array([[5.0, -2.0]])
        mask = np.array([[False, True]])
        out = F.masked_softmax(logits, mask)
        np.testing.assert_allclose(out, [[0.0, 1.0]])


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 5),
           elements=st.floats(-50, 50, allow_nan=False))
)
def test_softmax_properties(x):
    """Property: softmax outputs are a probability distribution."""
    out = F.softmax(x)
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
