"""Tests for the LRU schedule cache."""

import threading

import pytest

from repro.errors import ServiceError
from repro.service import CachedSchedule, ScheduleCache


def _payload(tag: int) -> CachedSchedule:
    return CachedSchedule(
        assignment={"a": 0, "b": tag % 2},
        num_stages=2,
        method="fake",
        objective=float(tag),
        status="ok",
        solve_time=0.001,
    )


def _key(tag: int):
    return ScheduleCache.make_key(f"fp{tag}", 2, "opts")


class TestScheduleCache:
    def test_put_get_round_trip(self):
        cache = ScheduleCache(capacity=4)
        cache.put(_key(1), _payload(1))
        assert cache.get(_key(1)) == _payload(1)
        assert cache.get(_key(2)) is None

    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        cache.put(_key(1), _payload(1))
        cache.put(_key(2), _payload(2))
        cache.get(_key(1))  # refresh 1 -> 2 becomes LRU
        cache.put(_key(3), _payload(3))
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) is not None
        assert cache.get(_key(3)) is not None
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = ScheduleCache(capacity=2)
        cache.put(_key(1), _payload(1))
        cache.put(_key(2), _payload(2))
        cache.put(_key(1), _payload(9))  # refresh, not insert
        cache.put(_key(3), _payload(3))  # evicts 2, not 1
        assert cache.get(_key(1)).objective == 9.0
        assert cache.get(_key(2)) is None

    def test_counters(self):
        cache = ScheduleCache(capacity=1)
        cache.get(_key(1))
        cache.put(_key(1), _payload(1))
        cache.get(_key(1))
        cache.put(_key(2), _payload(2))  # evicts 1
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 1
        assert stats.capacity == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_without_lookups(self):
        assert ScheduleCache().stats().hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = ScheduleCache(capacity=4)
        cache.put(_key(1), _payload(1))
        cache.get(_key(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(_key(1)) is None
        assert cache.stats().hits == 1

    def test_contains(self):
        cache = ScheduleCache(capacity=4)
        cache.put(_key(1), _payload(1))
        assert _key(1) in cache
        assert _key(2) not in cache

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ServiceError):
            ScheduleCache(capacity=0)

    def test_concurrent_hammering_stays_consistent(self):
        cache = ScheduleCache(capacity=16)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(200):
                    tag = base * 200 + i
                    cache.put(_key(tag % 32), _payload(tag % 32))
                    entry = cache.get(_key(tag % 32))
                    if entry is not None:
                        assert entry.objective == float(tag % 32)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(b,)) for b in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16


class TestInvalidateOptions:
    def _key(self, tag: int, opts: str):
        return ScheduleCache.make_key(f"fp{tag}", 2, opts)

    def test_evicts_only_matching_options(self):
        cache = ScheduleCache(capacity=8)
        for tag in range(3):
            cache.put(self._key(tag, "old"), _payload(tag))
        for tag in range(2):
            cache.put(self._key(tag, "new"), _payload(tag + 10))
        removed = cache.invalidate_options("old")
        assert removed == 3
        assert len(cache) == 2
        for tag in range(3):
            assert cache.get(self._key(tag, "old")) is None
        for tag in range(2):
            assert cache.get(self._key(tag, "new")) is not None

    def test_counts_invalidations_separately_from_evictions(self):
        cache = ScheduleCache(capacity=2)
        cache.put(self._key(1, "old"), _payload(1))
        cache.put(self._key(2, "old"), _payload(2))
        cache.put(self._key(3, "old"), _payload(3))  # LRU-evicts key 1
        cache.invalidate_options("old")
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.invalidations == 2
        assert stats.size == 0

    def test_missing_options_key_is_noop(self):
        cache = ScheduleCache(capacity=4)
        cache.put(self._key(1, "old"), _payload(1))
        assert cache.invalidate_options("absent") == 0
        assert len(cache) == 1
        assert cache.stats().invalidations == 0

    def test_lru_order_of_survivors_preserved(self):
        cache = ScheduleCache(capacity=2)
        cache.put(self._key(1, "keep"), _payload(1))
        cache.put(self._key(2, "drop"), _payload(2))
        cache.put(self._key(3, "keep"), _payload(3))  # evicts key 1 (LRU)
        cache.invalidate_options("drop")
        # Survivor (key 3) still evictable by LRU pressure as usual.
        cache.put(self._key(4, "keep"), _payload(4))
        cache.put(self._key(5, "keep"), _payload(5))
        assert cache.get(self._key(3, "keep")) is None
        assert cache.get(self._key(5, "keep")) is not None

    def test_hit_miss_counters_survive_invalidation(self):
        cache = ScheduleCache(capacity=4)
        cache.put(self._key(1, "old"), _payload(1))
        cache.get(self._key(1, "old"))   # hit
        cache.get(self._key(2, "old"))   # miss
        cache.invalidate_options("old")
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1  # invalidation added no lookups


class TestOptionsIndex:
    """The secondary options_key -> keys index behind O(stale) invalidation."""

    def _key(self, tag: int, opts: str):
        return ScheduleCache.make_key(f"fp{tag}", 2, opts)

    def test_index_stays_in_lockstep_through_churn(self):
        cache = ScheduleCache(capacity=4)
        for tag in range(8):  # 4 evictions
            cache.put(self._key(tag, f"opt{tag % 2}"), _payload(tag))
        cache.put(self._key(7, "opt1"), _payload(7))  # refresh, no dup
        # The index never references evicted/over-written keys: every
        # indexed key must be a live entry and vice versa.
        indexed = {k for keys in cache._by_options.values() for k in keys}
        assert indexed == set(cache._entries)
        # Invalidation therefore counts exactly the live entries.
        assert cache.invalidate_options("opt0") == 2
        assert cache.invalidate_options("opt1") == 2
        assert len(cache) == 0
        assert cache._by_options == {}

    def test_clear_resets_index(self):
        cache = ScheduleCache(capacity=4)
        cache.put(self._key(1, "old"), _payload(1))
        cache.clear()
        assert cache._by_options == {}
        assert cache.invalidate_options("old") == 0

    def test_exact_lru_order_untouched_by_invalidation(self):
        # Survivors must evict in exactly the pre-invalidation order —
        # not merely "eventually evictable" (a rebuild that reinserted
        # survivors would pass a weaker check but corrupt recency).
        cache = ScheduleCache(capacity=4)
        cache.put(self._key(1, "keep"), _payload(1))
        cache.put(self._key(2, "drop"), _payload(2))
        cache.put(self._key(3, "keep"), _payload(3))
        cache.put(self._key(4, "keep"), _payload(4))
        cache.get(self._key(1, "keep"))  # LRU order now: 2, 3, 4, 1
        cache.invalidate_options("drop")
        assert list(cache._entries) == [
            self._key(3, "keep"),
            self._key(4, "keep"),
            self._key(1, "keep"),
        ]

    def test_repeated_invalidation_counts_once(self):
        cache = ScheduleCache(capacity=4)
        cache.put(self._key(1, "old"), _payload(1))
        assert cache.invalidate_options("old") == 1
        assert cache.invalidate_options("old") == 0
        assert cache.stats().invalidations == 1


class TestCachedScheduleProvenance:
    def test_provenance_defaults_to_none(self):
        assert _payload(1).provenance is None

    def test_provenance_round_trips(self):
        cache = ScheduleCache(capacity=2)
        tagged = CachedSchedule(
            assignment={"a": 0},
            num_stages=1,
            method="fake",
            objective=1.0,
            status="ok",
            solve_time=0.0,
            provenance={"options_fingerprint": "opts", "weights_epoch": 7},
        )
        cache.put(_key(1), tagged)
        assert cache.get(_key(1)).provenance == {
            "options_fingerprint": "opts",
            "weights_epoch": 7,
        }
