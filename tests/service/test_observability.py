"""Serving-stack observability: registry/stats equality, traces, spans.

Three contracts under test:

* **No parallel bookkeeping** — every ``*Stats`` field is a view over
  the shared metrics registry, so under a concurrent hammer (and for
  the front-tier degraded/listener-error paths) registry totals equal
  the legacy stats totals exactly, each event counted once.
* **Exposition round-trips** — the Prometheus text rendering and the
  JSON export carry the same counter values as the stats views.
* **Request traces span every layer and both processes** — one request
  through a sharded, disk-backed, worker-decoding tier yields a single
  span tree with admission, shard routing, tier-labeled lookup, the
  worker-side decode sub-span (shipped back in the wire frame) and the
  publish; a crashed worker shows up as a second ``worker.attempt``.
"""

import os
import threading
import time

from repro.graphs.sampler import sample_synthetic_dag
from repro.obs import (
    InMemorySpanExporter,
    Telemetry,
    build_trace_tree,
    parse_prometheus_text,
)
from repro.rl.respect import RespectScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.service import SchedulingService, ShardedSchedulingService

NUM_STAGES = 3


class FakeScheduler:
    method_name = "fake"

    def _solve(self, graph, num_stages):
        assignment = {
            name: min(i * num_stages // graph.num_nodes, num_stages - 1)
            for i, name in enumerate(graph.node_names)
        }
        return ScheduleResult(
            Schedule(graph, num_stages, assignment), 0.001, self.method_name
        )

    def schedule(self, graph, num_stages):
        return self._solve(graph, num_stages)

    def schedule_batch(self, graphs, stage_counts):
        return [
            self._solve(graph, stages)
            for graph, stages in zip(graphs, stage_counts)
        ]


def make_graphs(count, seed_base=0):
    return [
        sample_synthetic_dag(num_nodes=10, degree=3, seed=seed_base + i)
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# registry == stats (the double-counting audit)
# ----------------------------------------------------------------------
class TestRegistryStatsEquality:
    def test_concurrent_hammer_registry_equals_stats(self):
        telemetry = Telemetry()
        graphs = make_graphs(12)
        with SchedulingService(
            FakeScheduler(), telemetry=telemetry, batch_window_s=0.001
        ) as service:
            def hammer(offset):
                for i in range(30):
                    graph = graphs[(i + offset) % len(graphs)]
                    service.submit(graph, NUM_STAGES).result(timeout=10)

            threads = [
                threading.Thread(target=hammer, args=(k,)) for k in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
            registry = telemetry.registry
            assert stats.requests == 180
            assert (
                registry.counter_total("respect_requests_total")
                == stats.requests
            )
            assert (
                registry.counter_total("respect_cache_hits_total")
                == stats.cache_hits
            )
            assert (
                registry.counter_total("respect_coalesced_total")
                == stats.coalesced
            )
            assert (
                registry.counter_total("respect_scheduled_graphs_total")
                == stats.scheduled_graphs
            )
            # Every request is exactly one of: hit, coalesced, solved.
            assert (
                stats.cache_hits + stats.coalesced + stats.scheduled_graphs
                == stats.requests
            )
            # Tier lookups cover every non-coalesced request.
            assert (
                registry.counter_total("respect_tier_lookups_total")
                == stats.requests - stats.coalesced
            )
            # The latency histogram saw every served request.
            assert (
                registry.histogram_merged(
                    "respect_request_latency_seconds"
                ).count
                == stats.requests
            )

    def test_sharded_hammer_registry_equals_stats(self):
        telemetry = Telemetry()
        graphs = make_graphs(10, seed_base=100)
        with ShardedSchedulingService(
            FakeScheduler(),
            num_shards=3,
            telemetry=telemetry,
            batch_window_s=0.001,
        ) as tier:
            def hammer(offset):
                for i in range(20):
                    graph = graphs[(i + offset) % len(graphs)]
                    tier.submit(graph, NUM_STAGES).result(timeout=10)

            threads = [
                threading.Thread(target=hammer, args=(k,)) for k in range(5)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = tier.stats()
            registry = telemetry.registry
            assert stats.requests == 100
            # Tier total = sum over shard series (+ front tier, 0 here).
            assert (
                registry.counter_total("respect_requests_total")
                == stats.requests
            )
            for i in range(3):
                assert (
                    registry.counter_total(
                        "respect_requests_total", shard=str(i)
                    )
                    == stats.per_shard[i].requests
                )
            assert (
                registry.histogram_merged(
                    "respect_request_latency_seconds"
                ).count
                == stats.requests
            )

    def test_degraded_serves_and_listener_errors_counted_once(self):
        telemetry = Telemetry()
        graphs = make_graphs(4, seed_base=200)
        release = threading.Event()

        class Gated(FakeScheduler):
            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

        def bad_listener(graph, num_stages, result):
            raise RuntimeError("listener boom")

        with ShardedSchedulingService(
            Gated(),
            num_shards=1,
            max_queue_depth=1,
            admission="degrade",
            batch_window_s=0.0,
            telemetry=telemetry,
        ) as tier:
            tier.add_serve_listener(bad_listener)
            first = tier.submit(graphs[0], NUM_STAGES)  # occupies the gate
            degraded = tier.submit(graphs[1], NUM_STAGES)
            assert degraded.result(timeout=5).extras["degraded"] is True
            release.set()
            first.result(timeout=10)
            stats = tier.stats()
            registry = telemetry.registry
            assert stats.degraded == 1
            # Exactly once, under the front tier — never in a shard.
            assert (
                registry.counter_total(
                    "respect_admission_outcomes_total", outcome="degraded"
                )
                == 1
            )
            assert (
                registry.counter_total(
                    "respect_requests_total", tier="front"
                )
                == 1
            )
            # requests view = shard serves + degraded front serves;
            # the registry-wide sum agrees (no double counting).
            assert (
                registry.counter_total("respect_requests_total")
                == stats.requests
            )
            # Both serves tripped the listener: one error in the shard
            # path, one in the front (degraded) path — each exactly once.
            assert stats.listener_errors == 2
            assert (
                registry.counter_total("respect_listener_errors_total")
                == stats.listener_errors
            )


# ----------------------------------------------------------------------
# exposition round-trip
# ----------------------------------------------------------------------
class TestExpositionRoundTrip:
    def test_prometheus_and_json_match_stats_views(self):
        telemetry = Telemetry()
        graphs = make_graphs(6, seed_base=300)
        with SchedulingService(
            FakeScheduler(), telemetry=telemetry
        ) as service:
            for graph in graphs + graphs:  # second pass: cache hits
                service.submit(graph, NUM_STAGES).result(timeout=10)
            stats = service.stats()
            parsed = parse_prometheus_text(
                telemetry.registry.render_prometheus()
            )
            assert (
                sum(parsed["respect_requests_total"].values())
                == stats.requests
            )
            assert (
                sum(parsed["respect_cache_hits_total"].values())
                == stats.cache_hits
            )
            assert (
                sum(
                    parsed["respect_request_latency_seconds_count"].values()
                )
                == stats.requests
            )
            payload = telemetry.registry.to_json()
            json_requests = sum(
                row["value"]
                for row in payload["metrics"]
                if row["name"] == "respect_requests_total"
            )
            assert json_requests == stats.requests


# ----------------------------------------------------------------------
# traces across every layer (and across processes)
# ----------------------------------------------------------------------
def span_names(tree):
    names = [tree["name"]]
    for child in tree["children"]:
        names.extend(span_names(child))
    return names


def find_spans(tree, name):
    found = [tree] if tree["name"] == name else []
    for child in tree["children"]:
        found.extend(find_spans(child, name))
    return found


class TestRequestTraces:
    def test_single_service_trace_has_lookup_solve_publish(self):
        exporter = InMemorySpanExporter()
        telemetry = Telemetry.with_tracing(exporter)
        graph = make_graphs(1, seed_base=400)[0]
        with SchedulingService(
            FakeScheduler(), telemetry=telemetry
        ) as service:
            service.submit(graph, NUM_STAGES).result(timeout=10)
            deadline = time.monotonic() + 5.0
            while (
                len(exporter.records) < 4 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        (tree,) = build_trace_tree(exporter.records)
        assert tree["name"] == "request"
        names = span_names(tree)
        for expected in ("lookup", "solve", "publish"):
            assert expected in names, names
        (lookup,) = find_spans(tree, "lookup")
        assert lookup["attrs"]["tier"] == "miss"

    def test_cache_hit_trace_is_memory_tier(self):
        exporter = InMemorySpanExporter()
        telemetry = Telemetry.with_tracing(exporter)
        graph = make_graphs(1, seed_base=401)[0]
        with SchedulingService(
            FakeScheduler(), telemetry=telemetry
        ) as service:
            service.submit(graph, NUM_STAGES).result(timeout=10)
            exporter.clear()
            service.submit(graph, NUM_STAGES).result(timeout=10)
        (tree,) = build_trace_tree(exporter.records)
        (lookup,) = find_spans(tree, "lookup")
        assert lookup["attrs"]["tier"] == "memory"

    def test_unsampled_requests_emit_nothing(self):
        exporter = InMemorySpanExporter()
        telemetry = Telemetry.with_tracing(exporter, sample_rate=0.0)
        graph = make_graphs(1, seed_base=402)[0]
        with SchedulingService(
            FakeScheduler(), telemetry=telemetry
        ) as service:
            service.submit(graph, NUM_STAGES).result(timeout=10)
        assert exporter.records == []

    def test_disk_tier_label_after_store_reopen(self, tmp_path):
        store_dir = str(tmp_path / "store")
        graph = make_graphs(1, seed_base=403)[0]
        with SchedulingService(
            ListScheduler(), store_dir=store_dir
        ) as service:
            service.submit(graph, NUM_STAGES).result(timeout=10)
            service.snapshot()
        exporter = InMemorySpanExporter()
        telemetry = Telemetry.with_tracing(exporter)
        with SchedulingService(
            ListScheduler(), store_dir=store_dir, telemetry=telemetry
        ) as service:
            result = service.submit(graph, NUM_STAGES).result(timeout=10)
            assert result.extras["cache_hit"] is True
        (tree,) = build_trace_tree(exporter.records)
        (lookup,) = find_spans(tree, "lookup")
        assert lookup["attrs"]["tier"] == "disk"
        assert (
            telemetry.registry.counter_total(
                "respect_tier_lookups_total", tier="disk"
            )
            == 1
        )


class TestCrossProcessTraces:
    """End-to-end acceptance: spans cross the decode-worker boundary."""

    def test_sharded_worker_request_trace_is_complete(self, tmp_path):
        exporter = InMemorySpanExporter()
        telemetry = Telemetry.with_tracing(exporter)
        graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=7)
        with ShardedSchedulingService(
            RespectScheduler(),
            num_shards=2,
            decode_workers=2,
            store_dir=str(tmp_path / "store"),
            telemetry=telemetry,
        ) as tier:
            tier.submit(graph, 4).result(timeout=120)
            # The root span ends via the future's done callback and the
            # mirrored publish records trail it; wait for the export.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                trees = build_trace_tree(exporter.records)
                if trees and "worker.decode" in span_names(trees[0]):
                    break
                time.sleep(0.05)
        (tree,) = build_trace_tree(exporter.records)
        assert tree["name"] == "request"
        names = span_names(tree)
        for expected in (
            "admission",
            "route",
            "lookup",
            "solve",
            "decode.workers",
            "worker.attempt",
            "worker.decode",
            "postprocess",
            "publish",
        ):
            assert expected in names, names
        (admission,) = find_spans(tree, "admission")
        assert admission["attrs"]["outcome"] == "admitted"
        (route,) = find_spans(tree, "route")
        assert route["attrs"]["shard"] == tier.shard_index(graph)
        (lookup,) = find_spans(tree, "lookup")
        assert lookup["attrs"]["tier"] == "miss"
        (decode,) = find_spans(tree, "worker.decode")
        # The worker-side span really came from the worker process.
        assert decode["attrs"]["pid"] != os.getpid()
        # One trace: every span shares the root's trace id.
        trace_ids = {r["trace_id"] for r in exporter.records}
        assert trace_ids == {tree["trace_id"]}

    def test_worker_crash_produces_second_attempt_span(self):
        from repro.service import wire
        from repro.service.workers import (
            DecodeWorkerPool,
            WorkerDecodeScheduler,
        )

        exporter = InMemorySpanExporter()
        telemetry = Telemetry.with_tracing(exporter)
        respect = RespectScheduler()
        warm = sample_synthetic_dag(num_nodes=12, degree=3, seed=8)
        # A wide batch keeps the worker busy long enough to be killed
        # mid-decode deterministically.
        big = [
            sample_synthetic_dag(num_nodes=120, degree=3, seed=500 + s)
            for s in range(16)
        ]
        crashed = None
        with DecodeWorkerPool(1) as pool:
            epoch = pool.publish_scheduler(respect)
            wrapped = WorkerDecodeScheduler(respect, pool, epoch)
            wrapped.schedule(warm, 4)  # warm: weights epoch loaded
            root = telemetry.start_trace("request")
            for _ in range(5):  # retry if the kill misses the window
                roundtrip = root.child("decode.workers", batch_size=len(big))
                payload = wire.encode_decode_request(
                    big,
                    options_key=wrapped.options_fingerprint(),
                    trace={
                        "trace_id": roundtrip.trace_id,
                        "span_id": roundtrip.span_id,
                    },
                )

                def submit():
                    pool.submit(payload, epoch=epoch, span=roundtrip)

                thread = threading.Thread(target=submit)
                thread.start()
                deadline = time.monotonic() + 5.0
                while (
                    not pool.stats().pending
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.001)
                pool._workers[0].process.terminate()  # mid-flight kill
                thread.join(timeout=60)
                assert not thread.is_alive()
                roundtrip.end()
                crashed = [
                    r
                    for r in exporter.records
                    if r["name"] == "worker.attempt"
                    and r["status"] == "crashed"
                ]
                if crashed:
                    break
            root.end()
        assert crashed, "kill never landed mid-decode in 5 rounds"
        # The crashed dispatch was attempt 1; the resubmission to the
        # respawned worker shows up as a sibling attempt 2 that succeeds.
        (first,) = crashed
        assert first["attrs"]["attempt"] == 1
        retries = [
            r
            for r in exporter.records
            if r["name"] == "worker.attempt"
            and r["parent_id"] == first["parent_id"]
            and r["attrs"]["attempt"] == 2
        ]
        (retry,) = retries
        assert retry["status"] == "ok"
        assert pool.stats().respawns >= 1
