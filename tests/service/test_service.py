"""Tests for the scheduling service: caching, coalescing, micro-batching.

Logic tests use an instrumented fake scheduler for full control over
call counts and timing; the equivalence-under-concurrency tests at the
bottom drive the real pretrained :class:`RespectScheduler`.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import SchedulingError, ServiceError
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.respect import RespectScheduler
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.service import (
    ScheduleCache,
    SchedulingService,
    scheduler_options_key,
)


class FakeScheduler:
    """Deterministic scheduler that counts and optionally delays calls."""

    method_name = "fake"

    def __init__(self, delay: float = 0.0, batched: bool = True):
        self.delay = delay
        self.schedule_calls = 0
        self.batch_calls = 0
        self.batch_sizes = []
        self._lock = threading.Lock()
        if not batched:
            self.schedule_batch = None  # not callable -> sequential path

    def _solve(self, graph, num_stages):
        assignment = {
            name: min(i * num_stages // graph.num_nodes, num_stages - 1)
            for i, name in enumerate(graph.node_names)
        }
        return ScheduleResult(
            Schedule(graph, num_stages, assignment), 0.001, self.method_name
        )

    def schedule(self, graph, num_stages):
        with self._lock:
            self.schedule_calls += 1
        if self.delay:
            time.sleep(self.delay)
        return self._solve(graph, num_stages)

    def schedule_batch(self, graphs, stage_counts):
        with self._lock:
            self.batch_calls += 1
            self.batch_sizes.append(len(graphs))
        if self.delay:
            time.sleep(self.delay)
        return [self._solve(g, s) for g, s in zip(graphs, stage_counts)]


@pytest.fixture
def graphs():
    return [
        sample_synthetic_dag(num_nodes=10, degree=3, seed=seed)
        for seed in range(6)
    ]


class TestServiceBasics:
    def test_result_matches_direct_and_binds_callers_graph(self, graphs):
        scheduler = FakeScheduler()
        direct = scheduler.schedule(graphs[0], 3)
        with SchedulingService(scheduler) as service:
            served = service.schedule(graphs[0], 3)
        assert served.schedule.assignment == direct.schedule.assignment
        assert served.schedule.graph is graphs[0]

    def test_cache_hit_skips_scheduler(self, graphs):
        scheduler = FakeScheduler()
        with SchedulingService(scheduler, batch_window_s=0.0) as service:
            service.schedule(graphs[0], 3)
            solves = scheduler.schedule_calls + scheduler.batch_calls
            again = service.schedule(graphs[0], 3)
            assert scheduler.schedule_calls + scheduler.batch_calls == solves
            assert again.extras["cache_hit"] is True
            assert service.stats().cache_hits == 1

    def test_content_identical_graph_hits_cache(self, graphs):
        twin = sample_synthetic_dag(num_nodes=10, degree=3, seed=0)
        scheduler = FakeScheduler()
        with SchedulingService(scheduler) as service:
            first = service.schedule(graphs[0], 3)
            second = service.schedule(twin, 3)
        assert second.extras["cache_hit"] is True
        assert second.schedule.assignment == first.schedule.assignment
        # Each caller gets a schedule bound to its own graph object.
        assert first.schedule.graph is graphs[0]
        assert second.schedule.graph is twin

    def test_stage_counts_are_separate_entries(self, graphs):
        scheduler = FakeScheduler()
        with SchedulingService(scheduler) as service:
            three = service.schedule(graphs[0], 3)
            four = service.schedule(graphs[0], 4)
        assert three.schedule.num_stages == 3
        assert four.schedule.num_stages == 4
        assert four.extras["cache_hit"] is False

    def test_invalid_stage_count_rejected(self, graphs):
        with SchedulingService(FakeScheduler()) as service:
            with pytest.raises(SchedulingError):
                service.submit(graphs[0], 0)

    def test_scheduler_without_schedule_rejected(self):
        with pytest.raises(ServiceError):
            SchedulingService(object())

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ServiceError):
            SchedulingService(FakeScheduler(), max_batch_size=0)
        with pytest.raises(ServiceError):
            SchedulingService(FakeScheduler(), batch_window_s=-1.0)

    def test_closed_service_rejects_submits(self, graphs):
        service = SchedulingService(FakeScheduler())
        service.schedule(graphs[0], 3)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(graphs[0], 3)
        with pytest.raises(ServiceError):
            service.submit(graphs[1], 3)  # miss path raises too

    def test_scheduler_exception_propagates_and_recovers(self, graphs):
        class Flaky(FakeScheduler):
            def __init__(self):
                super().__init__()
                self.fail = True

            def schedule_batch(self, graphs, stage_counts):
                if self.fail:
                    raise SchedulingError("boom")
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                if self.fail:
                    raise SchedulingError("boom")
                return super().schedule(graph, num_stages)

        flaky = Flaky()
        with SchedulingService(flaky, batch_window_s=0.0) as service:
            future = service.submit(graphs[0], 3)
            with pytest.raises(SchedulingError):
                future.result(timeout=5)
            flaky.fail = False
            # The failed key left no stale in-flight entry behind.
            result = service.submit(graphs[0], 3).result(timeout=5)
            assert result.schedule.assignment

    def test_sequential_fallback_without_schedule_batch(self, graphs):
        scheduler = FakeScheduler(batched=False)
        with SchedulingService(scheduler, batch_window_s=0.01) as service:
            results = service.schedule_batch(graphs, 3)
        assert len(results) == len(graphs)
        assert scheduler.schedule_calls == len(graphs)


class TestMicroBatching:
    def test_burst_is_aggregated(self, graphs):
        scheduler = FakeScheduler()
        with SchedulingService(
            scheduler, max_batch_size=len(graphs), batch_window_s=0.05
        ) as service:
            results = service.schedule_batch(graphs, 3)
        assert len(results) == len(graphs)
        assert scheduler.batch_calls >= 1
        assert max(scheduler.batch_sizes) > 1
        stats = service.stats()
        assert stats.mean_batch_size > 1.0
        assert stats.scheduled_graphs == len(graphs)

    def test_per_graph_stage_counts(self, graphs):
        counts = [2 + (i % 3) for i in range(len(graphs))]
        with SchedulingService(FakeScheduler()) as service:
            results = service.schedule_batch(graphs, counts)
        for result, stages in zip(results, counts):
            assert result.schedule.num_stages == stages

    def test_max_batch_size_respected(self, graphs):
        scheduler = FakeScheduler()
        with SchedulingService(
            scheduler, max_batch_size=2, batch_window_s=0.05
        ) as service:
            service.schedule_batch(graphs, 3)
        assert max(scheduler.batch_sizes, default=1) <= 2

    def test_coalescing_shares_one_solve(self, graphs):
        scheduler = FakeScheduler(delay=0.05)
        with SchedulingService(scheduler, batch_window_s=0.0) as service:
            with ThreadPoolExecutor(8) as pool:
                futures = [
                    pool.submit(service.schedule, graphs[0], 3)
                    for _ in range(8)
                ]
                results = [f.result(timeout=10) for f in futures]
        assignments = {tuple(sorted(r.schedule.assignment.items()))
                       for r in results}
        assert len(assignments) == 1
        stats = service.stats()
        # One solve total: everyone else hit the cache or coalesced.
        assert stats.scheduled_graphs == 1
        assert stats.cache_hits + stats.coalesced == 7

    def test_stats_latency_fields_populated(self, graphs):
        with SchedulingService(FakeScheduler()) as service:
            service.schedule_batch(graphs, 3)
            stats = service.stats()
        assert stats.requests == len(graphs)
        assert 0.0 < stats.latency_p50_s <= stats.latency_p99_s
        assert stats.latency_mean_s > 0.0
        assert stats.cache.size == len(graphs)


class TestServeListenerErrors:
    def test_listener_exception_counted_logged_and_request_served(
        self, graphs, caplog
    ):
        """Regression: listener exceptions used to vanish without trace.

        The drift/adaptation loop attaches a serve listener; a throwing
        listener must never fail the request, but must be counted in
        ``ServiceStats.listener_errors`` and logged (first occurrence).
        """
        import logging

        observed = []

        def broken(graph, num_stages, result):
            raise RuntimeError("observer bug")

        def healthy(graph, num_stages, result):
            observed.append(result)

        with SchedulingService(FakeScheduler()) as service:
            service.add_serve_listener(broken)
            service.add_serve_listener(healthy)
            with caplog.at_level(logging.ERROR, "repro.service.service"):
                results = service.schedule_batch(graphs[:3], 3)
            # every request was served despite the broken listener...
            assert len(results) == 3
            # ...the healthy listener still saw every serve...
            assert len(observed) == 3
            stats = service.stats()
        # ...every swallowed exception is counted...
        assert stats.listener_errors == 3
        # ...and exactly the first one is logged, with its traceback.
        errors = [r for r in caplog.records if "serve listener" in r.message]
        assert len(errors) == 1
        assert "observer bug" in errors[0].exc_text

    def test_cache_hit_path_counts_listener_errors_too(self, graphs):
        def broken(graph, num_stages, result):
            raise ValueError("nope")

        with SchedulingService(FakeScheduler()) as service:
            service.schedule(graphs[0], 3)  # cold miss, no listener yet
            service.add_serve_listener(broken)
            hit = service.schedule(graphs[0], 3)
            assert hit.extras["cache_hit"] is True
            assert service.stats().listener_errors == 1


class TestCloseSemantics:
    def test_close_fails_pending_futures(self, graphs):
        """Regression: close() used to strand unsolved futures forever."""
        release = threading.Event()

        class Stuck(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10.0)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10.0)
                return super().schedule(graph, num_stages)

        service = SchedulingService(Stuck(), batch_window_s=0.0)
        futures = [service.submit(g, 3) for g in graphs]
        try:
            # The worker is stuck mid-solve; close must not hang, and no
            # future may be left pending after it returns.
            service.close(timeout=0.2)
            for future in futures:
                assert future.done()
                exc = future.exception(timeout=1)
                if exc is not None:
                    assert isinstance(exc, ServiceError)
                    assert "closed" in str(exc)
        finally:
            release.set()

    def test_close_drains_accepted_work_given_time(self, graphs):
        scheduler = FakeScheduler(delay=0.01)
        service = SchedulingService(scheduler, batch_window_s=0.05)
        futures = [service.submit(g, 3) for g in graphs]
        service.close(timeout=10.0)
        # A healthy worker finishes accepted work before close returns —
        # results, not ServiceError.
        for graph, future in zip(graphs, futures):
            assert future.result(timeout=1).schedule.graph is graph

    def test_submit_racing_close_never_hangs(self, graphs):
        """Any submit concurrent with close() either raises ServiceError
        or returns a future that resolves promptly — never a hang."""
        for attempt in range(5):
            scheduler = FakeScheduler(delay=0.002)
            service = SchedulingService(scheduler, batch_window_s=0.001)
            barrier = threading.Barrier(3)
            outcomes = []

            def submitter():
                barrier.wait()
                for graph in graphs:
                    try:
                        outcomes.append(service.submit(graph, 3))
                    except ServiceError:
                        outcomes.append(None)

            def closer():
                barrier.wait()
                time.sleep(0.001 * (attempt % 3))
                service.close(timeout=0.05)

            threads = [
                threading.Thread(target=submitter),
                threading.Thread(target=submitter),
                threading.Thread(target=closer),
            ]
            barrier.reset()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
                assert not t.is_alive()
            service.close(timeout=1.0)  # settle any straggler work
            for future in outcomes:
                if future is None:
                    continue  # submit itself raised ServiceError: fine
                # Accepted futures must resolve (result or ServiceError),
                # never hang.
                try:
                    future.result(timeout=5)
                except ServiceError:
                    pass

    def test_close_is_idempotent(self, graphs):
        service = SchedulingService(FakeScheduler())
        service.schedule(graphs[0], 3)
        service.close()
        service.close()  # second close is a no-op, not an error
        service.close(timeout=None)
        with pytest.raises(ServiceError):
            service.submit(graphs[0], 3)

    def test_context_manager_after_explicit_close(self, graphs):
        service = SchedulingService(FakeScheduler())
        with service:
            service.schedule(graphs[0], 3)
            service.close()
        # __exit__ closed an already-closed service: still fine.


class TestWorkerLifecycle:
    def test_idle_worker_retires_and_restarts(self, graphs, monkeypatch):
        from repro.service import service as service_module

        monkeypatch.setattr(service_module, "_WORKER_IDLE_S", 0.05)
        service = SchedulingService(FakeScheduler(), batch_window_s=0.0)
        try:
            service.schedule(graphs[0], 3)
            deadline = time.time() + 2.0
            while service._worker is not None and time.time() < deadline:
                time.sleep(0.01)
            assert service._worker is None  # retired while idle
            # The next miss restarts a worker transparently.
            result = service.schedule(graphs[1], 3)
            assert result.schedule.graph is graphs[1]
        finally:
            service.close()

    def test_abandoned_service_is_garbage_collected(self, graphs, monkeypatch):
        # Regression: the worker thread's reference used to keep an
        # unclosed service alive forever (one leaked polling thread per
        # serve_methods factory call).
        import gc
        import weakref

        from repro.service import service as service_module

        monkeypatch.setattr(service_module, "_WORKER_IDLE_S", 0.05)
        service = SchedulingService(FakeScheduler(), batch_window_s=0.0)
        service.schedule(graphs[0], 3)
        ref = weakref.ref(service)
        deadline = time.time() + 2.0
        while service._worker is not None and time.time() < deadline:
            time.sleep(0.01)
        assert service._worker is None
        del service
        gc.collect()
        assert ref() is None


class TestOptionsKey:
    def test_fallback_distinguishes_scalar_options(self):
        a, b = FakeScheduler(), FakeScheduler()
        assert scheduler_options_key(a) == scheduler_options_key(b)
        b.delay = 1.0
        assert scheduler_options_key(a) != scheduler_options_key(b)

    def test_fallback_object_options_never_alias(self):
        # Object-valued options (e.g. a profiler hook) are keyed by
        # identity: distinct objects must not share cache entries.
        a, b = FakeScheduler(), FakeScheduler()
        a.profiler = object()
        b.profiler = object()
        assert scheduler_options_key(a) != scheduler_options_key(b)
        b.profiler = a.profiler
        assert scheduler_options_key(a) == scheduler_options_key(b)

    def test_respect_options_fingerprint_covers_packer_options(self):
        base = RespectScheduler()
        slacked = RespectScheduler(policy=base.policy, budget_slack=1.2)
        siblings = RespectScheduler(policy=base.policy, enforce_siblings=True)
        keys = {
            base.options_fingerprint(),
            slacked.options_fingerprint(),
            siblings.options_fingerprint(),
        }
        assert len(keys) == 3
        # Same policy + same options -> same key (memoized and stable).
        again = RespectScheduler(policy=base.policy)
        assert again.options_fingerprint() == base.options_fingerprint()
        assert scheduler_options_key(base) == base.options_fingerprint()

    def test_respect_fingerprint_covers_logit_clip(self):
        from repro.embedding.features import EmbeddingConfig
        from repro.rl.ptrnet import PointerNetworkPolicy

        dim = EmbeddingConfig().feature_dim
        clipped = PointerNetworkPolicy(dim, hidden_size=8, logit_clip=10.0,
                                       seed=0)
        unclipped = PointerNetworkPolicy(dim, hidden_size=8, logit_clip=0.0,
                                         seed=0)
        # Same seed -> identical weights; only the clip constant differs,
        # and it changes greedy decoding, so the keys must differ.
        assert (
            RespectScheduler(policy=clipped).options_fingerprint()
            != RespectScheduler(policy=unclipped).options_fingerprint()
        )

    def test_respect_fingerprint_frozen_against_policy_drift(self):
        from repro.embedding.features import EmbeddingConfig
        from repro.rl.ptrnet import PointerNetworkPolicy

        dim = EmbeddingConfig().feature_dim
        p1 = PointerNetworkPolicy(dim, hidden_size=8, seed=0)
        p2 = PointerNetworkPolicy(dim, hidden_size=8, seed=0)
        s1 = RespectScheduler(policy=p1)
        s2 = RespectScheduler(policy=p2)
        # Training the live policy after construction must not change
        # the key: scheduling uses the clone frozen at __init__.
        p2.w_emb.value += 1.0
        assert s1.options_fingerprint() == s2.options_fingerprint()


class TestRespectEquivalence:
    @pytest.fixture(scope="class")
    def respect(self):
        return RespectScheduler()

    def test_served_equals_direct_under_concurrency(self, respect):
        graphs = [
            sample_synthetic_dag(num_nodes=12, degree=3, seed=seed)
            for seed in range(8)
        ]
        direct = [respect.schedule(g, 4) for g in graphs]
        # Duplicate the workload so cache hits and coalescing both occur.
        workload = graphs * 3
        with SchedulingService(
            respect, max_batch_size=8, batch_window_s=0.01
        ) as service:
            with ThreadPoolExecutor(12) as pool:
                futures = [
                    pool.submit(service.schedule, g, 4) for g in workload
                ]
                served = [f.result(timeout=60) for f in futures]
            stats = service.stats()
        for graph, result in zip(workload, served):
            expected = direct[graphs.index(graph)]
            assert result.schedule.assignment == expected.schedule.assignment
            assert result.schedule.graph is graph
        assert stats.requests == len(workload)
        assert stats.cache_hits + stats.coalesced > 0
        assert stats.scheduled_graphs == len(graphs)

    def test_shared_cache_requires_matching_options(self, respect):
        graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=1)
        cache = ScheduleCache(capacity=8)
        with SchedulingService(respect, cache=cache) as service:
            service.schedule(graph, 4)
        other = RespectScheduler(policy=respect.policy, budget_slack=1.5)
        with SchedulingService(other, cache=cache) as service:
            result = service.schedule(graph, 4)
        # Different packer options never alias the first entry.
        assert result.extras["cache_hit"] is False
        assert len(cache) == 2
