"""Segment compaction / GC of the persistent schedule store."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import CachedSchedule, DiskScheduleStore

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _payload(tag, stages=3):
    return CachedSchedule(
        assignment={f"n{j}": j % stages for j in range(8)},
        num_stages=stages,
        method="list",
        objective=float(tag),
        status="ok",
        solve_time=0.001,
        provenance={"tag": tag},
    )


def _fill(store, groups=("optsA", "optsB"), keys=20, rounds=3):
    """Overwrite ``keys`` entries ``rounds`` times across option groups."""
    tag = 0
    for _ in range(rounds):
        for i in range(keys):
            opts = groups[i % len(groups)]
            store.put("ns", (f"fp{i}", 3, opts), _payload(tag))
            tag += 1


class TestCompaction:
    def test_reclaims_dead_bytes_and_preserves_entries(self, tmp_path):
        store = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        _fill(store)
        store.invalidate_options("ns", "optsB")
        keys_before = store.keys("ns")
        values_before = {k: store.get("ns", k).objective for k in keys_before}
        stats = store.compact()
        assert stats.bytes_reclaimed > 0
        assert stats.entries_live == len(keys_before)
        assert stats.entries_dropped == 0
        assert stats.segments_after <= stats.segments_before
        # Same keys, same order (oldest-first contract), same payloads.
        assert store.keys("ns") == keys_before
        for key, objective in values_before.items():
            assert store.get("ns", key).objective == objective
        store.close()

    def test_reopen_after_compact_adopts_snapshot(self, tmp_path):
        store = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        _fill(store)
        keys_before = store.keys("ns")
        store.compact()
        store.close()
        reopened = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        assert reopened.keys("ns") == keys_before
        assert reopened.stats().index_rebuilds == 0
        reopened.close()

    def test_replay_converges_when_old_segments_survive(self, tmp_path):
        # Simulate a crash after the new generation is written but
        # before the old segments are unlinked: replaying both
        # generations (and no snapshot) must converge on the same index.
        store = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        _fill(store)
        store.invalidate_options("ns", "optsB")
        keys_before = store.keys("ns")
        segments_dir = tmp_path / "segments"
        old_bytes = {
            p.name: p.read_bytes() for p in segments_dir.glob("seg-*.rsps")
        }
        store.compact()
        store.close()
        for name, data in old_bytes.items():
            (segments_dir / name).write_bytes(data)
        (tmp_path / "index.json").unlink()
        reopened = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        assert sorted(reopened.keys("ns")) == sorted(keys_before)
        reopened.close()

    def test_tombstones_are_garbage_collected(self, tmp_path):
        store = DiskScheduleStore(tmp_path)
        store.put("ns", ("fp", 3, "opts"), _payload(1))
        store.invalidate_options("ns", "opts")
        assert store.stats().entries == 0
        stats = store.compact()
        assert stats.entries_live == 0
        assert stats.bytes_after == 0 or stats.bytes_after < stats.bytes_before
        store.close()

    def test_store_usable_after_compacting_empty(self, tmp_path):
        store = DiskScheduleStore(tmp_path)
        stats = store.compact()
        assert stats.entries_live == 0
        store.put("ns", ("fp", 3, "opts"), _payload(7))
        assert store.get("ns", ("fp", 3, "opts")).objective == 7.0
        store.close()

    def test_appends_continue_into_new_generation(self, tmp_path):
        store = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        _fill(store, rounds=2)
        store.compact()
        store.put("ns", ("fresh", 3, "optsA"), _payload(99))
        assert store.get("ns", ("fresh", 3, "optsA")).objective == 99.0
        store.close()
        reopened = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        assert reopened.get("ns", ("fresh", 3, "optsA")).objective == 99.0
        reopened.close()

    def test_compact_on_closed_store_raises(self, tmp_path):
        store = DiskScheduleStore(tmp_path)
        store.close()
        with pytest.raises(ServiceError):
            store.compact()


class TestCompactStoreScript:
    @pytest.fixture(scope="class")
    def script(self):
        spec = importlib.util.spec_from_file_location(
            "compact_store", REPO_ROOT / "scripts" / "compact_store.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_compacts_and_reports(self, script, tmp_path, capsys):
        store = DiskScheduleStore(tmp_path, max_segment_bytes=2048)
        _fill(store)
        store.invalidate_options("ns", "optsB")
        store.close()
        assert script.main([str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bytes_reclaimed"] > 0
        assert payload["entries_dropped"] == 0

    def test_stats_only_mode(self, script, tmp_path, capsys):
        store = DiskScheduleStore(tmp_path)
        store.put("ns", ("fp", 3, "opts"), _payload(1))
        store.close()
        assert script.main([str(tmp_path), "--stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1

    def test_rejects_non_store_directory(self, script, tmp_path):
        assert script.main([str(tmp_path / "nope")]) == 2
