"""Tests for the multiprocess decode tier (:mod:`repro.service.workers`).

The contract under test: routing the pointer-network decode through a
:class:`DecodeWorkerPool` of spawn-started processes changes *where* the
numpy runs and nothing else — schedules stay bit-identical to the
in-process path, hot swaps propagate atomically via the weights-epoch
token, a killed worker is respawned and its in-flight work resubmitted
(fault injection below), and ``close`` fails still-pending waiters with
exactly the in-process tier's ``ServiceError("service closed")``.

Pools spawn real processes (cold start pays a numpy import per worker),
so the suite shares one module-scoped pool wherever the test doesn't
need to damage it.
"""

import time

import pytest

from repro.errors import DecodeWorkerError, ServiceError
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.respect import RespectScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.service import (
    DecodeWorkerPool,
    SchedulingService,
    ShardedSchedulingService,
    WorkerDecodeScheduler,
    supports_worker_decode,
    unwrap_scheduler,
)


@pytest.fixture(scope="module")
def respect():
    return RespectScheduler()


@pytest.fixture(scope="module")
def shared_pool():
    with DecodeWorkerPool(2) as pool:
        yield pool


@pytest.fixture(scope="module")
def graphs():
    return [
        sample_synthetic_dag(num_nodes=12, degree=3, seed=seed)
        for seed in range(6)
    ]


class TestPredicates:
    def test_supports_worker_decode(self, respect):
        assert supports_worker_decode(respect)
        assert not supports_worker_decode(ListScheduler())

    def test_wrapped_scheduler_is_not_rewrappable(self, respect, shared_pool):
        epoch = shared_pool.publish_scheduler(respect)
        wrapped = WorkerDecodeScheduler(respect, shared_pool, epoch)
        assert not supports_worker_decode(wrapped)
        assert unwrap_scheduler(wrapped) is respect
        assert unwrap_scheduler(respect) is respect

    def test_adapter_delegates_identity(self, respect, shared_pool):
        epoch = shared_pool.publish_scheduler(respect)
        wrapped = WorkerDecodeScheduler(respect, shared_pool, epoch)
        assert wrapped.method_name == respect.method_name
        assert (
            wrapped.options_fingerprint() == respect.options_fingerprint()
        )
        # Attribute delegation: the online loop reads these through the
        # adapter when cloning challenger schedulers.
        assert wrapped.budget_slack == respect.budget_slack


class TestBitIdentity:
    def test_adapter_schedule_matches_in_process(
        self, respect, shared_pool, graphs
    ):
        epoch = shared_pool.publish_scheduler(respect)
        wrapped = WorkerDecodeScheduler(respect, shared_pool, epoch)
        for graph in graphs[:3]:
            remote = wrapped.schedule(graph, 4)
            local = respect.schedule(graph, 4)
            assert remote.schedule.assignment == local.schedule.assignment
            assert remote.extras["log_prob"] == local.extras["log_prob"]
            assert remote.extras["worker_decode"] is True

    def test_adapter_schedule_batch_matches_in_process(
        self, respect, shared_pool, graphs
    ):
        epoch = shared_pool.publish_scheduler(respect)
        wrapped = WorkerDecodeScheduler(respect, shared_pool, epoch)
        remote = wrapped.schedule_batch(graphs, 4)
        local = respect.schedule_batch(graphs, 4)
        for r, l in zip(remote, local):
            assert r.schedule.assignment == l.schedule.assignment
            assert r.extras["log_prob"] == l.extras["log_prob"]

    def test_service_with_decode_pool_matches_in_process(
        self, respect, shared_pool, graphs
    ):
        with SchedulingService(respect, decode_pool=shared_pool) as service:
            assert isinstance(service.scheduler, WorkerDecodeScheduler)
            served = [service.schedule(g, 4) for g in graphs]
        local = [respect.schedule(g, 4) for g in graphs]
        for s, l in zip(served, local):
            assert s.schedule.assignment == l.schedule.assignment
        # Shared pools outlive the services borrowing them.
        assert not shared_pool.stats().closed
        assert shared_pool.stats().decodes > 0

    def test_sharded_service_with_decode_pool_matches_in_process(
        self, respect, shared_pool, graphs
    ):
        with ShardedSchedulingService(
            respect, num_shards=2, decode_pool=shared_pool
        ) as service:
            served = [service.schedule(g, 4) for g in graphs]
        local = [respect.schedule(g, 4) for g in graphs]
        for s, l in zip(served, local):
            assert s.schedule.assignment == l.schedule.assignment
        assert not shared_pool.stats().closed


class TestHotSwap:
    def test_mid_stream_swap_is_bit_identical_per_generation(
        self, respect, shared_pool, graphs
    ):
        challenger = RespectScheduler(budget_slack=1.5)
        with SchedulingService(respect, decode_pool=shared_pool) as service:
            before = [service.schedule(g, 4) for g in graphs[:3]]
            old_key = service.swap_scheduler(challenger)
            assert old_key == respect.options_fingerprint()
            assert isinstance(service.scheduler, WorkerDecodeScheduler)
            after = [service.schedule(g, 4) for g in graphs[:3]]
        for s, l in zip(before, [respect.schedule(g, 4) for g in graphs[:3]]):
            assert s.schedule.assignment == l.schedule.assignment
        for s, l in zip(
            after, [challenger.schedule(g, 4) for g in graphs[:3]]
        ):
            assert s.schedule.assignment == l.schedule.assignment

    def test_stale_epoch_adapter_still_decodes_its_own_weights(
        self, respect, shared_pool, graphs
    ):
        # Publishing a new epoch must not corrupt adapters still pinned
        # to an older one (requests in flight during a swap).
        old = WorkerDecodeScheduler(
            respect, shared_pool, shared_pool.publish_scheduler(respect)
        )
        challenger = RespectScheduler(budget_slack=1.5)
        new = WorkerDecodeScheduler(
            challenger, shared_pool, shared_pool.publish_scheduler(challenger)
        )
        graph = graphs[0]
        assert (
            new.schedule(graph, 4).schedule.assignment
            == challenger.schedule(graph, 4).schedule.assignment
        )
        assert (
            old.schedule(graph, 4).schedule.assignment
            == respect.schedule(graph, 4).schedule.assignment
        )


class TestFallbackAndValidation:
    def test_unsupported_scheduler_stays_in_process(self, shared_pool, graphs):
        scheduler = ListScheduler()
        with SchedulingService(scheduler, decode_pool=shared_pool) as service:
            assert service.scheduler is scheduler
            served = service.schedule(graphs[0], 4)
        assert (
            served.schedule.assignment
            == scheduler.schedule(graphs[0], 4).schedule.assignment
        )

    def test_decode_workers_and_decode_pool_are_exclusive(self, respect):
        with pytest.raises(ServiceError, match="not both"):
            SchedulingService(
                respect, decode_workers=2, decode_pool=object()
            )
        with pytest.raises(ServiceError, match="not both"):
            ShardedSchedulingService(
                respect, decode_workers=2, decode_pool=object()
            )

    def test_negative_decode_workers_rejected(self, respect):
        with pytest.raises(ServiceError):
            SchedulingService(respect, decode_workers=-1)

    def test_submit_requires_published_scheduler(self):
        with DecodeWorkerPool(1) as pool:
            with pytest.raises(ServiceError, match="no scheduler published"):
                pool.submit(b"whatever")


class TestFaultInjection:
    def test_killed_worker_is_respawned_and_work_resubmitted(
        self, respect, graphs
    ):
        # Dedicated pool: this test damages it on purpose.
        with DecodeWorkerPool(1) as pool:
            epoch = pool.publish_scheduler(respect)
            wrapped = WorkerDecodeScheduler(respect, pool, epoch)
            baseline = wrapped.schedule(graphs[0], 4)
            victim = pool._workers[0].process
            victim.terminate()
            victim.join()
            survived = wrapped.schedule(graphs[0], 4)
            assert (
                survived.schedule.assignment
                == baseline.schedule.assignment
            )
            deadline = time.monotonic() + 10.0
            while (
                pool.stats().respawns < 1 and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert pool.stats().respawns >= 1

    def test_close_fails_pending_waiters_like_in_process_tier(self, respect):
        import threading

        with DecodeWorkerPool(1) as pool:
            epoch = pool.publish_scheduler(respect)
            wrapped = WorkerDecodeScheduler(respect, pool, epoch)
            graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=99)
            wrapped.schedule(graph, 4)  # workers warm: next submit queues fast
            # Kill the only worker so a submitted task can never finish,
            # then close: the waiter must get the in-process tier's
            # exact failure, not a timeout of its own.
            pool._workers[0].process.terminate()
            pool._workers[0].process.join()
            errors = []

            def submit():
                try:
                    pool.submit(b"never decoded", timeout=30.0)
                except ServiceError as exc:
                    errors.append(exc)

            thread = threading.Thread(target=submit)
            thread.start()
            deadline = time.monotonic() + 5.0
            while not pool.stats().pending and time.monotonic() < deadline:
                time.sleep(0.01)
            pool.close(timeout=2.0)
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert len(errors) == 1
            assert str(errors[0]) == "service closed"
            assert not isinstance(errors[0], DecodeWorkerError)

    def test_closed_pool_refuses_submits(self, respect):
        pool = DecodeWorkerPool(1)
        pool.publish_scheduler(respect)
        pool.close()
        with pytest.raises(ServiceError, match="closed"):
            pool.submit(b"late")
        pool.close()  # idempotent
