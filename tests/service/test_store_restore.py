"""Snapshot/restore round-trips through the serving tiers.

The contract under test (issue satellite #3 plus the promotion
acceptance criterion): a service rebooted over a persisted store
directory — same process or a fresh subprocess — serves bit-identical
schedules with **zero** solver invocations, and after
``promote_challenger`` a rebooted process can never serve a schedule
solved by the retired champion.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.service import (
    DiskScheduleStore,
    SchedulingService,
    ShardedSchedulingService,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class CountingScheduler:
    """Deterministic scheduler with a fixed, cross-process options key."""

    method_name = "counting"

    def __init__(self, options_key: str = "counting-v1") -> None:
        self._options_key = options_key
        self.schedule_calls = 0

    def options_fingerprint(self) -> str:
        return self._options_key

    def schedule(self, graph, num_stages):
        self.schedule_calls += 1
        assignment = {
            name: min(i * num_stages // graph.num_nodes, num_stages - 1)
            for i, name in enumerate(graph.node_names)
        }
        return ScheduleResult(
            Schedule(graph, num_stages, assignment), 0.001, self.method_name
        )


@pytest.fixture()
def graphs():
    return [sample_synthetic_dag(num_nodes=12, seed=seed) for seed in range(5)]


class TestSingleServiceRestore:
    def test_warm_reboot_serves_bit_identical_without_solving(
        self, graphs, tmp_path
    ):
        with SchedulingService(
            CountingScheduler(), store_dir=tmp_path, batch_window_s=0.0
        ) as service:
            cold = [service.schedule(g, 3) for g in graphs]
            service.snapshot()

        reborn = CountingScheduler()
        with SchedulingService(
            reborn, store_dir=tmp_path, batch_window_s=0.0
        ) as service:
            assert service.restore() == len(graphs)
            warm = [service.schedule(g, 3) for g in graphs]
            assert reborn.schedule_calls == 0
            for before, after in zip(cold, warm):
                assert (
                    before.schedule.assignment == after.schedule.assignment
                )
                assert after.extras["cache_hit"] is True
            assert service.stats().cache_hits == len(graphs)

    def test_unsnapshotted_store_still_warm_starts(self, graphs, tmp_path):
        # Crash-consistency: appends are flushed per put, so even a
        # process that never called snapshot()/close() leaves a fully
        # replayable store behind.
        service = SchedulingService(
            CountingScheduler(), store_dir=tmp_path, batch_window_s=0.0
        )
        cold = [service.schedule(g, 3) for g in graphs]
        # Abandon without close(): simulate a process crash by dropping
        # the handle on the floor (segment bytes are already flushed).
        service._owned_store._append_handle.flush()
        service._owned_store._closed = True
        service._closed = True

        reborn = CountingScheduler()
        with SchedulingService(
            reborn, store_dir=tmp_path, batch_window_s=0.0
        ) as revived:
            warm = [revived.schedule(g, 3) for g in graphs]
            assert reborn.schedule_calls == 0
            for before, after in zip(cold, warm):
                assert before.schedule.assignment == after.schedule.assignment

    def test_snapshot_requires_persistent_store(self):
        from repro.errors import ServiceError

        with SchedulingService(CountingScheduler()) as service:
            assert service.schedule_store is None
            assert service.restore() == 0
            with pytest.raises(ServiceError):
                service.snapshot()

    def test_distinct_options_keys_do_not_cross_serve(self, graphs, tmp_path):
        with SchedulingService(
            CountingScheduler("v1"), store_dir=tmp_path, batch_window_s=0.0
        ) as service:
            service.schedule(graphs[0], 3)
        other = CountingScheduler("v2")
        with SchedulingService(
            other, store_dir=tmp_path, batch_window_s=0.0
        ) as service:
            service.schedule(graphs[0], 3)
            # Content-addressing includes the options key: a different
            # scheduler configuration must re-solve, not reuse.
            assert other.schedule_calls == 1


class TestShardedServiceRestore:
    def test_warm_reboot_across_shards(self, graphs, tmp_path):
        with ShardedSchedulingService(
            scheduler_factory=CountingScheduler,
            num_shards=3,
            store_dir=tmp_path,
            batch_window_s=0.0,
        ) as tier:
            cold = [tier.schedule(g, 3) for g in graphs]
            tier.snapshot()
            assert tier.schedule_store is not None

        reborn = CountingScheduler()
        with ShardedSchedulingService(
            reborn, num_shards=3, store_dir=tmp_path, batch_window_s=0.0
        ) as tier:
            assert tier.restore() == len(graphs)
            warm = [tier.schedule(g, 3) for g in graphs]
            assert reborn.schedule_calls == 0
            for before, after in zip(cold, warm):
                assert before.schedule.assignment == after.schedule.assignment

    def test_shard_namespaces_preserve_affinity(self, graphs, tmp_path):
        # Every persisted entry must live in the namespace of the shard
        # that owns its fingerprint — the invariant that makes the warm
        # start above find entries where the ring routes requests.
        with ShardedSchedulingService(
            scheduler_factory=CountingScheduler,
            num_shards=3,
            store_dir=tmp_path,
            batch_window_s=0.0,
        ) as tier:
            for graph in graphs:
                tier.schedule(graph, 3)
            expected = {}
            for graph in graphs:
                shard_id = tier.shard_index(graph)
                namespace = tier.shard_namespace(shard_id)
                expected[namespace] = expected.get(namespace, 0) + 1
        with DiskScheduleStore(tmp_path) as store:
            observed = {
                namespace: store.count(namespace)
                for namespace in store.namespaces()
            }
            assert observed == {k: v for k, v in expected.items() if v}

    def test_store_and_caches_are_mutually_exclusive(self, tmp_path):
        from repro.errors import ServiceError
        from repro.service import ScheduleCache

        with pytest.raises(ServiceError):
            ShardedSchedulingService(
                CountingScheduler(),
                num_shards=2,
                caches=[ScheduleCache(4), ScheduleCache(4)],
                store_dir=tmp_path,
            )


_SUBPROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.graphs.sampler import sample_synthetic_dag
from repro.service import SchedulingService

class ExplodingScheduler:
    method_name = "counting"
    def options_fingerprint(self):
        return "counting-v1"
    def schedule(self, graph, num_stages):
        raise AssertionError("the restored process must never solve")

graphs = [sample_synthetic_dag(num_nodes=12, seed=seed) for seed in range(5)]
with SchedulingService(
    ExplodingScheduler(), store_dir={store!r}, batch_window_s=0.0
) as service:
    service.restore()
    served = [service.schedule(g, 3).schedule.assignment for g in graphs]
print(json.dumps(served))
"""


class TestSubprocessRestore:
    def test_fresh_process_serves_bit_identical_with_zero_solves(
        self, graphs, tmp_path
    ):
        store_dir = tmp_path / "store"
        with SchedulingService(
            CountingScheduler(), store_dir=store_dir, batch_window_s=0.0
        ) as service:
            cold = [
                service.schedule(g, 3).schedule.assignment for g in graphs
            ]
            service.snapshot()

        script = _SUBPROCESS_SCRIPT.format(
            src=REPO_SRC, store=str(store_dir)
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        warm = json.loads(proc.stdout)
        assert warm == cold


class TestPromotionDurability:
    """After promote_challenger, a rebooted process over the same store
    directory never serves a schedule solved by the retired champion."""

    def _policy(self, seed):
        from repro.embedding.features import EmbeddingConfig
        from repro.rl.ptrnet import PointerNetworkPolicy

        return PointerNetworkPolicy(
            feature_dim=EmbeddingConfig().feature_dim, hidden_size=16, seed=seed
        )

    def _respect(self, seed):
        from repro.rl.respect import RespectScheduler

        return RespectScheduler(policy=self._policy(seed))

    def test_restart_after_promotion_never_serves_champion(
        self, graphs, tmp_path
    ):
        from repro.online import ShadowEvaluation, promote_challenger
        from repro.online.promotion import scheduler_with_policy

        champion = self._respect(0)
        challenger = scheduler_with_policy(champion, self._policy(1))
        champion_key = champion.options_fingerprint()
        evaluation = ShadowEvaluation(
            champion_rewards=[0.5] * 4,
            challenger_rewards=[0.8, 0.81, 0.79, 0.8],
            min_improvement=0.0,
            z_threshold=1.64,
        )
        with SchedulingService(
            champion, store_dir=tmp_path, batch_window_s=0.0
        ) as service:
            for graph in graphs:
                service.schedule(graph, 3)
            assert service.schedule_store.count() == len(graphs)
            record = promote_challenger(service, challenger, evaluation)
            assert record.invalidated_entries == len(graphs)
            challenger_served = [
                service.schedule(g, 3).schedule.assignment for g in graphs
            ]

        # Reboot over the same directory: not a single entry of the
        # retired champion survives — not in the index, and not
        # servable under its options fingerprint.
        with DiskScheduleStore(tmp_path) as store:
            for namespace in store.namespaces() or ["default"]:
                for key in store.keys(namespace):
                    assert key[2] != champion_key
                    entry = store.get(namespace, key)
                    assert entry.provenance["options_fingerprint"] != (
                        champion_key
                    )

        reborn = scheduler_with_policy(champion, self._policy(1))
        with SchedulingService(
            reborn, store_dir=tmp_path, batch_window_s=0.0
        ) as revived:
            # The promoted challenger's entries warm-start the reboot...
            warm = [
                revived.schedule(g, 3).schedule.assignment for g in graphs
            ]
            assert warm == challenger_served
            assert revived.stats().cache_hits == len(graphs)

        # A reboot running the retired champion itself finds nothing to
        # reuse: its entries are durably gone, so every request would be
        # a fresh solve — never a resurrected schedule.
        from repro.graphs.fingerprint import graph_fingerprint

        champion_again = scheduler_with_policy(champion, self._policy(0))
        with SchedulingService(
            champion_again, store_dir=tmp_path, batch_window_s=0.0
        ) as relapsed:
            assert (
                champion_again.options_fingerprint() == champion_key
            )  # same weights -> same fingerprint, so reuse *would* hit
            for graph in graphs:
                assert not relapsed.has_cached(graph_fingerprint(graph), 3)
