"""Deadline budgets and the degrade ladder through the serving stack."""

import time

import pytest

from repro.errors import ServiceError, SolverError
from repro.graphs.sampler import sample_synthetic_dag
from repro.obs import Telemetry
from repro.portfolio import AnytimePortfolio, DegradeLadder, PortfolioLane
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService, ShardedSchedulingService
from repro.tpu.quantize import quantize_graph

#: Single-core CI hosts schedule threads coarsely: "answered at the
#: deadline" is asserted within this much total wall clock.
GENEROUS_SLACK_S = 10.0


def _graph(seed=0, num_nodes=14):
    return quantize_graph(
        sample_synthetic_dag(num_nodes=num_nodes, degree=2, seed=seed)
    )


class _HangingScheduler:
    """A lane that spins until the race's stop flag fires."""

    def __init__(self, should_stop):
        self._should_stop = should_stop

    def schedule(self, graph, num_stages):
        while not self._should_stop():
            time.sleep(0.005)
        raise SolverError("hung lane cancelled")


def _racing_portfolio(deadline_ms=100.0, hang=False, telemetry=None):
    lanes = [PortfolioLane("list", lambda stop: ListScheduler())]
    if hang:
        lanes.append(PortfolioLane("hang", lambda stop: _HangingScheduler(stop)))
    return AnytimePortfolio(
        lanes=lanes, deadline_ms=deadline_ms, telemetry=telemetry
    )


class TestServiceDeadlines:
    def test_deadline_request_carries_provenance_and_counters(self):
        tel = Telemetry()
        service = SchedulingService(
            _racing_portfolio(deadline_ms=5_000.0), telemetry=tel
        )
        try:
            result = service.submit(_graph(), 3, deadline_ms=5_000.0).result()
            assert result.extras["service_deadline_ms"] == 5_000.0
            assert result.extras["winning_lane"] == "list"
            assert "service_deadline_hit" in result.extras
            text = tel.registry.render_prometheus()
            assert "respect_deadline_outcomes_total" in text
        finally:
            service.close()

    def test_non_positive_deadline_rejected(self):
        service = SchedulingService(ListScheduler())
        try:
            with pytest.raises(ServiceError):
                service.submit(_graph(), 3, deadline_ms=0.0)
        finally:
            service.close()

    def test_plain_requests_unaffected_by_deadline_support(self):
        service = SchedulingService(_racing_portfolio(deadline_ms=5_000.0))
        try:
            result = service.submit(_graph(), 3).result()
            assert result.extras.get("service_deadline_ms") is None
        finally:
            service.close()

    def test_incomplete_race_never_poisons_the_cache(self):
        # A hanging lane forces an incomplete (anytime) answer; the
        # service must re-solve the same request instead of caching it.
        service = SchedulingService(
            _racing_portfolio(deadline_ms=80.0, hang=True)
        )
        try:
            graph = _graph(seed=1)
            first = service.submit(graph, 3, deadline_ms=80.0).result()
            assert first.extras["anytime_complete"] is False
            second = service.submit(graph, 3, deadline_ms=80.0).result()
            assert second.extras["cache_hit"] is False
        finally:
            service.close()

    def test_complete_race_is_cached(self):
        service = SchedulingService(_racing_portfolio(deadline_ms=10_000.0))
        try:
            graph = _graph(seed=2)
            first = service.submit(graph, 3, deadline_ms=10_000.0).result()
            assert first.extras["anytime_complete"] is True
            second = service.submit(graph, 3, deadline_ms=10_000.0).result()
            assert second.extras["cache_hit"] is True
        finally:
            service.close()

    def test_hanging_lane_fault_injection_answers_in_time(self):
        service = SchedulingService(
            _racing_portfolio(deadline_ms=100.0, hang=True)
        )
        try:
            start = time.perf_counter()
            result = service.submit(_graph(seed=3), 3, deadline_ms=100.0).result(
                timeout=GENEROUS_SLACK_S
            )
            elapsed = time.perf_counter() - start
            assert elapsed < GENEROUS_SLACK_S
            assert result.extras["winning_lane"] == "list"
            assert result.schedule.is_valid()
        finally:
            service.close()


class TestShardedDegradeLadder:
    def _saturated_tier(self, ladder):
        # max_queue_depth=1 with a deliberately slow scheduler makes the
        # second distinct submission hit the degrade path.
        class Slow:
            def schedule(self, graph, num_stages):
                time.sleep(0.25)
                return ListScheduler().schedule(graph, num_stages)

        return ShardedSchedulingService(
            scheduler=Slow(),
            num_shards=1,
            max_queue_depth=1,
            admission="degrade",
            portfolio=ladder,
        )

    def test_degraded_serve_records_rung_and_counter(self):
        ladder = DegradeLadder()
        tier = self._saturated_tier(ladder)
        try:
            futures = [tier.submit(_graph(seed=s), 3) for s in range(4)]
            results = [f.result(timeout=30.0) for f in futures]
            degraded = [r for r in results if r.extras.get("degraded")]
            assert degraded, "saturation must have degraded some requests"
            for result in degraded:
                assert result.extras["degrade_rung"] in (
                    "policy",
                    "heuristic",
                    "cached_nearest",
                    "floor",
                )
            text = tier.telemetry.registry.render_prometheus()
            rung_lines = [
                line
                for line in text.splitlines()
                if line.startswith("respect_degrade_rung_total")
                and not line.endswith(" 0")
            ]
            assert rung_lines, text
        finally:
            tier.close()

    def test_legacy_fallback_records_fallback_rung(self):
        tier = self._saturated_tier(None)
        try:
            futures = [tier.submit(_graph(seed=s), 3) for s in range(4)]
            results = [f.result(timeout=30.0) for f in futures]
            degraded = [r for r in results if r.extras.get("degraded")]
            assert degraded
            assert all(
                r.extras["degrade_rung"] == "fallback" for r in degraded
            )
        finally:
            tier.close()

    def test_portfolio_requires_serve_contract(self):
        with pytest.raises(ServiceError, match="serve"):
            ShardedSchedulingService(
                scheduler=ListScheduler(),
                num_shards=1,
                admission="degrade",
                portfolio=object(),
            )

    def test_full_quality_serves_warm_the_structural_index(self):
        ladder = DegradeLadder()
        tier = ShardedSchedulingService(
            scheduler=ListScheduler(),
            num_shards=1,
            admission="degrade",
            portfolio=ladder,
        )
        try:
            tier.submit(_graph(seed=9), 3).result(timeout=30.0)
            assert len(ladder.index) == 1
        finally:
            tier.close()

    def test_deadline_forwarded_through_the_front_tier(self):
        tier = ShardedSchedulingService(
            scheduler=_racing_portfolio(deadline_ms=5_000.0), num_shards=1
        )
        try:
            result = tier.submit(_graph(), 3, deadline_ms=5_000.0).result(
                timeout=30.0
            )
            assert result.extras["service_deadline_ms"] == 5_000.0
        finally:
            tier.close()
