"""Sharded serving tier: routing, admission, async facade, lifecycle.

Logic tests run an instrumented fake scheduler (full control of timing
and call counts); the promotion/hot-swap integration with the real
pretrained policy lives in ``tests/online/test_hot_swap.py``.
"""

import asyncio
import threading
import time
from collections import Counter

import pytest

from repro.errors import ServiceError, ServiceOverloadError
from repro.graphs.fingerprint import graph_fingerprint
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.service import (
    ScheduleCache,
    SchedulingService,
    ShardedSchedulingService,
    build_hash_ring,
    shard_for_fingerprint,
)

NUM_STAGES = 3


class FakeScheduler:
    """Deterministic scheduler that counts and optionally delays calls."""

    method_name = "fake"

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.schedule_calls = 0
        self.batch_calls = 0
        self._lock = threading.Lock()

    def _solve(self, graph, num_stages):
        assignment = {
            name: min(i * num_stages // graph.num_nodes, num_stages - 1)
            for i, name in enumerate(graph.node_names)
        }
        return ScheduleResult(
            Schedule(graph, num_stages, assignment), 0.001, self.method_name
        )

    def schedule(self, graph, num_stages):
        with self._lock:
            self.schedule_calls += 1
        if self.delay:
            time.sleep(self.delay)
        return self._solve(graph, num_stages)

    def schedule_batch(self, graphs, stage_counts):
        with self._lock:
            self.batch_calls += 1
        if self.delay:
            time.sleep(self.delay * len(graphs))
        return [self._solve(g, s) for g, s in zip(graphs, stage_counts)]


@pytest.fixture
def graphs():
    return [
        sample_synthetic_dag(num_nodes=10, degree=3, seed=seed)
        for seed in range(16)
    ]


class TestHashRing:
    def test_ring_is_deterministic(self):
        assert build_hash_ring(4) == build_hash_ring(4)
        fp = "ab" * 32
        ring = build_hash_ring(4)
        assert shard_for_fingerprint(fp, ring) == shard_for_fingerprint(
            fp, build_hash_ring(4)
        )

    def test_every_shard_owns_a_fair_slice(self):
        ring = build_hash_ring(4)
        counts = Counter(
            shard_for_fingerprint(f"fingerprint-{i}", ring)
            for i in range(4096)
        )
        assert set(counts) == {0, 1, 2, 3}
        for shard, count in counts.items():
            # Virtual nodes keep the spread well within 2x of uniform.
            assert 4096 / 8 < count < 4096 / 2, (shard, counts)

    def test_growing_the_ring_moves_a_minority_of_keys(self):
        """Consistent hashing: 4 -> 5 shards remaps ~1/5, not ~4/5."""
        ring4, ring5 = build_hash_ring(4), build_hash_ring(5)
        keys = [f"graph-{i}" for i in range(4096)]
        moved = sum(
            shard_for_fingerprint(k, ring4) != shard_for_fingerprint(k, ring5)
            for k in keys
        )
        assert moved / len(keys) < 0.45  # expected ~0.20

    def test_invalid_ring_parameters_rejected(self):
        with pytest.raises(ServiceError):
            build_hash_ring(0)
        with pytest.raises(ServiceError):
            build_hash_ring(2, virtual_nodes=0)


class TestConstruction:
    def test_exactly_one_scheduler_source(self):
        with pytest.raises(ServiceError):
            ShardedSchedulingService()
        with pytest.raises(ServiceError):
            ShardedSchedulingService(
                FakeScheduler(), scheduler_factory=FakeScheduler
            )

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ServiceError):
            ShardedSchedulingService(FakeScheduler(), num_shards=0)
        with pytest.raises(ServiceError):
            ShardedSchedulingService(FakeScheduler(), max_queue_depth=0)
        with pytest.raises(ServiceError):
            ShardedSchedulingService(FakeScheduler(), admission="panic")
        with pytest.raises(ServiceError):
            ShardedSchedulingService(
                FakeScheduler(), num_shards=2, caches=[ScheduleCache(8)]
            )
        with pytest.raises(ServiceError):
            ShardedSchedulingService(
                FakeScheduler(),
                admission="degrade",
                fallback_scheduler=object(),
            )


class TestRoutingAndEquivalence:
    def test_results_match_direct_and_bind_callers_graph(self, graphs):
        fake = FakeScheduler()
        direct = [fake.schedule(g, NUM_STAGES) for g in graphs]
        with ShardedSchedulingService(fake, num_shards=4) as service:
            served = service.schedule_batch(graphs, NUM_STAGES)
        for d, s, graph in zip(direct, served, graphs):
            assert s.schedule.assignment == d.schedule.assignment
            assert s.schedule.graph is graph

    def test_sharded_equals_single_shard_service(self, graphs):
        fake = FakeScheduler()
        with SchedulingService(fake) as single:
            one = single.schedule_batch(graphs, NUM_STAGES)
        with ShardedSchedulingService(fake, num_shards=4) as sharded:
            four = sharded.schedule_batch(graphs, NUM_STAGES)
        for a, b in zip(one, four):
            assert a.schedule.assignment == b.schedule.assignment

    def test_fingerprint_routing_gives_cache_affinity(self, graphs):
        fake = FakeScheduler()
        with ShardedSchedulingService(fake, num_shards=4) as service:
            cold = service.schedule(graphs[0], NUM_STAGES)
            warm = service.schedule(graphs[0], NUM_STAGES)
            assert cold.extras["cache_hit"] is False
            assert warm.extras["cache_hit"] is True
            # Exactly the owning shard saw both requests.
            shard_id = service.shard_index(graphs[0])
            per_shard = service.stats().per_shard
            assert per_shard[shard_id].requests == 2
            assert per_shard[shard_id].cache_hits == 1
            assert sum(s.requests for s in per_shard) == 2

    def test_content_identical_graphs_route_identically(self, graphs):
        with ShardedSchedulingService(FakeScheduler(), num_shards=4) as svc:
            twin = sample_synthetic_dag(num_nodes=10, degree=3, seed=0)
            assert graph_fingerprint(twin) == graph_fingerprint(graphs[0])
            assert svc.shard_index(twin) == svc.shard_index(graphs[0])
            svc.schedule(graphs[0], NUM_STAGES)
            assert svc.schedule(twin, NUM_STAGES).extras["cache_hit"] is True

    def test_requests_spread_across_shards(self):
        many = [
            sample_synthetic_dag(num_nodes=8, degree=2, seed=seed)
            for seed in range(64)
        ]
        with ShardedSchedulingService(FakeScheduler(), num_shards=4) as svc:
            svc.schedule_batch(many, NUM_STAGES)
            used = [s.requests for s in svc.stats().per_shard]
        assert sum(used) == 64
        assert sum(1 for u in used if u > 0) >= 3  # not all on one shard

    def test_scheduler_factory_one_instance_per_shard(self, graphs):
        made = []

        def factory():
            made.append(FakeScheduler())
            return made[-1]

        with ShardedSchedulingService(
            scheduler_factory=factory, num_shards=3
        ) as service:
            service.schedule_batch(graphs, NUM_STAGES)
        assert len(made) == 3
        assert len({id(s.scheduler) for s in service.shards}) == 3


class TestAdmission:
    def test_block_policy_backpressures_and_loses_nothing(self, graphs):
        fake = FakeScheduler(delay=0.003)
        with ShardedSchedulingService(
            fake,
            num_shards=2,
            max_queue_depth=1,
            admission="block",
            batch_window_s=0.0,
        ) as service:
            direct = [fake.schedule(g, NUM_STAGES) for g in graphs]
            results = [None] * len(graphs)

            def client(i):
                results[i] = service.schedule(graphs[i], NUM_STAGES)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(graphs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()
            stats = service.stats()
        assert stats.blocked > 0  # depth 1 under 16 clients must wait
        assert stats.shed == 0 and stats.degraded == 0
        for d, r in zip(direct, results):
            assert r.schedule.assignment == d.schedule.assignment

    def test_shed_policy_raises_overload(self, graphs):
        release = threading.Event()

        class Gated(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        service = ShardedSchedulingService(
            Gated(),
            num_shards=1,  # one shard so saturation is deterministic
            max_queue_depth=2,
            admission="shed",
            batch_window_s=0.0,
        )
        try:
            first = [service.submit(g, NUM_STAGES) for g in graphs[:2]]
            with pytest.raises(ServiceOverloadError):
                service.submit(graphs[2], NUM_STAGES)
            assert service.stats().shed == 1
            release.set()
            for graph, future in zip(graphs[:2], first):
                assert future.result(timeout=10).schedule.graph is graph
            # Once drained, the shard admits again.
            assert (
                service.schedule(graphs[2], NUM_STAGES).schedule.graph
                is graphs[2]
            )
        finally:
            release.set()
            service.close()

    def test_degrade_policy_serves_fallback_inline(self, graphs):
        release = threading.Event()

        class Gated(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        fallback = ListScheduler()
        seen = []
        service = ShardedSchedulingService(
            Gated(),
            num_shards=1,
            max_queue_depth=1,
            admission="degrade",
            fallback_scheduler=fallback,
            batch_window_s=0.0,
        )
        try:
            service.add_serve_listener(
                lambda graph, stages, result: seen.append(result)
            )
            pending = service.submit(graphs[0], NUM_STAGES)
            degraded = service.submit(graphs[1], NUM_STAGES)
            assert degraded.done()  # answered inline, no queueing
            result = degraded.result(timeout=1)
            assert result.extras["degraded"] is True
            expected = fallback.schedule(graphs[1], NUM_STAGES)
            assert result.schedule.assignment == expected.schedule.assignment
            assert result.schedule.graph is graphs[1]
            # The degraded serve was observed by the tier listener.
            assert any(r.extras.get("degraded") for r in seen)
            assert service.stats().degraded == 1
            release.set()
            pending.result(timeout=10)
            # Normal serves are never marked degraded.
            normal = service.schedule(graphs[2], NUM_STAGES)
            assert "degraded" not in normal.extras
        finally:
            release.set()
            service.close()

    def test_cached_requests_bypass_a_saturated_gate(self, graphs):
        """A request answerable from the cache (or coalescable onto an
        in-flight solve) is never shed/degraded/blocked: admission
        bounds solver backlog, not O(1) lookups."""
        release = threading.Event()

        class Gated(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        fake = Gated()
        service = ShardedSchedulingService(
            fake,
            num_shards=1,
            max_queue_depth=1,
            admission="shed",
            batch_window_s=0.0,
        )
        try:
            # Warm the cache for graphs[0] before saturating.
            release.set()
            warm = service.schedule(graphs[0], NUM_STAGES)
            assert warm.extras["cache_hit"] is False
            release.clear()
            stuck = service.submit(graphs[1], NUM_STAGES)  # saturates
            with pytest.raises(ServiceOverloadError):
                service.submit(graphs[2], NUM_STAGES)  # uncached: shed
            # Cached: served straight past the saturated gate.
            hit = service.submit(graphs[0], NUM_STAGES)
            assert hit.done()
            assert hit.result(timeout=1).extras["cache_hit"] is True
            # Coalescable onto the in-flight solve: also waved through.
            coalesced = service.submit(graphs[1], NUM_STAGES)
            release.set()
            assert coalesced.result(timeout=10).schedule.graph is graphs[1]
            stuck.result(timeout=10)
            assert service.stats().shed == 1
        finally:
            release.set()
            service.close()

    def test_coalesced_waiters_do_not_consume_admission_slots(self, graphs):
        """The gate bounds solver backlog, not waiters: a thundering
        herd coalescing onto one solve occupies one slot, so requests
        for *other* graphs are still admitted."""
        release = threading.Event()

        class Gated(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        service = ShardedSchedulingService(
            Gated(),
            num_shards=1,
            max_queue_depth=2,
            admission="shed",
            batch_window_s=0.0,
        )
        try:
            herd = [service.submit(graphs[0], NUM_STAGES) for _ in range(6)]
            assert service.backlog() == 1  # six waiters, one solve
            # A distinct graph still fits in the depth-2 budget...
            other = service.submit(graphs[1], NUM_STAGES)
            # ...and only genuine backlog beyond it is shed.
            with pytest.raises(ServiceOverloadError):
                service.submit(graphs[2], NUM_STAGES)
            release.set()
            for future in herd:
                assert (
                    future.result(timeout=10).schedule.graph is graphs[0]
                )
            assert other.result(timeout=10).schedule.graph is graphs[1]
        finally:
            release.set()
            service.close()

    def test_racing_submitters_cannot_overshoot_the_depth_bound(self, graphs):
        """Check-then-act regression: the gate holds in-transit
        reservations, so N concurrent submitters racing a depth-2 shard
        admit exactly 2 solves — never more."""
        release = threading.Event()

        class Gated(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        depth = 2
        service = ShardedSchedulingService(
            Gated(),
            num_shards=1,
            max_queue_depth=depth,
            admission="shed",
            batch_window_s=0.0,
        )
        outcomes = [None] * len(graphs)
        barrier = threading.Barrier(len(graphs))

        def racer(i):
            barrier.wait()
            try:
                outcomes[i] = service.submit(graphs[i], NUM_STAGES)
            except ServiceOverloadError:
                outcomes[i] = "shed"

        threads = [
            threading.Thread(target=racer, args=(i,))
            for i in range(len(graphs))
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
                assert not t.is_alive()
            # The solver never progressed, so every admission is still
            # backlog: the depth bound must hold exactly.
            admitted = [o for o in outcomes if o != "shed"]
            assert len(admitted) == depth, outcomes
            assert service.backlog() == depth
            assert service.stats().shed == len(graphs) - depth
            release.set()
            for future in admitted:
                future.result(timeout=10)
        finally:
            release.set()
            service.close()

    def test_default_degrade_fallback_is_list_scheduler(self, graphs):
        service = ShardedSchedulingService(
            FakeScheduler(), admission="degrade"
        )
        try:
            assert isinstance(service.fallback_scheduler, ListScheduler)
        finally:
            service.close()


class TestAsyncFacade:
    def test_asubmit_matches_sync_results(self, graphs):
        fake = FakeScheduler()
        direct = [fake.schedule(g, NUM_STAGES) for g in graphs]
        with ShardedSchedulingService(fake, num_shards=4) as service:

            async def drive():
                return await asyncio.gather(
                    *[service.asubmit(g, NUM_STAGES) for g in graphs]
                )

            results = asyncio.run(drive())
        for d, r, graph in zip(direct, results, graphs):
            assert r.schedule.assignment == d.schedule.assignment
            assert r.schedule.graph is graph

    def test_asubmit_applies_backpressure_without_stalling_loop(self, graphs):
        """64 concurrent awaits against depth-2 shards: the loop keeps
        ticking (a heartbeat task runs) while submits block in the
        executor."""
        fake = FakeScheduler(delay=0.002)
        beats = []
        with ShardedSchedulingService(
            fake,
            num_shards=2,
            max_queue_depth=2,
            admission="block",
            batch_window_s=0.0,
        ) as service:

            async def heartbeat():
                while True:
                    beats.append(time.perf_counter())
                    await asyncio.sleep(0.002)

            async def drive():
                beat = asyncio.ensure_future(heartbeat())
                try:
                    return await asyncio.gather(
                        *[
                            service.asubmit(graphs[i % len(graphs)], NUM_STAGES)
                            for i in range(32)
                        ]
                    )
                finally:
                    beat.cancel()

            results = asyncio.run(drive())
        assert len(results) == 32
        assert len(beats) >= 3  # the event loop was never blocked solid

    def test_single_service_asubmit(self, graphs):
        fake = FakeScheduler()
        with SchedulingService(fake) as service:

            async def drive():
                return await service.asubmit(graphs[0], NUM_STAGES)

            result = asyncio.run(drive())
        assert result.schedule.graph is graphs[0]


class TestListenersAndStats:
    def test_one_registration_sees_all_shards(self, graphs):
        seen = []
        with ShardedSchedulingService(FakeScheduler(), num_shards=4) as svc:
            svc.add_serve_listener(
                lambda graph, stages, result: seen.append(graph)
            )
            svc.schedule_batch(graphs, NUM_STAGES)
        assert Counter(map(id, seen)) == Counter(map(id, graphs))

    def test_remove_listener_tier_wide(self, graphs):
        seen = []
        listener = lambda graph, stages, result: seen.append(graph)  # noqa: E731
        with ShardedSchedulingService(FakeScheduler(), num_shards=2) as svc:
            svc.add_serve_listener(listener)
            svc.schedule(graphs[0], NUM_STAGES)
            svc.remove_serve_listener(listener)
            svc.schedule(graphs[1], NUM_STAGES)
        assert len(seen) == 1

    def test_listener_errors_aggregate_across_shards(self, graphs):
        def broken(graph, stages, result):
            raise RuntimeError("observer bug")

        with ShardedSchedulingService(FakeScheduler(), num_shards=4) as svc:
            svc.add_serve_listener(broken)
            svc.schedule_batch(graphs, NUM_STAGES)
            stats = svc.stats()
        assert stats.listener_errors == len(graphs)

    def test_aggregate_stats_sum_shards(self, graphs):
        with ShardedSchedulingService(FakeScheduler(), num_shards=4) as svc:
            svc.schedule_batch(graphs, NUM_STAGES)
            svc.schedule(graphs[0], NUM_STAGES)  # one warm hit
            stats = svc.stats()
        assert stats.num_shards == 4
        assert stats.requests == len(graphs) + 1
        assert stats.requests == sum(s.requests for s in stats.per_shard)
        assert stats.cache_hits == 1
        assert stats.scheduled_graphs == len(graphs)
        assert stats.hit_rate == pytest.approx(1 / (len(graphs) + 1))
        assert stats.latency_p50_s <= stats.latency_p99_s
        assert stats.admission == "block"
        assert stats.blocked == stats.shed == stats.degraded == 0


class TestLifecycle:
    def test_close_fails_pending_and_is_idempotent(self, graphs):
        release = threading.Event()

        class Stuck(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        service = ShardedSchedulingService(
            Stuck(), num_shards=2, batch_window_s=0.0
        )
        futures = [service.submit(g, NUM_STAGES) for g in graphs[:6]]
        try:
            service.close(timeout=0.2)
            service.close(timeout=0.2)  # idempotent
            for future in futures:
                assert future.done()
                exc = future.exception(timeout=1)
                if exc is not None:
                    assert isinstance(exc, ServiceError)
            with pytest.raises(ServiceError):
                service.submit(graphs[0], NUM_STAGES)
        finally:
            release.set()

    def test_close_timeout_is_a_shared_deadline_not_per_shard(self, graphs):
        """4 stuck shards must not stretch close(timeout=t) to ~4t."""
        release = threading.Event()

        class Stuck(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=30)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=30)
                return super().schedule(graph, num_stages)

        service = ShardedSchedulingService(
            Stuck(), num_shards=4, batch_window_s=0.0
        )
        futures = [service.submit(g, NUM_STAGES) for g in graphs]
        try:
            start = time.perf_counter()
            service.close(timeout=0.5)
            elapsed = time.perf_counter() - start
            # Sequential per-shard budgets would take >= ~2.0s here.
            assert elapsed < 1.5, elapsed
            for future in futures:
                assert future.done()
        finally:
            release.set()

    def test_close_wakes_blocked_submitters(self, graphs):
        release = threading.Event()

        class Stuck(FakeScheduler):
            def schedule_batch(self, graphs, stage_counts):
                release.wait(timeout=10)
                return super().schedule_batch(graphs, stage_counts)

            def schedule(self, graph, num_stages):
                release.wait(timeout=10)
                return super().schedule(graph, num_stages)

        service = ShardedSchedulingService(
            Stuck(),
            num_shards=1,
            max_queue_depth=1,
            admission="block",
            batch_window_s=0.0,
        )
        service.submit(graphs[0], NUM_STAGES)  # saturate the shard
        outcome = []

        def blocked_submit():
            try:
                outcome.append(service.submit(graphs[1], NUM_STAGES))
            except ServiceError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        time.sleep(0.05)  # let it block on admission
        try:
            service.close(timeout=0.2)
            thread.join(timeout=5)
            assert not thread.is_alive()  # close() woke the submitter
            assert len(outcome) == 1
            if isinstance(outcome[0], ServiceError):
                assert "closed" in str(outcome[0])
        finally:
            release.set()
            thread.join(timeout=5)


class TestSwap:
    def test_swap_reaches_every_shard(self, graphs):
        v1, v2 = FakeScheduler(), FakeScheduler()
        v2.method_name = "fake_v2"
        with ShardedSchedulingService(v1, num_shards=4) as service:
            service.schedule_batch(graphs, NUM_STAGES)
            old_key = service.swap_scheduler(v2)
            assert all(s.scheduler is v2 for s in service.shards)
            assert service.scheduler is v2
            evicted = service.invalidate_options(old_key)
            assert evicted == len(graphs)  # every shard's stale entries
            result = service.schedule(graphs[0], NUM_STAGES)
            assert result.extras["cache_hit"] is False  # re-solved by v2
            assert result.extras["service"] == "fake_v2"
            assert service.stats().swaps == 1

    def test_swap_via_factory(self, graphs):
        with ShardedSchedulingService(
            scheduler_factory=FakeScheduler, num_shards=3
        ) as service:
            made = []

            def factory():
                made.append(FakeScheduler())
                return made[-1]

            service.swap_scheduler(scheduler_factory=factory)
            assert len(made) == 3
            assert {id(s.scheduler) for s in service.shards} == {
                id(m) for m in made
            }

    def test_swap_requires_exactly_one_source(self, graphs):
        with ShardedSchedulingService(FakeScheduler(), num_shards=2) as svc:
            with pytest.raises(ServiceError):
                svc.swap_scheduler()
            with pytest.raises(ServiceError):
                svc.swap_scheduler(
                    FakeScheduler(), scheduler_factory=FakeScheduler
                )


class TestFlowIntegration:
    def test_serve_methods_sharded_equivalence(self, graphs):
        from repro.flow.compare import (
            schedule_many,
            serve_methods,
            served_method_stats,
        )

        methods = {"fake": FakeScheduler}
        reference = schedule_many(
            FakeScheduler(), graphs, [NUM_STAGES] * len(graphs)
        )
        served = serve_methods(methods, num_shards=3)
        results = schedule_many(
            served["fake"](), graphs, [NUM_STAGES] * len(graphs)
        )
        for ref, out in zip(reference, results):
            assert ref.schedule.assignment == out.schedule.assignment
        stats = served_method_stats(served)["fake"]
        assert stats.requests >= len(graphs)
        assert stats.method == "fake"

    def test_build_fleet_sharded_matches_single(self):
        from repro.cluster.fleet import ReplicaSpec, build_fleet

        graph = sample_synthetic_dag(num_nodes=12, degree=3, seed=1)
        models = {"m0": graph}
        specs = [ReplicaSpec("r0", 2), ReplicaSpec("r1", 2)]
        single = build_fleet(specs, models, scheduler=FakeScheduler())
        sharded = build_fleet(
            specs, models, scheduler=FakeScheduler(), num_shards=4
        )
        for r_single, r_sharded in zip(single.replicas, sharded.replicas):
            d_single = r_single.deployment("m0")
            d_sharded = r_sharded.deployment("m0")
            assert d_single.profiles == d_sharded.profiles
            assert d_single.period_seconds == d_sharded.period_seconds
        # Fingerprint routing preserves cross-replica schedule reuse.
        assert sharded.build_stats.cache_hits == single.build_stats.cache_hits
        assert sharded.build_stats.hit_rate == pytest.approx(0.5)
