"""Tests for the persistent tiered schedule store.

Covers the disk tier's round-trip/replay/rotation behavior, the tiered
read-through/write-through stack, durable (tombstoned) invalidation —
and every disk-tier load failure mode the issue enumerates: truncated
segment, flipped CRC byte, wrong-version frame, missing index snapshot,
and an index snapshot pointing past a segment's EOF.  Each must recover
to a consistent store (counted, never a crash) and never serve a
corrupt or stale-provenance schedule.
"""

import json
import struct
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import (
    CachedSchedule,
    DiskScheduleStore,
    ScheduleCache,
    TieredScheduleStore,
)
from repro.service.wire import MAGIC, WIRE_VERSION


def _payload(tag: int, opts: str = "opts") -> CachedSchedule:
    return CachedSchedule(
        assignment={"a": 0, "b": tag % 3},
        num_stages=3,
        method="fake",
        objective=float(tag),
        status="ok",
        solve_time=0.001,
        provenance={"options_fingerprint": opts, "weights_epoch": tag},
    )


def _key(tag: int, opts: str = "opts"):
    return ScheduleCache.make_key(f"fp{tag}", 3, opts)


def _segment_paths(directory) -> "list[Path]":
    return sorted(Path(directory, "segments").glob("seg-*.rsps"))


def _fill(store: DiskScheduleStore, count: int, opts: str = "opts") -> None:
    ns = store.namespace()
    for tag in range(count):
        ns.put(_key(tag, opts), _payload(tag, opts))


class TestDiskStoreBasics:
    def test_round_trip_within_one_process(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            ns = store.namespace()
            ns.put(_key(1), _payload(1))
            assert _key(1) in ns
            got = ns.get(_key(1))
            assert got.assignment == {"a": 0, "b": 1}
            assert got.provenance["weights_epoch"] == 1
            assert ns.get(_key(2)) is None
            stats = store.stats()
            assert stats.hits == 1 and stats.misses == 1

    def test_entries_survive_reopen(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            _fill(store, 5)
        with DiskScheduleStore(tmp_path) as store:
            assert len(store) == 5
            assert store.namespace().get(_key(3)).objective == 3.0

    def test_namespaces_are_isolated(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            store.namespace("shard-0").put(_key(1), _payload(1))
            store.namespace("shard-1").put(_key(1), _payload(2))
            assert store.namespace("shard-0").get(_key(1)).objective == 1.0
            assert store.namespace("shard-1").get(_key(1)).objective == 2.0
            assert store.namespace("shard-2").get(_key(1)) is None
            assert store.namespaces() == ["shard-0", "shard-1"]
            # Invalidation in one namespace leaves the twin untouched.
            assert store.namespace("shard-0").invalidate_options("opts") == 1
            assert store.namespace("shard-1").get(_key(1)) is not None

    def test_put_overwrites_latest_wins(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            ns = store.namespace()
            ns.put(_key(1), _payload(1))
            ns.put(_key(1), _payload(9))
            assert ns.get(_key(1)).objective == 9.0
        with DiskScheduleStore(tmp_path) as store:
            assert store.namespace().get(_key(1)).objective == 9.0
            assert len(store) == 1

    def test_segment_rotation(self, tmp_path):
        with DiskScheduleStore(tmp_path, max_segment_bytes=1024) as store:
            _fill(store, 30)
            assert store.stats().segments > 1
            assert len(store) == 30
        with DiskScheduleStore(tmp_path, max_segment_bytes=1024) as store:
            assert len(store) == 30

    def test_closed_store_rejects_use(self, tmp_path):
        store = DiskScheduleStore(tmp_path)
        store.close()
        store.close()  # idempotent
        with pytest.raises(ServiceError):
            store.namespace().put(_key(1), _payload(1))
        with pytest.raises(ServiceError):
            store.namespace().get(_key(1))
        with pytest.raises(ServiceError):
            store.snapshot()

    def test_keys_in_append_order(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            _fill(store, 4)
            assert store.namespace().keys() == [_key(t) for t in range(4)]

    def test_bad_construction_args(self, tmp_path):
        with pytest.raises(ServiceError):
            DiskScheduleStore(tmp_path, max_segment_bytes=10)
        with pytest.raises(ServiceError):
            DiskScheduleStore(tmp_path, snapshot_every=-1)
        with DiskScheduleStore(tmp_path) as store:
            with pytest.raises(ServiceError):
                store.namespace("")


class TestDurableInvalidation:
    def test_tombstone_survives_reopen(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            _fill(store, 3, "old")
            _fill(store, 2, "new")
            assert store.namespace().invalidate_options("old") == 3
            assert len(store) == 2
        with DiskScheduleStore(tmp_path) as store:
            assert len(store) == 2
            assert store.namespace().get(_key(0, "old")) is None
            assert store.namespace().get(_key(0, "new")) is not None

    def test_tombstone_survives_reopen_without_snapshot(self, tmp_path):
        # Durability must come from the appended tombstone frame itself,
        # not from the index snapshot: nuke the snapshot and replay.
        with DiskScheduleStore(tmp_path, snapshot_every=0) as store:
            _fill(store, 3, "old")
            store.namespace().invalidate_options("old")
        (tmp_path / "index.json").unlink()
        with DiskScheduleStore(tmp_path) as store:
            assert len(store) == 0
            assert store.namespace().get(_key(0, "old")) is None

    def test_republished_entries_outlive_earlier_tombstone(self, tmp_path):
        # Order matters: a tombstone retires only entries written before
        # it, so re-publishing under the same options key (champion
        # rollback) works — on disk and across replay.
        with DiskScheduleStore(tmp_path, snapshot_every=0) as store:
            _fill(store, 2, "old")
            store.namespace().invalidate_options("old")
            store.namespace().put(_key(0, "old"), _payload(42, "old"))
        (tmp_path / "index.json").unlink()
        with DiskScheduleStore(tmp_path) as store:
            assert len(store) == 1
            assert store.namespace().get(_key(0, "old")).objective == 42.0

    def test_invalidating_absent_options_still_appends_tombstone(self, tmp_path):
        with DiskScheduleStore(tmp_path) as store:
            assert store.namespace().invalidate_options("ghost") == 0
            assert store.stats().tombstones == 1


class TestFaultInjection:
    """The five mandated load-failure modes, plus read-time damage."""

    def _store_with_entries(self, tmp_path, count=6):
        store = DiskScheduleStore(tmp_path, snapshot_every=0)
        _fill(store, count)
        store.close()
        return _segment_paths(tmp_path)[0]

    def test_truncated_segment(self, tmp_path):
        segment = self._store_with_entries(tmp_path)
        (tmp_path / "index.json").unlink()
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) - 11])  # torn tail write
        with DiskScheduleStore(tmp_path) as store:
            stats = store.stats()
            assert stats.entries == 5
            assert stats.corrupt_frames_skipped == 1
            assert stats.index_rebuilds == 1
            assert store.namespace().get(_key(5)) is None  # never served
            for tag in range(5):
                assert store.namespace().get(_key(tag)).objective == float(tag)

    def test_flipped_crc(self, tmp_path):
        segment = self._store_with_entries(tmp_path)
        (tmp_path / "index.json").unlink()
        data = bytearray(segment.read_bytes())
        frame_len = len(data) // 6
        # Corrupt the payload of the third frame: its CRC check fails.
        data[2 * frame_len + frame_len // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        with DiskScheduleStore(tmp_path) as store:
            stats = store.stats()
            assert stats.entries == 5
            assert stats.corrupt_frames_skipped >= 1
            assert stats.bytes_skipped > 0
            assert store.namespace().get(_key(2)) is None
            # Frames *after* the damage were resynchronized, not lost.
            for tag in (3, 4, 5):
                assert store.namespace().get(_key(tag)) is not None

    def test_wrong_version_frame(self, tmp_path):
        segment = self._store_with_entries(tmp_path)
        (tmp_path / "index.json").unlink()
        data = bytearray(segment.read_bytes())
        frame_len = len(data) // 6
        # Frame layout: MAGIC(4) | version(1) | ... — stamp a version
        # this codec does not speak onto the fourth frame.
        assert data[3 * frame_len : 3 * frame_len + 4] == MAGIC
        data[3 * frame_len + 4] = WIRE_VERSION + 1
        segment.write_bytes(bytes(data))
        with DiskScheduleStore(tmp_path) as store:
            stats = store.stats()
            assert stats.entries == 5
            assert stats.corrupt_frames_skipped >= 1
            assert store.namespace().get(_key(3)) is None
            for tag in (0, 1, 2, 4, 5):
                assert store.namespace().get(_key(tag)) is not None

    def test_missing_index(self, tmp_path):
        self._store_with_entries(tmp_path)
        (tmp_path / "index.json").unlink()
        with DiskScheduleStore(tmp_path) as store:
            stats = store.stats()
            assert stats.entries == 6
            assert stats.index_rebuilds == 1
            assert stats.corrupt_frames_skipped == 0
            for tag in range(6):
                assert store.namespace().get(_key(tag)).objective == float(tag)

    def test_index_pointing_past_eof(self, tmp_path):
        segment = self._store_with_entries(tmp_path)
        index_path = tmp_path / "index.json"
        snapshot = json.loads(index_path.read_text())
        # Lie: claim the segment holds (and entries live in) bytes far
        # past its actual EOF — e.g. the segment was truncated by a
        # crash after the snapshot was written.
        size = segment.stat().st_size
        snapshot["segments"][segment.name] = size + 4096
        snapshot["entries"][-1][5] = size + 1024  # offset past EOF
        index_path.write_text(json.dumps(snapshot))
        with DiskScheduleStore(tmp_path) as store:
            stats = store.stats()
            # The lying snapshot is discarded wholesale; the segments
            # (ground truth) are rescanned and every entry recovered.
            assert stats.index_rebuilds == 1
            assert stats.entries == 6
            for tag in range(6):
                assert store.namespace().get(_key(tag)).objective == float(tag)

    def test_corrupt_index_json(self, tmp_path):
        self._store_with_entries(tmp_path)
        (tmp_path / "index.json").write_text("{not json")
        with DiskScheduleStore(tmp_path) as store:
            assert store.stats().index_rebuilds == 1
            assert store.stats().entries == 6

    def test_read_time_damage_degrades_to_miss(self, tmp_path):
        # Damage landing *after* open (index already points at the
        # frame): the read fails its CRC, the entry is dropped and
        # counted, and the caller sees a miss — never a corrupt result.
        store = DiskScheduleStore(tmp_path, snapshot_every=0)
        _fill(store, 2)
        segment = _segment_paths(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        data[len(data) // 4] ^= 0xFF  # corrupt the first frame in place
        segment.write_bytes(bytes(data))
        assert store.namespace().get(_key(0)) is None
        stats = store.stats()
        assert stats.read_errors == 1
        assert stats.entries == 1
        assert store.namespace().get(_key(1)) is not None
        store.close()

    def test_tombstones_behind_corruption_still_apply(self, tmp_path):
        # A tombstone written after a later-damaged frame must still be
        # replayed (resync), or a retired champion's entries would
        # resurrect — the exact failure the issue forbids.
        store = DiskScheduleStore(tmp_path, snapshot_every=0)
        _fill(store, 2, "old")
        boundary = store.stats()  # entries appended so far
        assert boundary.entries == 2
        store.namespace().invalidate_options("old")
        store.close()
        (tmp_path / "index.json").unlink()
        segment = _segment_paths(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        data[10] ^= 0xFF  # corrupt the very first entry frame
        segment.write_bytes(bytes(data))
        with DiskScheduleStore(tmp_path) as reopened:
            # Entry 0's frame is damage-skipped; entry 1 resyncs back in;
            # the trailing tombstone then retires it.  Nothing survives.
            assert len(reopened) == 0
            assert reopened.namespace().get(_key(0, "old")) is None
            assert reopened.namespace().get(_key(1, "old")) is None
            assert reopened.stats().tombstones == 1


class TestSnapshot:
    def test_snapshot_bounds_replay(self, tmp_path):
        with DiskScheduleStore(tmp_path, snapshot_every=0) as store:
            _fill(store, 4)
            store.snapshot()
            _fill(store, 2, "late")
        # close() snapshots too; drop that to prove the mid-run snapshot
        # plus tail replay reconstructs everything.
        with DiskScheduleStore(tmp_path) as store:
            assert len(store) == 6

    def test_interrupted_snapshot_leaves_previous_intact(self, tmp_path):
        with DiskScheduleStore(tmp_path, snapshot_every=0) as store:
            _fill(store, 3)
            store.snapshot()
        # Simulate a crash mid-rewrite: a tmp file exists, index intact.
        (tmp_path / "index.json.tmp").write_text("garbage")
        with DiskScheduleStore(tmp_path) as store:
            assert store.stats().index_rebuilds == 0
            assert len(store) == 3

    def test_auto_snapshot_after_threshold(self, tmp_path):
        store = DiskScheduleStore(tmp_path, snapshot_every=3)
        _fill(store, 3)
        assert (tmp_path / "index.json").exists()
        store._append_handle.close()  # leak-proof: bypass close's snapshot
        store._closed = True


class TestTieredStore:
    def test_read_through_promotes_disk_hits(self, tmp_path):
        with DiskScheduleStore(tmp_path) as disk:
            disk.namespace().put(_key(1), _payload(1))
            tiered = TieredScheduleStore(
                disk=disk.namespace(), memory_capacity=4
            )
            assert tiered.get(_key(1)).objective == 1.0
            stats = tiered.stats()
            assert stats.disk_hits == 1 and stats.hits == 1
            assert len(tiered.memory) == 1  # promoted
            tiered.get(_key(1))
            assert tiered.stats().disk_hits == 1  # memory served it

    def test_write_through_and_contains(self, tmp_path):
        with DiskScheduleStore(tmp_path) as disk:
            tiered = TieredScheduleStore(
                disk=disk.namespace(), memory_capacity=1
            )
            tiered.put(_key(1), _payload(1))
            tiered.put(_key(2), _payload(2))  # key 1 LRU-evicted
            assert len(tiered.memory) == 1
            assert _key(1) in tiered  # still answerable from disk
            assert tiered.get(_key(1)) is not None
            assert len(tiered) == 2

    def test_invalidation_reaches_both_tiers(self, tmp_path):
        with DiskScheduleStore(tmp_path) as disk:
            tiered = TieredScheduleStore(
                disk=disk.namespace(), memory_capacity=4
            )
            tiered.put(_key(1, "old"), _payload(1, "old"))
            tiered.put(_key(2, "new"), _payload(2, "new"))
            assert tiered.invalidate_options("old") == 1
            assert tiered.get(_key(1, "old")) is None
            assert len(tiered.memory) == 1
            assert disk.stats().tombstones == 1

    def test_memory_only_stack_is_transparent(self):
        tiered = TieredScheduleStore(memory_capacity=2)
        tiered.put(_key(1), _payload(1))
        assert tiered.get(_key(1)) is not None
        assert tiered.restore() == 0
        with pytest.raises(ServiceError):
            tiered.snapshot()

    def test_restore_preloads_most_recent(self, tmp_path):
        with DiskScheduleStore(tmp_path) as disk:
            for tag in range(6):
                disk.namespace().put(_key(tag), _payload(tag))
            tiered = TieredScheduleStore(
                disk=disk.namespace(), memory_capacity=3
            )
            assert tiered.restore() == 3
            # The 3 most recently appended entries are the ones in memory.
            assert {key[0] for key in tiered.memory._entries} == {
                "fp3",
                "fp4",
                "fp5",
            }

    def test_stats_are_cachestats_shaped(self, tmp_path):
        with DiskScheduleStore(tmp_path) as disk:
            tiered = TieredScheduleStore(
                disk=disk.namespace(), memory_capacity=4
            )
            tiered.put(_key(1), _payload(1))
            tiered.get(_key(1))
            tiered.get(_key(2))
            stats = tiered.stats()
            # The consumers written against CacheStats read these:
            assert stats.hits == 1
            assert stats.misses == 1
            assert stats.hit_rate == 0.5
            assert stats.size == 1
            assert stats.capacity == 4
            assert stats.evictions == 0
