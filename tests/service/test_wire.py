"""Tests for the versioned wire format (:mod:`repro.service.wire`).

Round trips must preserve graph identity *exactly* (content fingerprint
and both adjacency orderings), and every way a payload can be bad —
truncation, foreign bytes, version skew, checksum corruption, the wrong
frame kind, unsupported attr types — must raise a
:class:`~repro.errors.WireFormatError` that names the violation.
"""

import struct

import pytest

from repro.errors import WireFormatError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import graph_fingerprint
from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.heuristics import ListScheduler
from repro.service import wire


@pytest.fixture
def graphs():
    return [
        sample_synthetic_dag(num_nodes=10, degree=3, seed=seed)
        for seed in range(4)
    ]


def exotic_graph() -> ComputationalGraph:
    """A graph whose attrs span every type the fingerprint distinguishes."""
    g = ComputationalGraph(name="exotic")
    g.add_op(
        "a",
        op_type="input",
        output_bytes=10,
        shape=(1, 3, 224, 224),          # tuple
        tags={"vision", "input"},        # set
        frozen=frozenset({1, 2}),        # frozenset
        quant={"mode": "int8", "axes": [0, 1]},  # nested dict/list
        digest=b"\x00\xffRSPW",          # bytes
        ratio=0.25,
        count=3,
        flag=True,
        note=None,
    )
    g.add_op("b", op_type="conv2d", param_bytes=64, output_bytes=20,
             macs=100, inputs=["a"])
    g.add_op("c", op_type="add", output_bytes=20, inputs=["a", "b"])
    return g


class TestGraphRoundTrip:
    def test_fingerprint_and_structure_preserved(self, graphs):
        for graph in graphs:
            decoded = wire.decode_graph(wire.encode_graph(graph))
            assert graph_fingerprint(decoded) == graph_fingerprint(graph)
            assert decoded.node_names == graph.node_names
            for name in graph.node_names:
                assert decoded.parents(name) == graph.parents(name)
                assert decoded.children(name) == graph.children(name)

    def test_exotic_attr_types_survive_exactly(self):
        graph = exotic_graph()
        decoded = wire.decode_graph(wire.encode_graph(graph))
        assert graph_fingerprint(decoded) == graph_fingerprint(graph)
        attrs = decoded.node("a").attrs
        original = graph.node("a").attrs
        for key, value in original.items():
            assert attrs[key] == value
            assert type(attrs[key]) is type(value)

    def test_decoded_graph_schedules_identically(self, graphs):
        # The replayed adjacency orderings must reproduce heuristic
        # tie-breaking, not just the fingerprint.
        scheduler = ListScheduler()
        for graph in graphs:
            decoded = wire.decode_graph(wire.encode_graph(graph))
            assert (
                scheduler.schedule(decoded, 4).schedule.assignment
                == scheduler.schedule(graph, 4).schedule.assignment
            )

    def test_unsupported_attr_type_is_rejected_at_encode(self):
        g = ComputationalGraph(name="bad")
        g.add_op("a", op_type="input", output_bytes=1, payload=object())
        with pytest.raises(WireFormatError, match="unsupported value type"):
            wire.encode_graph(g)


class TestFraming:
    def test_truncated_header(self, graphs):
        data = wire.encode_graph(graphs[0])
        with pytest.raises(WireFormatError, match="truncated frame"):
            wire.decode_graph(data[:8])

    def test_truncated_payload(self, graphs):
        data = wire.encode_graph(graphs[0])
        with pytest.raises(WireFormatError, match="truncated payload"):
            wire.decode_graph(data[:-3])

    def test_bad_magic(self, graphs):
        data = wire.encode_graph(graphs[0])
        with pytest.raises(WireFormatError, match="bad magic"):
            wire.decode_graph(b"NOPE" + data[4:])

    def test_wrong_version(self, graphs):
        data = bytearray(wire.encode_graph(graphs[0]))
        data[4] = wire.WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="unsupported wire version"):
            wire.decode_graph(bytes(data))

    def test_checksum_corruption(self, graphs):
        data = bytearray(wire.encode_graph(graphs[0]))
        data[-1] ^= 0xFF
        with pytest.raises(WireFormatError, match="checksum mismatch"):
            wire.decode_graph(bytes(data))

    def test_wrong_kind(self, graphs):
        data = wire.encode_graph(graphs[0])
        with pytest.raises(WireFormatError, match="expected decode-request"):
            wire.decode_decode_request(data)

    def test_non_bytes_input(self):
        with pytest.raises(WireFormatError, match="must be bytes"):
            wire.decode_graph("not bytes")

    def test_header_layout_is_stable(self):
        # The frame layout is the cross-process ABI; catching accidental
        # struct changes here beats debugging version skew in workers.
        assert wire.MAGIC == b"RSPW"
        assert wire._HEADER.size == struct.calcsize("<4sBBQI")


class TestDecodeRequestResponse:
    def test_request_round_trip_carries_options_key(self, graphs):
        data = wire.encode_decode_request(graphs, options_key="abc123")
        request = wire.decode_decode_request(data)
        assert request.options_key == "abc123"
        assert request.fingerprints == [
            graph_fingerprint(g) for g in graphs
        ]

    def test_empty_request_is_rejected(self):
        with pytest.raises(WireFormatError, match="at least one graph"):
            wire.encode_decode_request([])

    def test_response_round_trip(self):
        data = wire.encode_decode_response(
            [["a", "b"], ["c"]], [-1.25, -0.5]
        )
        response = wire.decode_decode_response(data)
        assert response.orders == [["a", "b"], ["c"]]
        assert response.log_probs == [-1.25, -0.5]

    def test_inconsistent_response_is_rejected(self):
        with pytest.raises(WireFormatError, match="inconsistent"):
            wire.encode_decode_response([["a"]], [-1.0, -2.0])


class TestSchedule:
    def test_round_trip_binds_to_matching_graph(self, graphs):
        graph = graphs[0]
        result = ListScheduler().schedule(graph, 4)
        bound = wire.decode_schedule(
            wire.encode_schedule(result.schedule)
        ).bind(graph)
        assert bound.assignment == result.schedule.assignment
        assert bound.graph is graph

    def test_bind_refuses_mismatched_graph(self, graphs):
        result = ListScheduler().schedule(graphs[0], 4)
        decoded = wire.decode_schedule(wire.encode_schedule(result.schedule))
        with pytest.raises(WireFormatError, match="bound to"):
            decoded.bind(graphs[1])

    def test_out_of_range_stage_is_rejected(self, graphs):
        result = ListScheduler().schedule(graphs[0], 4)
        data = bytearray(wire.encode_schedule(result.schedule))
        # Corrupt the JSON payload, then re-seal length + crc so only
        # the semantic validation can catch it.
        import json
        import zlib

        payload = json.loads(bytes(data[wire._HEADER.size:]))
        payload["stages"][0] = payload["num_stages"] + 7
        body = json.dumps(payload, separators=(",", ":")).encode()
        frame = wire._HEADER.pack(
            wire.MAGIC, wire.WIRE_VERSION, wire.KIND_SCHEDULE,
            len(body), zlib.crc32(body),
        ) + body
        with pytest.raises(WireFormatError, match="outside"):
            wire.decode_schedule(frame)


class TestOptions:
    def test_round_trip_preserves_types_and_order(self):
        options = {
            "method": "respect",
            "budget_slack": 1.5,
            "enforce_siblings": True,
            "stages": (2, 4),
            "extra": {"nested": [1, 2.0, None]},
        }
        decoded = wire.decode_options(wire.encode_options(options))
        assert decoded == options
        assert list(decoded) == list(options)
        assert type(decoded["stages"]) is tuple

    def test_non_dict_is_rejected(self):
        with pytest.raises(WireFormatError, match="must be a dict"):
            wire.encode_options(["not", "a", "dict"])
