"""Tests for the latency teacher and the adaptation loop."""

import time

import numpy as np
import pytest

from repro.embedding.features import EmbeddingConfig
from repro.errors import ServiceError
from repro.graphs.families import AttentionAugmentedFamily, ComputeUniformFamily
from repro.online import (
    AdaptationConfig,
    AdaptationLoop,
    DriftDetector,
    ExperienceBuffer,
    default_reward_model,
    latency_teacher_order,
    teacher_example,
)
from repro.rl.respect import RespectScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService


@pytest.fixture(scope="module")
def reward_model():
    return default_reward_model()


@pytest.fixture(scope="module")
def hot_family():
    return AttentionAugmentedFamily(num_nodes=18, degree=3, seed=31)


class TestLatencyTeacher:
    def test_never_worse_than_topological_order(self, reward_model, hot_family):
        rng = np.random.default_rng(0)
        for graph in hot_family.sample_batch(4):
            baseline = reward_model.order_reward(
                graph, graph.topological_order(), 4
            )
            order, reward = latency_teacher_order(
                graph, 4, reward_model, iters=200, rng=rng
            )
            assert reward >= baseline - 1e-12
            assert sorted(order) == sorted(graph.node_names)

    def test_improves_hot_colocation_substantially(
        self, reward_model, hot_family
    ):
        """From a worst-case order (all heads packed together) the
        teacher recovers near-balanced schedules."""
        rng = np.random.default_rng(1)
        rewards = []
        colocated_rewards = []
        for graph in hot_family.sample_batch(6):
            order = graph.topological_order()
            heads = [n for n in order if n.startswith("mhsa_")]
            colocated = [n for n in order if not n.startswith("mhsa_")] + heads
            colocated_rewards.append(
                reward_model.order_reward(graph, colocated, 4)
            )
            _, reward = latency_teacher_order(
                graph, 4, reward_model, iters=300, rng=rng
            )
            rewards.append(reward)
        assert np.mean(rewards) > np.mean(colocated_rewards) + 0.2
        assert np.mean(rewards) > 0.85

    def test_deterministic_under_rng(self, reward_model, hot_family):
        graph = hot_family.sample()
        first = latency_teacher_order(
            graph, 4, reward_model, iters=150, rng=np.random.default_rng(3)
        )
        second = latency_teacher_order(
            graph, 4, reward_model, iters=150, rng=np.random.default_rng(3)
        )
        assert first == second

    def test_teacher_example_round_trip(self, reward_model, hot_family):
        graph = hot_family.sample()
        order, _ = latency_teacher_order(
            graph, 3, reward_model, iters=100, rng=np.random.default_rng(4)
        )
        example = teacher_example(graph, 3, order, EmbeddingConfig())
        assert example.gamma_names == list(order)
        assert example.queue.names_for(example.gamma_indices) == list(order)
        assert example.num_stages == 3


class TestAdaptationLoopWiring:
    def test_requires_respect_scheduler(self):
        with SchedulingService(ListScheduler()) as service:
            with pytest.raises(ServiceError):
                AdaptationLoop(service)

    def test_observation_plumbing(self, reward_model):
        family = ComputeUniformFamily(num_nodes=12, degree=2, seed=8)
        with SchedulingService(
            RespectScheduler(), batch_window_s=0.0
        ) as service:
            buffer = ExperienceBuffer(capacity=32, seed=0)
            loop = AdaptationLoop(
                service,
                buffer=buffer,
                detector=DriftDetector(reference_size=8, window_size=4),
                reward_model=reward_model,
            ).attach()
            for graph in family.sample_batch(6):
                service.schedule(graph, 3)
            assert buffer.stats().observed == 6
            assert loop.detector.observations == 6
            # Cache hits are serves too.
            repeat = family.sample()
            service.schedule(repeat, 3)
            service.schedule(repeat, 3)
            assert buffer.stats().observed == 8
            loop.detach()
            service.schedule(family.sample(), 3)
            assert buffer.stats().observed == 8

    def test_insufficient_data_reports_and_rearms(self, reward_model):
        family = ComputeUniformFamily(num_nodes=12, degree=2, seed=9)
        with SchedulingService(
            RespectScheduler(), batch_window_s=0.0
        ) as service:
            detector = DriftDetector(reference_size=8, window_size=4)
            loop = AdaptationLoop(
                service,
                buffer=ExperienceBuffer(capacity=32, recent_capacity=4, seed=0),
                detector=detector,
                config=AdaptationConfig(min_graphs=50, seed=0),
                reward_model=reward_model,
            ).attach()
            hot = AttentionAugmentedFamily(num_nodes=12, degree=2, seed=10)
            for graph in family.sample_batch(10):
                service.schedule(graph, 3)
            while loop.pending_event is None:
                service.schedule(hot.sample(), 3)
            report = loop.run_pending()
            assert report.status == "insufficient_data"
            assert report.evaluation is None
            assert detector.armed
            assert loop.run_pending() is None  # nothing pending anymore

    def test_run_pending_without_event_is_noop(self, reward_model):
        with SchedulingService(
            RespectScheduler(), batch_window_s=0.0
        ) as service:
            loop = AdaptationLoop(service, reward_model=reward_model)
            assert loop.run_pending() is None


class TestAdaptationEndToEnd:
    def test_synchronous_adapt_promotes_and_swaps(self, reward_model, tmp_path):
        pre = ComputeUniformFamily(num_nodes=20, degree=3, seed=11)
        post = AttentionAugmentedFamily(num_nodes=20, degree=3, seed=22)
        champion = RespectScheduler()
        with SchedulingService(champion, batch_window_s=0.0) as service:
            loop = AdaptationLoop(
                service,
                buffer=ExperienceBuffer(capacity=128, seed=0),
                detector=DriftDetector(
                    reference_size=16, window_size=10, threshold=1.5
                ),
                config=AdaptationConfig(
                    max_adaptation_graphs=24,
                    fresh_graphs=16,
                    teacher_search_iters=300,
                    imitation_steps=220,
                    reinforce_steps=5,
                    checkpoint_dir=tmp_path,
                    seed=0,
                ),
                reward_model=reward_model,
                graph_source=lambda count: post.sample_batch(count),
            ).attach()
            for graph in pre.sample_batch(20):
                service.schedule(graph, 4)
            while loop.pending_event is None:
                service.schedule(post.sample(), 4)
            for _ in range(12):  # drifted window accumulates
                service.schedule(post.sample(), 4)
            report = loop.run_pending()
            assert report.status == "promoted"
            assert report.promotion is not None
            assert service.scheduler is not champion
            assert service.stats().swaps == 1
            assert (tmp_path / "respect_online.npz").exists()
            evaluation = report.evaluation
            assert (
                evaluation.challenger_mean
                > evaluation.champion_mean
            )
            # Post-swap serves come from the promoted challenger.
            probe = post.sample()
            served = service.schedule(probe, 4)
            direct = service.scheduler.schedule(probe, 4)
            assert served.schedule.assignment == direct.schedule.assignment
            assert loop.reports == [report]

    def test_background_loop_survives_adaptation_failure(self, reward_model):
        """A crashing adaptation must not kill the daemon silently."""
        from repro.online.drift import DriftEvent

        with SchedulingService(
            RespectScheduler(), batch_window_s=0.0
        ) as service:
            loop = AdaptationLoop(service, reward_model=reward_model)
            boom = RuntimeError("disk full")

            def failing_adapt(event):
                raise boom

            loop._adapt = failing_adapt
            event = DriftEvent(
                at_observation=5,
                statistic=2.0,
                score=0.5,
                reference_mean_score=0.1,
                novelty_rate=1.0,
                window_mean_nodes=20.0,
                op_divergence=0.2,
            )
            loop.start()
            try:
                with loop._lock:
                    loop._pending = event
                    loop._wakeup.notify_all()
                deadline = time.time() + 10.0
                while not loop.errors and time.time() < deadline:
                    time.sleep(0.01)
                assert loop.errors == [boom]
                assert loop._thread.is_alive()
                assert loop.detector.armed  # re-armed for a retry
            finally:
                loop.stop()

    def test_background_loop_adapts(self, reward_model):
        pre = ComputeUniformFamily(num_nodes=18, degree=3, seed=51)
        post = AttentionAugmentedFamily(num_nodes=18, degree=3, seed=52)
        champion = RespectScheduler()
        with SchedulingService(champion, batch_window_s=0.0) as service:
            loop = AdaptationLoop(
                service,
                buffer=ExperienceBuffer(capacity=128, seed=0),
                detector=DriftDetector(
                    reference_size=12, window_size=8, threshold=1.5
                ),
                config=AdaptationConfig(
                    max_adaptation_graphs=20,
                    fresh_graphs=12,
                    teacher_search_iters=200,
                    imitation_steps=150,
                    reinforce_steps=0,
                    seed=0,
                ),
                reward_model=reward_model,
                graph_source=lambda count: post.sample_batch(count),
            ).start()
            try:
                for graph in pre.sample_batch(16):
                    service.schedule(graph, 4)
                deadline = time.time() + 120.0
                while not loop.reports and time.time() < deadline:
                    service.schedule(post.sample(), 4)
                assert loop.reports, "background adaptation never ran"
            finally:
                loop.stop()
            assert loop.reports[0].status in ("promoted", "rejected")
