"""Acceptance — the end-to-end drift experiment.

The PR-level bars: under one fixed seed the drifting-workload experiment
must (a) replay deterministically, (b) show the frozen champion's mean
pipeline-efficiency reward degrading after the drift point, (c) show the
adaptive service recovering to within 5% of its pre-drift schedule
quality, and (d) leave a promoted checkpoint that loads through
``repro.rl.checkpoints`` with the drift event in its provenance.

Scaled down from the full experiment/benchmark so the tier-1 suite stays
fast; the bars are the same *shape*, with the recovery tolerance the
acceptance criterion names.
"""

import numpy as np
import pytest

from repro.cluster.scenarios import attention_drift_scenario
from repro.experiments.online_adaptation import run_online_adaptation
from repro.online import AdaptationConfig
from repro.rl.checkpoints import load_checkpoint, read_metadata

SEED = 0
#: Frozen champion must lose at least this share of mean reward.
DEGRADATION_BAR = 0.08
#: Adaptive service must return to within this share of pre-drift.
RECOVERY_BAR = 0.05


def _run(checkpoint_dir=None):
    scenario = attention_drift_scenario(duration_s=20.0, drift_at_s=6.5)
    return run_online_adaptation(
        seed=SEED,
        scenario=scenario,
        adaptation=AdaptationConfig(
            max_adaptation_graphs=32,
            fresh_graphs=24,
            teacher_search_iters=500,
            imitation_steps=500,
            reinforce_steps=10,
            seed=SEED,
        ),
        reference_size=20,
        detector_window=12,
        detector_threshold=1.8,
        adapt_warmup_serves=12,
        max_adaptations=2,
        checkpoint_dir=checkpoint_dir,
    )


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return _run(checkpoint_dir=tmp_path_factory.mktemp("online_ckpt"))


@pytest.fixture(scope="module")
def checkpoint_dir(result):
    return result.adaptation_reports[-1].promotion.checkpoint_path.parent


class TestDriftStory:
    def test_frozen_champion_degrades(self, result):
        assert result.pre_drift_reward > 0.8
        assert result.degradation >= DEGRADATION_BAR, (
            f"frozen champion only degraded "
            f"{100 * result.degradation:.1f}%"
        )

    def test_drift_detected_after_drift_point(self, result):
        assert any(
            index >= result.drift_request_index
            for index in result.detection_request_indices
        )

    def test_challenger_promoted_through_gate(self, result):
        assert result.promoted
        promoted = [
            r for r in result.adaptation_reports if r.status == "promoted"
        ]
        assert len(promoted) == 1
        evaluation = promoted[0].evaluation
        assert evaluation.promote
        assert evaluation.z_score > 1.64
        assert evaluation.challenger_mean > evaluation.champion_mean

    def test_adaptive_service_recovers(self, result):
        assert result.recovery_gap <= RECOVERY_BAR, (
            f"recovered reward {result.adaptive_recovered_reward:.3f} is "
            f"{100 * result.recovery_gap:.1f}% below pre-drift "
            f"{result.pre_drift_reward:.3f}"
        )
        # And far above what the frozen champion serves post-drift.
        assert (
            result.adaptive_recovered_reward
            > result.frozen_post_reward + 0.05
        )


class TestPromotedCheckpoint:
    def test_loadable_via_checkpoint_lifecycle(self, result, checkpoint_dir):
        policy = load_checkpoint(checkpoint_dir, "respect_online")
        assert policy.num_parameters() > 0

    def test_provenance_records_drift_event(self, result, checkpoint_dir):
        meta = read_metadata(checkpoint_dir, "respect_online")
        online = meta["online_adaptation"]
        event = online["drift_event"]
        assert event["at_observation"] >= result.drift_request_index
        assert event["statistic"] > 0
        assert online["shadow_evaluation"]["promote"] is True
        assert online["replaced_options_fingerprint"]


class TestDeterminism:
    def test_replay_is_bit_identical(self, result):
        replay = _run()
        assert replay.rewards == result.rewards
        assert (
            replay.detection_request_indices
            == result.detection_request_indices
        )
        assert (
            replay.promotion_request_index == result.promotion_request_index
        )
        assert [r.status for r in replay.adaptation_reports] == [
            r.status for r in result.adaptation_reports
        ]
        first = result.adaptation_reports[-1].evaluation
        second = replay.adaptation_reports[-1].evaluation
        assert np.allclose(
            first.challenger_rewards, second.challenger_rewards
        )
