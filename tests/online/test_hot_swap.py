"""Swap atomicity under concurrency: no request is ever served torn.

The contract of :meth:`SchedulingService.swap_scheduler`: every result —
submitted before, during, or after a hot-swap, from any number of
threads — is bit-identical to a direct call of *exactly one* of the two
policy versions, and requests submitted after the swap returns are
always served by the new version.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.graphs.sampler import sample_synthetic_dag
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.service import SchedulingService

NUM_THREADS = 10
REQUESTS_PER_THREAD = 40
NUM_STAGES = 4


class VersionedScheduler:
    """Deterministic scheduler whose output encodes its version."""

    def __init__(self, version: int, delay_s: float = 0.0):
        self.version = version
        self.method_name = f"versioned_v{version}"
        self.delay_s = delay_s

    def _solve(self, graph, num_stages):
        # Version 1 fills stages forward, version 2 backward — trivially
        # distinguishable, deterministic, and valid stage ranges.
        names = graph.node_names
        assignment = {}
        for i, name in enumerate(names):
            stage = min(i * num_stages // len(names), num_stages - 1)
            if self.version == 2:
                stage = num_stages - 1 - stage
            assignment[name] = stage
        return ScheduleResult(
            Schedule(graph, num_stages, assignment),
            0.0001,
            self.method_name,
        )

    def schedule(self, graph, num_stages):
        if self.delay_s:
            time.sleep(self.delay_s)
        return self._solve(graph, num_stages)

    def schedule_batch(self, graphs, stage_counts):
        if self.delay_s:
            time.sleep(self.delay_s)
        return [self._solve(g, s) for g, s in zip(graphs, stage_counts)]


@pytest.fixture(scope="module")
def graphs():
    return [
        sample_synthetic_dag(num_nodes=12, degree=3, seed=seed)
        for seed in range(24)
    ]


@pytest.fixture(params=["single", "sharded"])
def make_service(request):
    """Build the single-worker service or the 4-shard tier around v1.

    The hammer contract is identical for both: per-(shard-)batch
    scheduler snapshots mean no request is ever served a torn mix of
    two policy versions, and a submit that strictly follows a completed
    ``swap_scheduler`` is always served by the new version (the sharded
    swap only returns once every shard runs it).
    """
    from repro.service import ShardedSchedulingService

    def build(scheduler):
        if request.param == "single":
            return SchedulingService(
                scheduler, cache_capacity=64, batch_window_s=0.001
            )
        return ShardedSchedulingService(
            scheduler,
            num_shards=4,
            cache_capacity=64,
            batch_window_s=0.001,
        )

    return build


def test_hammer_submit_across_hot_swap(graphs, make_service):
    """>= 8 threads hammering submit across a swap: never a torn result."""
    v1 = VersionedScheduler(1, delay_s=0.0005)
    v2 = VersionedScheduler(2, delay_s=0.0005)
    direct = {
        1: {id(g): v1.schedule(g, NUM_STAGES).schedule.assignment for g in graphs},
        2: {id(g): v2.schedule(g, NUM_STAGES).schedule.assignment for g in graphs},
    }
    assert all(direct[1][id(g)] != direct[2][id(g)] for g in graphs)

    service = make_service(v1)
    # Pre-swap sanity serves: guaranteed v1 (no swap has happened yet).
    for graph in graphs[:3]:
        assert (
            service.schedule(graph, NUM_STAGES).schedule.assignment
            == direct[1][id(graph)]
        )
    start = threading.Barrier(NUM_THREADS + 1)
    swapped = threading.Event()
    results = [[] for _ in range(NUM_THREADS)]

    def hammer(slot):
        start.wait()
        for i in range(REQUESTS_PER_THREAD):
            graph = graphs[(slot * 7 + i) % len(graphs)]
            # Sample the flag *before* submitting: when it is already
            # set, this submission strictly follows the completed swap
            # and must be served by v2.  (Sampling after submit would
            # race: the swap could land in between.)
            after_swap = swapped.is_set()
            future = service.submit(graph, NUM_STAGES)
            results[slot].append((graph, future, after_swap))

    with ThreadPoolExecutor(NUM_THREADS) as pool:
        workers = [pool.submit(hammer, slot) for slot in range(NUM_THREADS)]
        start.wait()
        time.sleep(0.01)  # let traffic build against v1
        service.swap_scheduler(v2)
        swapped.set()
        for worker in workers:
            worker.result()

    for slot_results in results:
        for graph, future, after_swap in slot_results:
            assignment = future.result(timeout=30).schedule.assignment
            if assignment == direct[1][id(graph)]:
                # A v1 answer must predate the completed swap.
                assert not after_swap, (
                    "request submitted after swap_scheduler returned was "
                    "served by the retired version"
                )
            elif assignment != direct[2][id(graph)]:
                raise AssertionError(
                    "served schedule matches neither policy version (torn)"
                )
    # Post-hammer serves are guaranteed v2 (swap completed long before).
    probe = graphs[-1]
    assert (
        service.schedule(probe, NUM_STAGES).schedule.assignment
        == direct[2][id(probe)]
    )
    service.close()


def test_sequential_serves_flip_exactly_at_swap(graphs):
    v1 = VersionedScheduler(1)
    v2 = VersionedScheduler(2)
    with SchedulingService(v1, batch_window_s=0.0) as service:
        before = service.schedule(graphs[0], NUM_STAGES)
        assert before.schedule.assignment == (
            v1.schedule(graphs[0], NUM_STAGES).schedule.assignment
        )
        old_key = service.swap_scheduler(v2)
        service.cache.invalidate_options(old_key)
        after = service.schedule(graphs[0], NUM_STAGES)
        assert after.schedule.assignment == (
            v2.schedule(graphs[0], NUM_STAGES).schedule.assignment
        )
        assert after.extras["service"] == "versioned_v2"
        assert service.stats().swaps == 1


def test_swap_rejects_invalid_scheduler(graphs):
    from repro.errors import ServiceError

    with SchedulingService(VersionedScheduler(1)) as service:
        with pytest.raises(ServiceError):
            service.swap_scheduler(object())


def test_swap_on_closed_service_rejected(graphs):
    from repro.errors import ServiceError

    service = SchedulingService(VersionedScheduler(1))
    service.close()
    with pytest.raises(ServiceError):
        service.swap_scheduler(VersionedScheduler(2))
