"""Tests for shadow evaluation, the promotion gate, and hot-swap wiring."""

import numpy as np
import pytest

from repro.embedding.features import EmbeddingConfig
from repro.graphs.families import AttentionAugmentedFamily
from repro.online import (
    ShadowEvaluation,
    default_reward_model,
    evaluate_challenger,
    promote_challenger,
    scheduler_with_policy,
)
from repro.rl.checkpoints import load_checkpoint, read_metadata
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import RespectScheduler
from repro.service import SchedulingService


def _tiny_policy(seed=0):
    return PointerNetworkPolicy(
        feature_dim=EmbeddingConfig().feature_dim, hidden_size=16, seed=seed
    )


@pytest.fixture(scope="module")
def graphs():
    return AttentionAugmentedFamily(num_nodes=14, degree=2, seed=9).sample_batch(6)


class TestShadowEvaluationGate:
    def _eval(self, champion, challenger, **kwargs):
        return ShadowEvaluation(
            champion_rewards=champion,
            challenger_rewards=challenger,
            min_improvement=kwargs.get("min_improvement", 0.0),
            z_threshold=kwargs.get("z_threshold", 1.64),
        )

    def test_clear_winner_promotes(self):
        evaluation = self._eval([0.5] * 8, [0.8, 0.81, 0.79, 0.8, 0.82, 0.78, 0.8, 0.8])
        assert evaluation.mean_improvement > 0.25
        assert evaluation.z_score > 1.64
        assert evaluation.promote

    def test_identical_rewards_do_not_promote(self):
        evaluation = self._eval([0.5] * 6, [0.5] * 6)
        assert evaluation.z_score == 0.0
        assert not evaluation.promote

    def test_uniform_improvement_has_infinite_z(self):
        evaluation = self._eval([0.5] * 4, [0.6] * 4)
        assert evaluation.z_score == np.inf
        assert evaluation.promote

    def test_noisy_small_win_rejected(self):
        champion = [0.5, 0.9, 0.4, 0.8]
        challenger = [0.6, 0.8, 0.5, 0.85]  # mean +0.04 but high variance
        evaluation = self._eval(champion, challenger)
        assert not evaluation.promote

    def test_min_improvement_gate(self):
        evaluation = self._eval(
            [0.5] * 6, [0.52] * 6, min_improvement=0.05
        )
        assert evaluation.z_score == np.inf
        assert not evaluation.promote

    def test_singleton_never_promotes(self):
        assert not self._eval([0.1], [0.9]).promote


class TestSchedulerWithPolicy:
    def test_clones_every_option(self):
        template = RespectScheduler(
            policy=_tiny_policy(0),
            budget_slack=1.2,
            enforce_siblings=True,
            constrain_topological=False,
        )
        challenger_policy = _tiny_policy(1)
        clone = scheduler_with_policy(template, challenger_policy)
        assert clone.policy is challenger_policy
        assert clone.budget_slack == 1.2
        assert clone.enforce_siblings is True
        assert clone.constrain_topological is False
        assert clone.embedding_config is template.embedding_config
        assert clone.options_fingerprint() != template.options_fingerprint()


class TestEvaluateChallenger:
    def test_pairwise_rewards_and_identity(self, graphs):
        champion = RespectScheduler(policy=_tiny_policy(0))
        challenger = scheduler_with_policy(champion, _tiny_policy(0))
        evaluation = evaluate_challenger(champion, challenger, graphs, 3)
        # Same weights -> identical schedules -> identical rewards.
        assert evaluation.champion_rewards == evaluation.challenger_rewards
        assert not evaluation.promote

    def test_empty_graphs_rejected(self):
        champion = RespectScheduler(policy=_tiny_policy(0))
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            evaluate_challenger(champion, champion, [], 3)


class TestPromoteChallenger:
    def test_persists_swaps_and_invalidates(self, graphs, tmp_path):
        champion = RespectScheduler(policy=_tiny_policy(0))
        challenger = scheduler_with_policy(champion, _tiny_policy(1))
        evaluation = evaluate_challenger(champion, challenger, graphs, 3)
        with SchedulingService(champion, batch_window_s=0.0) as service:
            for graph in graphs:
                service.schedule(graph, 3)
            assert service.cache.stats().size == len(graphs)
            record = promote_challenger(
                service,
                challenger,
                evaluation,
                checkpoint_dir=tmp_path,
                checkpoint_name="promo_test",
                drift_event={"at_observation": 12},
            )
            assert service.scheduler is challenger
            assert service.stats().swaps == 1
            # Every old-options entry evicted, counted as invalidations.
            assert record.invalidated_entries == len(graphs)
            assert service.cache.stats().size == 0
            assert service.cache.stats().invalidations == len(graphs)
            assert record.retired_options_key == champion.options_fingerprint()
            # Post-swap serves are challenger results.
            served = service.schedule(graphs[0], 3)
            direct = challenger.schedule(graphs[0], 3)
            assert served.schedule.assignment == direct.schedule.assignment

        loaded = load_checkpoint(tmp_path, "promo_test")
        state = loaded.state_dict()
        for key, value in challenger.policy.state_dict().items():
            assert np.array_equal(state[key], value)
        meta = read_metadata(tmp_path, "promo_test")
        online = meta["online_adaptation"]
        assert online["drift_event"] == {"at_observation": 12}
        assert online["replaced_options_fingerprint"] == (
            champion.options_fingerprint()
        )
        assert online["shadow_evaluation"]["size"] == len(graphs)

    def test_swap_only_without_checkpoint_dir(self, graphs):
        champion = RespectScheduler(policy=_tiny_policy(0))
        challenger = scheduler_with_policy(champion, _tiny_policy(1))
        evaluation = evaluate_challenger(champion, challenger, graphs, 3)
        with SchedulingService(champion, batch_window_s=0.0) as service:
            record = promote_challenger(service, challenger, evaluation)
            assert record.checkpoint_path is None
            assert service.scheduler is challenger

    def test_promotes_across_a_sharded_service(self, graphs):
        """The promotion path operates per-shard: every shard swaps to
        the challenger and every shard's stale cache entries are
        evicted."""
        from repro.service import ShardedSchedulingService

        champion = RespectScheduler(policy=_tiny_policy(0))
        challenger = scheduler_with_policy(champion, _tiny_policy(1))
        evaluation = evaluate_challenger(champion, challenger, graphs, 3)
        with ShardedSchedulingService(
            champion, num_shards=3, batch_window_s=0.0
        ) as service:
            for graph in graphs:
                service.schedule(graph, 3)
            populated = [
                shard.cache.stats().size for shard in service.shards
            ]
            assert sum(populated) == len(graphs)
            record = promote_challenger(service, challenger, evaluation)
            # Every shard now runs the challenger...
            assert all(
                shard.scheduler is challenger for shard in service.shards
            )
            assert service.scheduler is challenger
            # ...and the champion's entries are gone from every cache.
            assert record.invalidated_entries == len(graphs)
            assert all(
                shard.cache.stats().size == 0 for shard in service.shards
            )
            assert record.retired_options_key == (
                champion.options_fingerprint()
            )
            served = service.schedule(graphs[0], 3)
            direct = challenger.schedule(graphs[0], 3)
            assert served.schedule.assignment == direct.schedule.assignment
            assert served.extras["cache_hit"] is False
