"""Tests for the pipeline-latency reward model."""

import numpy as np
import pytest

from repro.graphs.families import AttentionAugmentedFamily, ComputeUniformFamily
from repro.online import default_reward_model, latency_teacher_order
from repro.scheduling.sequence import pack_sequence


@pytest.fixture(scope="module")
def reward_model():
    return default_reward_model()


@pytest.fixture(scope="module")
def uniform_graph():
    return ComputeUniformFamily(num_nodes=16, degree=2, seed=3).sample()


@pytest.fixture(scope="module")
def hot_graph():
    return AttentionAugmentedFamily(num_nodes=16, degree=2, seed=4).sample()


class TestBoundAndReward:
    def test_bound_is_positive_and_stage_monotone(self, reward_model, uniform_graph):
        b2 = reward_model.bound_period(uniform_graph, 2)
        b4 = reward_model.bound_period(uniform_graph, 4)
        assert b2 > 0 and b4 > 0
        # More stages can only lower (or keep) the balanced-split bound.
        assert b4 <= b2

    def test_reward_is_bound_over_achieved(self, reward_model, uniform_graph):
        schedule = pack_sequence(uniform_graph, uniform_graph.topological_order(), 4)
        reward = reward_model.reward(uniform_graph, schedule)
        achieved = reward_model.period(uniform_graph, schedule)
        bound = reward_model.bound_period(uniform_graph, 4)
        assert reward == pytest.approx(bound / achieved)

    def test_compute_bound_schedule_cannot_beat_bound(
        self, reward_model, uniform_graph, hot_graph
    ):
        # These families are compute-dominated by construction, so the
        # compute lower bound really is a lower bound on the period.
        for graph in (uniform_graph, hot_graph):
            schedule = pack_sequence(graph, graph.topological_order(), 4)
            assert reward_model.reward(graph, schedule) <= 1.0 + 1e-9

    def test_order_reward_matches_packed_reward(self, reward_model, hot_graph):
        order = hot_graph.topological_order()
        packed = pack_sequence(hot_graph, order, 4)
        assert reward_model.order_reward(hot_graph, order, 4) == pytest.approx(
            reward_model.reward(hot_graph, packed)
        )

    def test_gap_to_bound_is_inverse_reward(self, reward_model, uniform_graph):
        schedule = pack_sequence(uniform_graph, uniform_graph.topological_order(), 3)
        reward = reward_model.reward(uniform_graph, schedule)
        gap = reward_model.gap_to_bound(uniform_graph, schedule)
        assert gap == pytest.approx(1.0 / reward - 1.0)
        assert gap >= -1e-9

    def test_order_quality_separates_hot_colocations(self, reward_model, hot_graph):
        """Colocating the hot heads must score strictly worse."""
        order = list(hot_graph.topological_order())
        heads = [n for n in order if n.startswith("mhsa_")]
        others = [n for n in order if not n.startswith("mhsa_")]
        # All heads last: they pile into the final stages together.
        colocated = others + heads
        _, spread_reward = latency_teacher_order(
            hot_graph, 4, reward_model, iters=300, rng=np.random.default_rng(0)
        )
        colocated_reward = reward_model.order_reward(hot_graph, colocated, 4)
        assert spread_reward > colocated_reward
