"""Tests for the Page-Hinkley workload drift detector."""

import pytest

from repro.errors import ServiceError
from repro.graphs.families import AttentionAugmentedFamily, ComputeUniformFamily
from repro.online import DriftDetector, GraphObservation


def _stream(family, count):
    return [GraphObservation.from_graph(family.sample()) for _ in range(count)]


@pytest.fixture(scope="module")
def pre_stream():
    return _stream(ComputeUniformFamily(num_nodes=20, degree=3, seed=5), 140)


@pytest.fixture(scope="module")
def post_stream():
    return _stream(
        AttentionAugmentedFamily(num_nodes=20, degree=3, seed=6), 60
    )


class TestObservation:
    def test_fields(self, pre_stream):
        obs = pre_stream[0]
        assert len(obs.fingerprint) == 64
        assert obs.num_nodes == 20
        assert obs.width >= 1
        assert sum(obs.op_histogram.values()) == obs.num_nodes

    def test_hot_family_histogram_same_ops_more_nodes(self, post_stream):
        # Attention heads are conv2d too — drift shows in shape, not in
        # new op names, which is exactly the harder detection case.
        obs = post_stream[0]
        assert obs.num_nodes == 24


class TestCalibration:
    def test_not_calibrated_before_reference(self, pre_stream):
        detector = DriftDetector(reference_size=16, window_size=8)
        for obs in pre_stream[:15]:
            assert detector.update(obs) is None
        assert not detector.calibrated
        detector.update(pre_stream[15])
        assert detector.calibrated

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServiceError):
            DriftDetector(reference_size=1)
        with pytest.raises(ServiceError):
            DriftDetector(window_size=0)
        with pytest.raises(ServiceError):
            DriftDetector(threshold=0.0)


class TestDetection:
    def test_stationary_stream_stays_quiet(self, pre_stream):
        """Unique-fingerprint synthetic traffic is not drift."""
        detector = DriftDetector(
            reference_size=24, window_size=12, threshold=1.8
        )
        for i, obs in enumerate(pre_stream):
            assert detector.update(obs) is None, f"false alarm at {i}"

    def test_family_shift_detected(self, pre_stream, post_stream):
        detector = DriftDetector(
            reference_size=24, window_size=12, threshold=1.8
        )
        for obs in pre_stream[:40]:
            assert detector.update(obs) is None
        event = None
        for lag, obs in enumerate(post_stream):
            event = detector.update(obs)
            if event is not None:
                break
        assert event is not None, "drift never detected"
        assert lag < 30, f"detection too slow: {lag} drifted serves"
        assert event.at_observation == 40 + lag
        assert event.statistic > detector.threshold
        assert event.window_mean_nodes > 20  # window already drifted
        assert 0.0 <= event.novelty_rate <= 1.0
        assert not detector.armed
        # Disarmed: further observations never re-fire until rearmed.
        assert detector.update(post_stream[-1]) is None

    def test_event_summary_is_jsonable(self, pre_stream, post_stream):
        import json

        detector = DriftDetector(
            reference_size=24, window_size=12, threshold=1.8
        )
        for obs in pre_stream[:40]:
            detector.update(obs)
        event = None
        for obs in post_stream:
            event = detector.update(obs)
            if event:
                break
        json.dumps(event.summary())


class TestRearmRebaseline:
    def _triggered(self, pre_stream, post_stream):
        detector = DriftDetector(
            reference_size=24, window_size=12, threshold=1.8
        )
        for obs in pre_stream[:40]:
            detector.update(obs)
        for obs in post_stream:
            if detector.update(obs) is not None:
                return detector
        raise AssertionError("no drift detected")

    def test_rearm_keeps_reference_and_refires(self, pre_stream, post_stream):
        detector = self._triggered(pre_stream, post_stream)
        detector.rearm()
        assert detector.armed
        refired = any(
            detector.update(obs) is not None for obs in post_stream[20:]
        )
        assert refired, "sustained drift must re-trigger after rearm"

    def test_rebaseline_adopts_drifted_window(self, pre_stream, post_stream):
        detector = self._triggered(pre_stream, post_stream)
        detector.rebaseline()
        assert detector.armed
        # The drifted traffic is the new normal: no more events.
        for obs in post_stream[20:]:
            assert detector.update(obs) is None
