"""Tests for the reservoir + recent-window experience buffer."""

import threading

import pytest

from repro.errors import ServiceError
from repro.graphs.sampler import sample_synthetic_dag
from repro.online import ExperienceBuffer
from repro.scheduling.sequence import pack_sequence


def _record(buffer, graph, reward=0.5, num_stages=3, fingerprint=None):
    schedule = pack_sequence(graph, graph.topological_order(), num_stages)
    return buffer.record(
        graph, num_stages, schedule, reward, fingerprint=fingerprint
    )


@pytest.fixture(scope="module")
def graphs():
    return [
        sample_synthetic_dag(num_nodes=8, degree=2, seed=seed)
        for seed in range(60)
    ]


class TestReservoir:
    def test_fills_then_stays_bounded(self, graphs):
        buffer = ExperienceBuffer(capacity=16, seed=0)
        for graph in graphs:
            _record(buffer, graph)
        assert len(buffer) == 16
        stats = buffer.stats()
        assert stats.observed == len(graphs)
        assert stats.reservoir_size == 16

    def test_serve_indices_monotone_and_unique(self, graphs):
        buffer = ExperienceBuffer(capacity=8, seed=1)
        for graph in graphs[:20]:
            _record(buffer, graph)
        indices = [r.serve_index for r in buffer.sample()]
        assert len(set(indices)) == len(indices)
        assert all(0 <= i < 20 for i in indices)

    def test_reservoir_deterministic_under_seed(self, graphs):
        first = ExperienceBuffer(capacity=8, seed=7)
        second = ExperienceBuffer(capacity=8, seed=7)
        for graph in graphs:
            _record(first, graph)
            _record(second, graph)
        assert [r.serve_index for r in first.sample()] == [
            r.serve_index for r in second.sample()
        ]

    def test_reservoir_differs_across_seeds(self, graphs):
        first = ExperienceBuffer(capacity=8, seed=1)
        second = ExperienceBuffer(capacity=8, seed=2)
        for graph in graphs:
            _record(first, graph)
            _record(second, graph)
        assert [r.serve_index for r in first.sample()] != [
            r.serve_index for r in second.sample()
        ]


class TestRecentWindow:
    def test_recent_returns_newest_in_order(self, graphs):
        buffer = ExperienceBuffer(capacity=64, recent_capacity=8, seed=0)
        for graph in graphs[:20]:
            _record(buffer, graph)
        recent = buffer.recent()
        assert [r.serve_index for r in recent] == list(range(12, 20))
        assert [r.serve_index for r in buffer.recent(3)] == [17, 18, 19]
        assert buffer.recent(0) == []

    def test_since_filters_by_serve_index(self, graphs):
        buffer = ExperienceBuffer(capacity=64, recent_capacity=16, seed=0)
        for graph in graphs[:20]:
            _record(buffer, graph)
        since = buffer.since(15)
        assert [r.serve_index for r in since] == [15, 16, 17, 18, 19]

    def test_mean_recent_reward(self, graphs):
        buffer = ExperienceBuffer(capacity=8, recent_capacity=4, seed=0)
        for i, graph in enumerate(graphs[:8]):
            _record(buffer, graph, reward=float(i))
        assert buffer.stats().mean_recent_reward == pytest.approx(5.5)


class TestRecordContent:
    def test_record_carries_fingerprint_and_reward(self, graphs):
        buffer = ExperienceBuffer(capacity=4, seed=0)
        entry = _record(buffer, graphs[0], reward=0.25, fingerprint="fp-x")
        assert entry.fingerprint == "fp-x"
        assert entry.reward == 0.25
        assert entry.schedule.num_stages == 3

    def test_fingerprint_derived_when_missing(self, graphs):
        buffer = ExperienceBuffer(capacity=4, seed=0)
        entry = _record(buffer, graphs[0])
        assert len(entry.fingerprint) == 64  # sha-256 hex

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ServiceError):
            ExperienceBuffer(capacity=0)
        with pytest.raises(ServiceError):
            ExperienceBuffer(capacity=4, recent_capacity=0)
        buffer = ExperienceBuffer(capacity=4)
        with pytest.raises(ServiceError):
            buffer.recent(-1)


class TestThreadSafety:
    def test_concurrent_records_count_exactly(self, graphs):
        buffer = ExperienceBuffer(capacity=32, seed=0)
        per_thread = 50

        def worker(offset):
            for i in range(per_thread):
                _record(buffer, graphs[(offset + i) % len(graphs)])

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = buffer.stats()
        assert stats.observed == 8 * per_thread
        assert stats.reservoir_size == 32
