"""Tests for the experiment drivers on reduced scopes.

The benchmark harness runs the full paper-scale configurations; here the
drivers are exercised on one small model / stage count so correctness is
covered by the fast suite.
"""

import pytest

from repro.experiments.fig3 import Fig3Row, format_fig3, run_fig3
from repro.experiments.fig4 import Fig4Row, format_fig4, run_fig4
from repro.experiments.fig5 import Fig5Row, average_gaps, format_fig5, run_fig5
from repro.experiments.table1 import format_table1, run_table1
from repro.rl.respect import RespectScheduler


@pytest.fixture(scope="module")
def respect():
    return RespectScheduler()


class TestTable1Driver:
    def test_rows_and_formatting(self):
        rows = run_table1(["Xception"])
        assert len(rows) == 1
        assert rows[0].matches_paper
        text = format_table1(rows)
        assert "Xception" in text
        assert "134" in text

    def test_unlisted_model_has_no_paper_columns(self):
        rows = run_table1(["InceptionV3"])
        assert rows[0].paper_num_nodes is None
        assert rows[0].matches_paper is None


class TestFig3Driver:
    def test_single_model(self, respect):
        rows = run_fig3(models=["Xception"], stage_counts=(4,),
                        respect=respect, profile_inferences=20)
        assert len(rows) == 1
        row = rows[0]
        assert row.respect_seconds > 0
        assert row.speedup_over_ilp == pytest.approx(
            row.ilp_seconds / row.respect_seconds
        )
        text = format_fig3(rows)
        assert "headline" in text
        assert "Xception" in text


class TestFig4Driver:
    def test_single_model(self, respect):
        rows = run_fig4(models=["Xception"], stage_counts=(4,),
                        num_inferences=50, respect=respect)
        assert len(rows) == 1
        row = rows[0]
        assert row.relative_respect == pytest.approx(
            row.respect_seconds / row.compiler_seconds
        )
        text = format_fig4(rows)
        assert "4-stage" in text


class TestFig5Driver:
    def test_single_model(self, respect):
        rows = run_fig5(models=["Xception"], stage_counts=(4,), respect=respect)
        assert len(rows) == 1
        assert rows[0].gap_percent >= 0.0
        gaps = average_gaps(rows)
        assert set(gaps) == {4}
        text = format_fig5(rows)
        assert "gap-to-optimal" in text

    def test_gap_math(self):
        row = Fig5Row(model="m", num_stages=4, optimal_bytes=100,
                      respect_bytes=105)
        assert row.gap_percent == pytest.approx(5.0)
