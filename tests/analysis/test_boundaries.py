"""Exception-boundary rule against the boundaries_* fixture trees."""

from repro.analysis.rules.boundaries import ExceptionBoundaryRule


def test_bad_fixture_flags_builtin_raises(run_fixture):
    findings = run_fixture("boundaries_bad", ExceptionBoundaryRule())
    assert sorted(f.symbol for f in findings) == [
        "RuntimeError",
        "ValueError",
    ]
    assert all("repro.errors" in f.message for f in findings)


def test_clean_fixture_has_no_findings(run_fixture):
    # Hierarchy raises, a local ServiceError subclass, a ValueError
    # consumed by its own enclosing try, a variable re-raise,
    # NotImplementedError, and one boundary-ok annotation: all quiet.
    assert run_fixture("boundaries_clean", ExceptionBoundaryRule()) == []


def test_raise_inside_handler_is_not_covered_by_its_own_try(run_fixture, tmp_path):
    from repro.analysis.core import Project, run_project

    path = tmp_path / "src" / "repro" / "service" / "x.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "def f(x):\n"
        "    try:\n"
        "        return int(x)\n"
        "    except ValueError:\n"
        "        raise ValueError('still crosses the boundary')\n",
        encoding="utf-8",
    )
    project = Project.load(tmp_path, [path])
    findings = run_project(project, [ExceptionBoundaryRule()])
    assert len(findings) == 1
    assert findings[0].symbol == "ValueError"


def test_except_exception_covers_subclasses(run_fixture, tmp_path):
    from repro.analysis.core import Project, run_project

    path = tmp_path / "src" / "repro" / "service" / "x.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "def f(x):\n"
        "    try:\n"
        "        if x < 0:\n"
        "            raise ValueError('negative')\n"
        "    except Exception:\n"
        "        return None\n",
        encoding="utf-8",
    )
    project = Project.load(tmp_path, [path])
    assert run_project(project, [ExceptionBoundaryRule()]) == []
