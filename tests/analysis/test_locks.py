"""Lock-discipline rule against the locks_* fixture trees."""

from repro.analysis.rules.locks import LockDisciplineRule


def test_bad_fixture_flags_unlocked_read_and_callback_escape(run_fixture):
    findings = run_fixture("locks_bad", LockDisciplineRule())
    assert [f.rule for f in findings] == ["lock-discipline"] * 2
    by_symbol = {f.symbol: f for f in findings}
    assert set(by_symbol) == {"Counter.peek", "Counter.bump_later"}
    assert "read here outside any lock context" in by_symbol["Counter.peek"].message
    # The callback body writes after the with-block exits.
    assert "written" in by_symbol["Counter.bump_later"].message
    assert all("self._count" in f.message for f in findings)


def test_clean_fixture_has_no_findings(run_fixture):
    assert run_fixture("locks_clean", LockDisciplineRule()) == []


def test_locked_suffix_convention_counts_as_held(run_fixture):
    # locks_clean's _drain_locked writes the guarded attribute with no
    # with-block; zero findings proves the *_locked baseline applies.
    assert run_fixture("locks_clean", LockDisciplineRule()) == []
