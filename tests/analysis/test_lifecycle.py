"""Resource-lifecycle rule against the lifecycle_* fixture trees."""

from repro.analysis.rules.lifecycle import ResourceLifecycleRule


def test_bad_fixture_flags_thread_and_file(run_fixture):
    findings = run_fixture("lifecycle_bad", ResourceLifecycleRule())
    assert len(findings) == 2
    assert all(f.symbol == "Pump" for f in findings)
    resources = " ".join(f.message for f in findings)
    assert "thread" in resources
    assert "file handle" in resources
    assert all("no release path" in f.message for f in findings)


def test_clean_fixture_has_no_findings(run_fixture):
    # Pump gains close(); FireAndForget's daemon hand-off carries the
    # lifecycle-ok annotation.
    assert run_fixture("lifecycle_clean", ResourceLifecycleRule()) == []
