"""Baseline ledger: round-trip, gating semantics, malformed input."""

import json

import pytest

from repro.analysis.baseline import BASELINE_VERSION, Baseline, partition
from repro.analysis.core import Finding


def _finding(message="m", line=1, path="p.py", rule="r"):
    return Finding(rule=rule, path=path, line=line, message=message)


def test_round_trip(tmp_path):
    findings = [_finding("a"), _finding("b"), _finding("b", line=9)]
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.write(path)

    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    assert len(loaded) == 3  # counts survive: "b" appears twice

    payload = json.loads(path.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert list(payload["findings"]) == sorted(payload["findings"])


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert len(baseline) == 0


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999, "findings": {}}))
    with pytest.raises(ValueError):
        Baseline.load(path)
    path.write_text(
        json.dumps({"version": 1, "findings": {"x": {"count": "two"}}})
    )
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_partition_gates_only_new_findings():
    old = _finding("accepted debt")
    baseline = Baseline.from_findings([old])

    # Same fingerprint at a different line: absorbed (line-independent).
    moved = _finding("accepted debt", line=40)
    new, baselined, stale = partition([moved], baseline)
    assert new == []
    assert baselined == [moved]
    assert stale == []

    # A second textually identical instance overflows count=1.
    new, baselined, stale = partition([moved, old], baseline)
    assert len(new) == 1
    assert len(baselined) == 1

    # Fixed code leaves the entry stale.
    new, baselined, stale = partition([], baseline)
    assert (new, baselined) == ([], [])
    assert stale == [old.fingerprint]

    # A different message is always new.
    fresh = _finding("novel violation")
    new, _, _ = partition([fresh], baseline)
    assert new == [fresh]
