"""Telemetry-naming rule against the telemetry_* fixture trees."""

from repro.analysis.rules.telemetry_naming import TelemetryNamingRule


def test_bad_fixture_flags_every_convention(run_fixture):
    findings = run_fixture("telemetry_bad", TelemetryNamingRule())
    messages = [f.message for f in findings]
    assert any(
        "'respect_drops' must end in '_total'" in m for m in messages
    )
    assert any(
        "'Respect_Errors_total' violates the metric namespace" in m
        for m in messages
    )
    assert any(
        "'respect_queue_depth_total' must not end in '_total'" in m
        for m in messages
    )
    assert any(
        "'respect_latency' must end in a unit suffix" in m
        for m in messages
    )
    assert any(
        "label keys ['tier'] here but ['shard'] elsewhere" in m
        for m in messages
    )
    assert any(
        "registered as both counter and gauge" in m for m in messages
    )
    warnings = [f for f in findings if f.severity == "warning"]
    assert len(warnings) == 1
    assert "non-literal counter name" in warnings[0].message


def test_clean_fixture_has_no_findings(run_fixture):
    # Well-formed names, a facade forwarding its ``name`` parameter
    # (delegation, not registration), and an unlabeled site coexisting
    # with consistent labeled ones: all quiet.
    assert run_fixture("telemetry_clean", TelemetryNamingRule()) == []
