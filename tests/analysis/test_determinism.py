"""Determinism rule against the determinism_* fixture trees."""

from repro.analysis.rules.determinism import DeterminismRule


def test_bad_fixture_flags_rng_clock_and_set_order(run_fixture):
    findings = run_fixture("determinism_bad", DeterminismRule())
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("random.random" in m for m in messages)
    assert any("host clock" in m for m in messages)
    assert any("hash-randomized order" in m for m in messages)
    assert all(
        f.path == "src/repro/scheduling/solver.py" for f in findings
    )


def test_clean_fixture_has_no_findings(run_fixture):
    # Seeded Random, sorted(set), max(... for ... in set) sink, and an
    # annotated monotonic read all pass; the utils/ file sits outside
    # every zone so its ambient entropy is not the rule's business.
    assert run_fixture("determinism_clean", DeterminismRule()) == []


def test_zone_override(run_fixture):
    # Widening the zone to utils/ makes the clean tree's free.py dirty.
    rule = DeterminismRule(zones=("src/repro/utils/",))
    findings = run_fixture("determinism_clean", rule)
    assert findings
    assert all(f.path == "src/repro/utils/free.py" for f in findings)
