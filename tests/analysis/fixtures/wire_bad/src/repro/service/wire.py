"""Known-bad wire module: renumber, reuse, removal, dropped version.

Checked against a fixture freeze of KIND_A=1, KIND_B=2, KIND_C=3 with
supported versions (1, 2).
"""

MAGIC = b"RW"

KIND_A = 1
KIND_B = 4
KIND_D = 4
KIND_E = 5

WIRE_VERSION = 3
SUPPORTED_WIRE_VERSIONS = (2, 3)

_KIND_NAMES = {
    KIND_A: "a",
    KIND_B: "b",
    KIND_D: "d",
}
