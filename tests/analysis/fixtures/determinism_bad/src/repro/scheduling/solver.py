"""Known-bad determinism: global RNG, wall clock, set-order leak."""

import random
import time


def jitter():
    return random.random()


def stamp():
    return time.time()


def order(tags):
    bag = set(tags)
    out = []
    for tag in bag:
        out.append(tag)
    return out
