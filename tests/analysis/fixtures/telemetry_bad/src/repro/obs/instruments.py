"""Known-bad telemetry naming: every convention violated once."""


def register(registry, dynamic_name):
    registry.counter("respect_requests_total", help="requests served")
    registry.counter("respect_drops")
    registry.counter("Respect_Errors_total")
    registry.gauge("respect_queue_depth_total")
    registry.histogram("respect_latency")
    registry.counter("respect_frame_bytes_total", shard="a")
    registry.counter("respect_frame_bytes_total", tier="hot")
    registry.gauge("respect_requests_total")
    local = "respect_" + dynamic_name
    registry.counter(local)
