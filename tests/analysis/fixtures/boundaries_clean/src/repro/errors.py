"""Fixture error hierarchy mirroring repro.errors."""


class RespectError(Exception):
    pass


class ServiceError(RespectError):
    pass
