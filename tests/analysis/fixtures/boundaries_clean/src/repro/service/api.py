"""Known-clean exception boundary.

Hierarchy raises, a local subclass, a locally-handled builtin, a
variable re-raise, protocol builtins, and the escape hatch.
"""

from repro.errors import ServiceError


class QueueFullError(ServiceError):
    pass


def submit(payload):
    if payload is None:
        raise ServiceError("payload required")
    try:
        size = int(payload["size"])
        if size < 0:
            raise ValueError("negative size")
    except (KeyError, ValueError):
        raise QueueFullError("bad payload")
    return size


def decode(frame):
    try:
        return frame.decode()
    except UnicodeDecodeError as exc:
        raise exc


class Template:
    def render(self):
        raise NotImplementedError

    def __index__(self):
        raise TypeError("templates are not integers")  # repro: boundary-ok
