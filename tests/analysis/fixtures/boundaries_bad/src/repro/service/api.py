"""Known-bad exception boundary: builtin raises crossing the surface."""


def submit(payload):
    if payload is None:
        raise ValueError("payload required")
    return payload


class Dispatcher:
    def dispatch(self, job):
        if not job:
            raise RuntimeError("empty job")
        return job
