"""Known-clean wire module: grows by adding KIND_D and version 3 only.

Checked against a fixture freeze of KIND_A=1, KIND_B=2, KIND_C=3 with
supported versions (1, 2).
"""

MAGIC = b"RW"

KIND_A = 1
KIND_B = 2
KIND_C = 3
KIND_D = 4

WIRE_VERSION = 3
SUPPORTED_WIRE_VERSIONS = (1, 2, 3)

_KIND_NAMES = {
    KIND_A: "a",
    KIND_B: "b",
    KIND_C: "c",
    KIND_D: "d",
}
