"""Known-bad lock discipline: unlocked read + callback escape."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._callbacks = []

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count

    def bump_later(self):
        with self._lock:
            def cb():
                self._count += 1

            self._callbacks.append(cb)
