"""Known-clean lock discipline: locked accesses, a ``*_locked`` helper,
and one deliberate racy read behind the escape hatch."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def _drain_locked(self):
        self._count = 0

    def snapshot(self):
        with self._lock:
            return self._count

    def peek_racy(self):
        return self._count  # repro: unlocked-ok
