"""Outside every deterministic zone: ambient entropy is allowed."""

import random
import time


def roll():
    return random.random()


def stamp():
    return time.time()
