"""Known-clean determinism: seeded RNG, sorted sets, annotated clock."""

import random
import time


def jitter(seed):
    rng = random.Random(seed)
    return rng.random()


def order(tags):
    bag = set(tags)
    return sorted(bag)


def biggest(tags):
    return max(len(tag) for tag in set(tags))


def deadline(budget_s):
    return time.monotonic() + budget_s  # repro: nondeterministic-ok
