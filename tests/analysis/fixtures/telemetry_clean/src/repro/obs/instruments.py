"""Known-clean telemetry naming: good names, delegation, stamped labels."""


class Facade:
    def __init__(self, registry):
        self.registry = registry

    def counter(self, name, help="", **labels):
        return self.registry.counter(name, help=help, **labels)

    def histogram(self, name, help="", buckets=(), **labels):
        return self.registry.histogram(
            name, help=help, buckets=buckets, **labels
        )


def register(registry):
    registry.counter("respect_requests_total", help="requests served")
    registry.counter("respect_requests_total", shard="a")
    registry.counter("respect_requests_total", shard="b")
    registry.gauge("respect_queue_depth", tenant="t0")
    registry.histogram("respect_decode_seconds", buckets=(0.1, 1.0))
    registry.histogram("respect_frame_bytes")
