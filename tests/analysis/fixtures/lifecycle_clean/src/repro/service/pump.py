"""Known-clean lifecycle: close() path, and a sanctioned hand-off."""

import threading


class Pump:
    def __init__(self, source):
        self._log = open(source)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        pass

    def close(self):
        self._thread.join()
        self._log.close()


class FireAndForget:
    def __init__(self, target):
        self._thread = threading.Thread(target=target, daemon=True)  # repro: lifecycle-ok
        self._thread.start()
