"""Known-bad lifecycle: __init__ opens resources, no release path."""

import threading


class Pump:
    def __init__(self, source):
        self._log = open(source)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        pass
