"""Shared helpers for the static-analysis suite.

Each fixture tree under ``fixtures/`` is a miniature repo checkout
(``<name>/src/repro/...``) so the rules see the same repo-relative
paths they match against in production.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import Project, run_project

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _load(name: str) -> Project:
    root = FIXTURES / name
    paths = sorted(root.rglob("*.py"))
    assert paths, f"fixture tree {name!r} is empty"
    return Project.load(root, paths)


@pytest.fixture
def load_fixture():
    return _load


@pytest.fixture
def run_fixture():
    """``run_fixture(name, rule, ...)`` -> sorted unsuppressed findings."""

    def _run(name, *rules):
        return run_project(_load(name), list(rules))

    return _run
