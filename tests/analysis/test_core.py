"""Framework behavior: findings, suppression mechanics, rule loading."""

import pytest

from repro.analysis.core import (
    DEFAULT_RULE_MODULES,
    Finding,
    Project,
    Rule,
    SourceFile,
    load_rules,
    run_project,
)


class _EveryNameRule(Rule):
    """Test rule: one finding per Name node (easy to place precisely)."""

    id = "every-name"
    suppression = "name"
    description = "flags every identifier"

    def check_file(self, source):
        import ast

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name):
                yield Finding(
                    rule=self.id,
                    path=source.path,
                    line=node.lineno,
                    message=f"name {node.id!r}",
                )


def _project(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return Project.load(tmp_path, sorted(tmp_path.rglob("*.py")))


def test_fingerprint_is_line_independent():
    a = Finding(rule="r", path="p.py", line=3, message="m", symbol="S")
    b = Finding(rule="r", path="p.py", line=99, message="m", symbol="S")
    c = Finding(rule="r", path="p.py", line=3, message="m", symbol="T")
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


def test_finding_format_and_severity_validation():
    finding = Finding(rule="r", path="a/b.py", line=7, message="boom")
    assert finding.format() == "a/b.py:7: [r] error: boom"
    with pytest.raises(ValueError):
        Finding(rule="r", path="p.py", line=1, message="m", severity="fatal")


def test_suppression_in_string_literal_does_not_count():
    source = SourceFile(
        "x.py", 's = "# repro: name-ok"\n'
    )
    assert not source.suppressed(1, "name")


def test_suppression_comment_tokens_parse():
    source = SourceFile("x.py", "x = 1  # repro: name-ok, other-ok\n")
    assert source.suppressed(1, "name")
    assert source.suppressed(1, "other")
    assert not source.suppressed(1, "name-ok")


def test_suppression_on_first_line_covers_continuation(tmp_path):
    project = _project(
        tmp_path,
        {
            "mod.py": (
                "value = [  # repro: name-ok\n"
                "    alpha,\n"
                "    beta,\n"
                "]\n"
            )
        },
    )
    assert run_project(project, [_EveryNameRule()]) == []


def test_unsuppressed_findings_sorted(tmp_path):
    project = _project(
        tmp_path, {"b.py": "x = y\n", "a.py": "u = v\n"}
    )
    findings = run_project(project, [_EveryNameRule()])
    assert [f.path for f in findings] == ["a.py", "a.py", "b.py", "b.py"]
    assert all(f.rule == "every-name" for f in findings)


def test_parse_error_becomes_finding(tmp_path):
    project = _project(tmp_path, {"broken.py": "def f(:\n"})
    findings = run_project(project, [_EveryNameRule()])
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"
    assert "does not parse" in findings[0].message


def test_load_rules_default_registry():
    rules = load_rules()
    ids = sorted(rule.id for rule in rules)
    assert ids == [
        "determinism",
        "exception-boundary",
        "lock-discipline",
        "resource-lifecycle",
        "telemetry-naming",
        "wire-compat",
    ]
    assert len(DEFAULT_RULE_MODULES) == len(rules)
    for rule in rules:
        assert rule.description
        assert rule.suppression_token
