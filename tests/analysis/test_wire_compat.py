"""Wire-compat rule against the wire_* fixture trees."""

from repro.analysis.rules.wire_compat import WireCompatRule

FIXTURE_FREEZE = dict(
    frozen_kinds={"KIND_A": 1, "KIND_B": 2, "KIND_C": 3},
    frozen_versions=(1, 2),
)


def test_bad_fixture_flags_every_regression(run_fixture):
    findings = run_fixture("wire_bad", WireCompatRule(**FIXTURE_FREEZE))
    messages = [f.message for f in findings]
    assert any("KIND_C" in m and "removed" in m for m in messages)
    assert any("KIND_B" in m and "renumbered 2 -> 4" in m for m in messages)
    assert any("value 4 is reused" in m for m in messages)
    assert any(
        "KIND_E is missing from _KIND_NAMES" in m for m in messages
    )
    assert any(
        "version 1 was dropped" in m for m in messages
    )
    assert len(findings) == 5


def test_clean_fixture_growth_is_allowed(run_fixture):
    # Adding KIND_D and version 3 is the sanctioned evolution.
    assert run_fixture("wire_clean", WireCompatRule(**FIXTURE_FREEZE)) == []


def test_missing_wire_module_is_itself_a_finding(run_fixture):
    findings = run_fixture(
        "locks_clean", WireCompatRule(**FIXTURE_FREEZE)
    )
    assert len(findings) == 1
    assert "missing from the project" in findings[0].message


def test_real_repo_freeze_matches_wire_module():
    # The default freeze must agree with the checked-in wire.py, or the
    # repo-wide gate would fail; import both and compare.
    import repro.service.wire as wire
    from repro.analysis.rules import wire_compat

    for name, value in wire_compat.FROZEN_KINDS.items():
        assert getattr(wire, name) == value
    for version in wire_compat.FROZEN_SUPPORTED_VERSIONS:
        assert version in wire.SUPPORTED_WIRE_VERSIONS
