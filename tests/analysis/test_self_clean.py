"""Self-clean gate: the repo's own source passes its own linter.

This is the acceptance bar the CI lint job enforces; running it in the
unit suite means a violation fails fast locally with a readable diff of
findings, not just in CI.
"""

from pathlib import Path

from repro.analysis.baseline import Baseline, partition
from repro.analysis.core import Project, load_rules, run_project

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_repo_source_has_no_new_findings():
    src = REPO_ROOT / "src" / "repro"
    project = Project.load(REPO_ROOT, sorted(src.rglob("*.py")))
    findings = run_project(project, load_rules())
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    new, _, _ = partition(findings, baseline)
    assert new == [], "new lint findings:\n" + "\n".join(
        f.format() for f in new
    )


def test_baseline_is_near_empty():
    # The debt ledger was burned down when the linter landed; it must
    # not quietly regrow. Raise this bound only with a written reason.
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    assert len(baseline) <= 2
