"""Percentile semantics shared by service, fleet and online reports.

``repro.utils.stats.percentile`` is the single implementation behind
``ServiceStats`` latency percentiles, ``FleetReport`` per-tenant p50/p99
and the online-adaptation experiment's p99 headline — these tests pin
its edge-case behavior (empty, singleton, tiny windows) and that all
three report layers really share the one helper.
"""

import math

import numpy as np
import pytest

from repro.utils.stats import percentile


class TestPercentileEdgeCases:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_single_sample_returned_for_any_q(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([3.25], q) == 3.25

    def test_q_out_of_range_rejected(self):
        for q in (-0.001, 100.001, 1e9):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                percentile([1.0, 2.0], q)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("q", [0, 25, 50, 75, 90, 99, 100])
    def test_tiny_windows_match_numpy_linear(self, n, q):
        """p99 on a 2-sample window must interpolate, not pick max."""
        rng = np.random.default_rng(n * 1000 + q)
        values = rng.uniform(-5, 5, size=n).tolist()
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), abs=1e-12
        )

    def test_p99_on_two_samples_is_not_the_max(self):
        assert percentile([0.0, 1.0], 99) == pytest.approx(0.99)

    def test_p0_p100_are_min_max(self):
        values = [5.0, -2.0, 7.5, 0.0]
        assert percentile(values, 0) == -2.0
        assert percentile(values, 100) == 7.5

    def test_input_order_irrelevant(self):
        values = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert percentile(values, 50) == percentile(sorted(values), 50) == 5.0

    def test_handles_duplicates(self):
        assert percentile([2.0, 2.0, 2.0], 99) == 2.0

    def test_non_finite_values_pass_through(self):
        # The helper sorts; inf is a legal (if unusual) sample.
        assert math.isinf(percentile([1.0, math.inf], 100))


class TestSharedAcrossReports:
    def test_service_fleet_online_use_one_implementation(self):
        """The three report layers must agree on percentile semantics."""
        import repro.cluster.report as report
        import repro.experiments.online_adaptation as online
        import repro.service.service as service

        assert service.percentile is percentile
        assert report.percentile is percentile
        assert online.percentile is percentile

    def test_sharded_service_uses_one_implementation(self):
        import repro.service.sharded as sharded

        assert sharded.percentile is percentile
