"""Tests for the shared utility helpers."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_rngs, stable_hash
from repro.utils.stats import geometric_mean, mean, ratio_summary, stddev
from repro.utils.tables import format_table
from repro.utils.timing import Timer, time_call


class TestRng:
    def test_int_seed_deterministic(self):
        assert resolve_rng(5).integers(1000) == resolve_rng(5).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_bad_seed_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")

    def test_spawn_independent_streams(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_reproducible(self):
        a = [g.integers(10**6) for g in spawn_rngs(3, 2)]
        b = [g.integers(10**6) for g in spawn_rngs(3, 2)]
        assert a == b

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_stable_hash_deterministic_and_bounded(self):
        assert stable_hash("conv1") == stable_hash("conv1")
        assert stable_hash("conv1") != stable_hash("conv2")
        assert 0 <= stable_hash("x", 100) < 100

    def test_stable_hash_bad_modulus(self):
        with pytest.raises(ValueError):
            stable_hash("x", 0)


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2.0
        assert stddev([2, 2, 2]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_ratio_summary_keys(self):
        summary = ratio_summary([2.0, 8.0])
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        assert summary["geomean"] == pytest.approx(4.0)


class TestTables:
    def test_renders_headers_and_rows(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]])
        assert "| a" in table
        assert "2.5" in table
        assert "0.001" in table

    def test_title_included(self):
        assert format_table(["c"], [[1]], title="T1").startswith("T1")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.elapsed > 0

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0
