"""Tests for the content-addressed graph fingerprints."""

import pytest

from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import (
    graph_fingerprint,
    structural_fingerprint,
)
from repro.graphs.sampler import sample_synthetic_dag


def _diamond(names=("a", "b", "c", "d"), flip_parents=False):
    a, b, c, d = names
    g = ComputationalGraph(name="diamond")
    g.add_op(a, op_type="input", output_bytes=100)
    g.add_op(b, op_type="conv2d", param_bytes=400, output_bytes=200,
             macs=1000, inputs=[a])
    g.add_op(c, op_type="conv2d", param_bytes=600, output_bytes=300,
             macs=2000, inputs=[a])
    g.add_op(d, op_type="add", output_bytes=200,
             inputs=[c, b] if flip_parents else [b, c])
    return g


class TestGraphFingerprint:
    def test_identical_content_identical_fingerprint(self):
        assert graph_fingerprint(_diamond()) == graph_fingerprint(_diamond())

    def test_is_hex_sha256(self):
        digest = graph_fingerprint(_diamond())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_graph_display_name_ignored(self):
        g1, g2 = _diamond(), _diamond()
        g2.name = "renamed"
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_node_rename_changes_fingerprint(self):
        # Node names feed the embedding's hashed node-ID column, so a
        # renamed graph may schedule differently and must not share a key.
        assert graph_fingerprint(_diamond()) != graph_fingerprint(
            _diamond(names=("a", "b", "c", "z"))
        )

    def test_resource_attributes_matter(self):
        g = _diamond()
        g.node("b").param_bytes = 401
        assert graph_fingerprint(g) != graph_fingerprint(_diamond())

    def test_parent_order_matters(self):
        # Parent insertion order decides relative-coordinate slots in the
        # embedding; flipping it must change the fingerprint.
        assert graph_fingerprint(_diamond()) != graph_fingerprint(
            _diamond(flip_parents=True)
        )

    def test_topology_matters(self):
        g = _diamond()
        g.add_edge("b", "c")
        assert graph_fingerprint(g) != graph_fingerprint(_diamond())

    def test_attrs_matter_unless_excluded(self):
        g = _diamond()
        g.node("b").attrs["quantized"] = True
        assert graph_fingerprint(g) != graph_fingerprint(_diamond())
        assert graph_fingerprint(g, include_attrs=False) == graph_fingerprint(
            _diamond(), include_attrs=False
        )

    def test_attr_dict_order_irrelevant(self):
        g1, g2 = _diamond(), _diamond()
        g1.node("b").attrs.update({"x": 1, "y": (2, 3)})
        g2.node("b").attrs.update({"y": (2, 3)})
        g2.node("b").attrs.update({"x": 1})
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_attr_value_types_distinct(self):
        g1, g2 = _diamond(), _diamond()
        g1.node("b").attrs["flag"] = 1
        g2.node("b").attrs["flag"] = True
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_sampler_determinism_round_trip(self):
        g1 = sample_synthetic_dag(num_nodes=20, degree=3, seed=9)
        g2 = sample_synthetic_dag(num_nodes=20, degree=3, seed=9)
        g3 = sample_synthetic_dag(num_nodes=20, degree=3, seed=10)
        assert graph_fingerprint(g1) == graph_fingerprint(g2)
        assert graph_fingerprint(g1) != graph_fingerprint(g3)


class TestStructuralFingerprint:
    def test_invariant_under_renaming(self):
        renamed = _diamond(names=("w", "x", "y", "z"))
        assert structural_fingerprint(_diamond()) == structural_fingerprint(
            renamed
        )
        # The exact fingerprint, by contrast, must distinguish them.
        assert graph_fingerprint(_diamond()) != graph_fingerprint(renamed)

    def test_invariant_under_insertion_reordering(self):
        g = ComputationalGraph()
        # Same diamond, inserted sinks-first with edges added afterwards.
        g.add_op("d", op_type="add", output_bytes=200)
        g.add_op("c", op_type="conv2d", param_bytes=600, output_bytes=300,
                 macs=2000)
        g.add_op("b", op_type="conv2d", param_bytes=400, output_bytes=200,
                 macs=1000)
        g.add_op("a", op_type="input", output_bytes=100)
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        assert structural_fingerprint(g) == structural_fingerprint(_diamond())

    def test_distinguishes_topologies(self):
        g = _diamond()
        g.add_edge("b", "c")
        assert structural_fingerprint(g) != structural_fingerprint(_diamond())

    def test_distinguishes_attributes(self):
        g = _diamond()
        g.node("b").param_bytes = 999
        assert structural_fingerprint(g) != structural_fingerprint(_diamond())

    def test_distinguishes_asymmetric_sizes(self):
        # Two chains with permuted per-node sizes: WL seeds differ.
        def chain(sizes):
            g = ComputationalGraph()
            prev = None
            for i, size in enumerate(sizes):
                g.add_op(f"n{i}", op_type="conv2d", param_bytes=size,
                         inputs=[prev] if prev else [])
                prev = f"n{i}"
            return g

        assert structural_fingerprint(chain([1, 2, 3])) != (
            structural_fingerprint(chain([3, 2, 1]))
        )
