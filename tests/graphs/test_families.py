"""Tests for the compute-profile workload families."""

import pytest

from repro.errors import GraphError
from repro.graphs import ops
from repro.graphs.families import (
    AttentionAugmentedFamily,
    ComputeUniformFamily,
)
from repro.graphs.validate import validate_graph
from repro.tpu.latency import op_compute_seconds
from repro.tpu.spec import default_spec


class TestComputeUniformFamily:
    def test_samples_are_valid_normalized_graphs(self):
        family = ComputeUniformFamily(num_nodes=14, degree=3, seed=1)
        graph = family.sample()
        assert validate_graph(graph) == []
        assert graph.num_nodes == 14
        spec = default_spec()
        for name in graph.node_names:
            node = graph.node(name)
            if node.op_type == ops.INPUT:
                continue
            assert node.op_type == ops.CONV2D
            assert node.param_bytes == family.param_bytes
            # Compute normalized into the configured millisecond range.
            seconds = op_compute_seconds(node, spec)
            assert 0.9e-3 <= seconds <= 2.1e-3

    def test_deterministic_under_seed(self):
        from repro.graphs.fingerprint import graph_fingerprint

        first = ComputeUniformFamily(num_nodes=12, degree=2, seed=7)
        second = ComputeUniformFamily(num_nodes=12, degree=2, seed=7)
        for _ in range(3):
            assert graph_fingerprint(first.sample()) == graph_fingerprint(
                second.sample()
            )

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            ComputeUniformFamily(compute_ms_range=(2.0, 1.0))
        with pytest.raises(GraphError):
            ComputeUniformFamily(output_bytes=0)


class TestAttentionAugmentedFamily:
    def test_hot_heads_have_fixed_names_and_dominant_compute(self):
        family = AttentionAugmentedFamily(
            num_nodes=16, degree=3, seed=2, num_heads=4, head_compute_ms=25.0
        )
        spec = default_spec()
        for _ in range(3):
            graph = family.sample()
            assert validate_graph(graph) == []
            assert graph.num_nodes == 20
            heads = [n for n in graph.node_names if n.startswith("mhsa_")]
            assert sorted(heads) == [f"mhsa_{i}" for i in range(4)]
            for head in heads:
                node = graph.node(head)
                assert graph.parents(head)  # anchored to the backbone
                assert not graph.children(head)  # side branch
                seconds = op_compute_seconds(node, spec)
                assert seconds == pytest.approx(25.0e-3, rel=0.05)

    def test_head_compute_dominates_backbone(self):
        family = AttentionAugmentedFamily(num_nodes=16, degree=3, seed=3)
        spec = default_spec()
        graph = family.sample()
        head = op_compute_seconds(graph.node("mhsa_0"), spec)
        backbone = max(
            op_compute_seconds(graph.node(n), spec)
            for n in graph.node_names
            if not n.startswith("mhsa_")
        )
        assert head > 10 * backbone

    def test_head_validation(self):
        with pytest.raises(GraphError):
            AttentionAugmentedFamily(num_heads=0)
        with pytest.raises(GraphError):
            AttentionAugmentedFamily(head_compute_ms=0.0)
