"""Unit tests for topological analyses."""

import pytest

from repro.errors import GraphError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.topology import (
    alap_levels,
    ancestors,
    asap_levels,
    critical_path,
    descendants,
    graph_depth,
    level_sets,
    mobility,
)


class TestAsapLevels:
    def test_diamond_levels(self, diamond_graph):
        levels = asap_levels(diamond_graph)
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_chain_levels(self, chain_graph):
        levels = asap_levels(chain_graph)
        assert levels == {f"n{i}": i for i in range(6)}

    def test_skip_edge_forces_level(self):
        g = ComputationalGraph()
        g.add_op("a")
        g.add_op("b", inputs=["a"])
        g.add_op("c", inputs=["a", "b"])
        assert asap_levels(g)["c"] == 2


class TestDepth:
    def test_diamond_depth(self, diamond_graph):
        assert graph_depth(diamond_graph) == 2

    def test_single_node_depth(self):
        g = ComputationalGraph()
        g.add_op("only")
        assert graph_depth(g) == 0

    def test_empty_graph_depth(self):
        assert graph_depth(ComputationalGraph()) == 0


class TestAlapAndMobility:
    def test_alap_matches_asap_on_critical_path(self, diamond_graph):
        alap = alap_levels(diamond_graph)
        assert alap["a"] == 0
        assert alap["d"] == 2

    def test_mobility_zero_on_critical_path(self, chain_graph):
        slack = mobility(chain_graph)
        assert all(v == 0 for v in slack.values())

    def test_mobility_positive_off_critical_path(self):
        g = ComputationalGraph()
        g.add_op("a")
        g.add_op("long1", inputs=["a"])
        g.add_op("long2", inputs=["long1"])
        g.add_op("short", inputs=["a"])
        g.add_op("sink", inputs=["long2", "short"])
        assert mobility(g)["short"] == 1

    def test_alap_horizon_too_small_raises(self, chain_graph):
        with pytest.raises(GraphError):
            alap_levels(chain_graph, depth=2)

    def test_alap_extended_horizon(self, diamond_graph):
        alap = alap_levels(diamond_graph, depth=5)
        assert alap["d"] == 5


class TestLevelSetsAndCriticalPath:
    def test_level_sets_partition(self, diamond_graph):
        sets = level_sets(diamond_graph)
        assert sets == [["a"], ["b", "c"], ["d"]]

    def test_critical_path_is_longest(self, chain_graph):
        path = critical_path(chain_graph)
        assert path == [f"n{i}" for i in range(6)]

    def test_critical_path_empty_graph(self):
        assert critical_path(ComputationalGraph()) == []


class TestReachability:
    def test_ancestors(self, diamond_graph):
        assert ancestors(diamond_graph, "d") == {"a", "b", "c"}
        assert ancestors(diamond_graph, "a") == set()

    def test_descendants(self, diamond_graph):
        assert descendants(diamond_graph, "a") == {"b", "c", "d"}
        assert descendants(diamond_graph, "d") == set()
