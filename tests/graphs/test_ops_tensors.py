"""Unit tests for the operator taxonomy and tensor bookkeeping."""

import pytest

from repro.errors import GraphError
from repro.graphs import ops
from repro.graphs.tensors import DTYPE_BYTES, TensorSpec, conv_output_hw


class TestOpTaxonomy:
    def test_parametric_set(self):
        assert ops.is_parametric(ops.CONV2D)
        assert ops.is_parametric(ops.BATCH_NORM)
        assert not ops.is_parametric(ops.ADD)
        assert not ops.is_parametric(ops.INPUT)

    def test_sets_are_subsets_of_all(self):
        assert ops.PARAMETRIC_OPS <= ops.ALL_OP_TYPES
        assert ops.COMPUTE_OPS <= ops.ALL_OP_TYPES
        assert ops.ELEMENTWISE_OPS <= ops.ALL_OP_TYPES

    def test_conv_params(self):
        assert ops.conv2d_params(3, 3, 8, 16, use_bias=True) == 3 * 3 * 8 * 16 + 16
        assert ops.conv2d_params(1, 1, 8, 16, use_bias=False) == 128

    def test_depthwise_params(self):
        assert ops.depthwise_conv2d_params(3, 3, 8, use_bias=True) == 72 + 8

    def test_separable_params(self):
        expected = 3 * 3 * 8 + 8 * 16 + 16
        assert ops.separable_conv2d_params(3, 3, 8, 16, use_bias=True) == expected

    def test_dense_params_and_macs(self):
        assert ops.dense_params(100, 10, use_bias=True) == 1010
        assert ops.dense_macs(100, 10) == 1000

    def test_bn_params(self):
        assert ops.batch_norm_params(64) == 256

    def test_conv_macs(self):
        assert ops.conv2d_macs(4, 4, 3, 3, 2, 8) == 4 * 4 * 9 * 2 * 8


class TestTensorSpec:
    def test_numel_and_nbytes(self):
        spec = TensorSpec((2, 3, 4), "float32")
        assert spec.numel == 24
        assert spec.nbytes == 96

    def test_int8_bytes(self):
        assert TensorSpec((10,), "int8").nbytes == 10

    def test_unknown_dtype_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec((1,), "float128")

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec((0, 3))

    def test_with_dtype(self):
        spec = TensorSpec((4,), "float32").with_dtype("int8")
        assert spec.nbytes == 4

    def test_dtype_bytes_table(self):
        assert DTYPE_BYTES["float32"] == 4
        assert DTYPE_BYTES["int8"] == 1


class TestConvOutput:
    def test_same_padding(self):
        assert conv_output_hw(224, 224, (7, 7), (2, 2), "same") == (112, 112)

    def test_valid_padding(self):
        assert conv_output_hw(224, 224, (7, 7), (2, 2), "valid") == (109, 109)

    def test_valid_kernel_too_large(self):
        with pytest.raises(GraphError):
            conv_output_hw(2, 2, (3, 3), (1, 1), "valid")

    def test_bad_padding_mode(self):
        with pytest.raises(GraphError):
            conv_output_hw(8, 8, (3, 3), (1, 1), "reflect")

    def test_bad_strides(self):
        with pytest.raises(GraphError):
            conv_output_hw(8, 8, (3, 3), (0, 1), "same")
