"""Unit tests for graph validation."""

import pytest

from repro.errors import GraphError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.validate import assert_valid_graph, validate_graph


def test_empty_graph_invalid():
    assert validate_graph(ComputationalGraph()) == ["graph has no nodes"]


def test_valid_graph_empty_issue_list(diamond_graph):
    assert validate_graph(diamond_graph) == []
    assert_valid_graph(diamond_graph)


def test_cycle_reported():
    g = ComputationalGraph()
    g.add_op("a")
    g.add_op("b", inputs=["a"])
    g.add_edge("b", "a")
    issues = validate_graph(g)
    assert any("cycle" in issue for issue in issues)


def test_multiple_sources_flagged_when_single_required():
    g = ComputationalGraph()
    g.add_op("in1")
    g.add_op("in2")
    g.add_op("sink", inputs=["in1", "in2"])
    assert validate_graph(g) == []
    issues = validate_graph(g, require_single_source=True)
    assert any("single source" in issue for issue in issues)


def test_unknown_op_type_flagged():
    g = ComputationalGraph()
    g.add_op("a", op_type="warp_drive")
    issues = validate_graph(g, require_known_ops=True)
    assert any("warp_drive" in issue for issue in issues)


def test_assert_valid_raises_with_details():
    g = ComputationalGraph()
    g.add_op("a", op_type="warp_drive")
    with pytest.raises(GraphError, match="warp_drive"):
        assert_valid_graph(g, require_known_ops=True)
