"""Unit tests for the computational-graph data structure."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graphs.dag import ComputationalGraph, OpNode


class TestOpNode:
    def test_rejects_empty_name(self):
        with pytest.raises(GraphError):
            OpNode(name="")

    def test_rejects_negative_resources(self):
        with pytest.raises(GraphError):
            OpNode(name="x", param_bytes=-1)
        with pytest.raises(GraphError):
            OpNode(name="x", output_bytes=-5)
        with pytest.raises(GraphError):
            OpNode(name="x", macs=-2)

    def test_copy_is_independent(self):
        node = OpNode(name="x", attrs={"k": 1})
        clone = node.copy()
        clone.attrs["k"] = 2
        assert node.attrs["k"] == 1


class TestConstruction:
    def test_add_node_and_lookup(self):
        g = ComputationalGraph()
        g.add_node(OpNode(name="a", param_bytes=10))
        assert "a" in g
        assert g.node("a").param_bytes == 10

    def test_duplicate_node_rejected(self):
        g = ComputationalGraph()
        g.add_op("a")
        with pytest.raises(GraphError):
            g.add_op("a")

    def test_unknown_node_lookup_raises(self):
        g = ComputationalGraph()
        with pytest.raises(GraphError):
            g.node("ghost")

    def test_add_edge_requires_existing_endpoints(self):
        g = ComputationalGraph()
        g.add_op("a")
        with pytest.raises(GraphError):
            g.add_edge("a", "missing")
        with pytest.raises(GraphError):
            g.add_edge("missing", "a")

    def test_self_loop_rejected(self):
        g = ComputationalGraph()
        g.add_op("a")
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        g = ComputationalGraph()
        g.add_op("a")
        g.add_op("b", inputs=["a"])
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_add_op_wires_inputs(self, diamond_graph):
        assert diamond_graph.parents("d") == ["b", "c"]
        assert diamond_graph.children("a") == ["b", "c"]


class TestAccessors:
    def test_counts(self, diamond_graph):
        assert diamond_graph.num_nodes == 4
        assert diamond_graph.num_edges == 4
        assert len(diamond_graph) == 4

    def test_insertion_order_preserved(self, diamond_graph):
        assert diamond_graph.node_names == ["a", "b", "c", "d"]

    def test_degrees(self, diamond_graph):
        assert diamond_graph.in_degree("d") == 2
        assert diamond_graph.out_degree("a") == 2
        assert diamond_graph.max_in_degree == 2

    def test_sources_and_sinks(self, diamond_graph):
        assert diamond_graph.sources == ["a"]
        assert diamond_graph.sinks == ["d"]

    def test_edges_iteration(self, diamond_graph):
        assert set(diamond_graph.edges()) == {
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
        }

    def test_index_maps(self, diamond_graph):
        assert diamond_graph.index_of("c") == 2
        index = diamond_graph.build_index()
        assert index == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_resource_totals(self, diamond_graph):
        assert diamond_graph.total_param_bytes == 1000
        assert diamond_graph.total_output_bytes == 800
        assert diamond_graph.total_macs == 3000


class TestTopologicalOrder:
    def test_respects_dependencies(self, diamond_graph):
        order = diamond_graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        g = ComputationalGraph()
        g.add_op("a")
        g.add_op("b", inputs=["a"])
        g.add_edge("b", "a")
        assert not g.is_dag()
        with pytest.raises(CycleError):
            g.topological_order()

    def test_assert_acyclic_on_dag(self, diamond_graph):
        diamond_graph.assert_acyclic()  # must not raise


class TestDerivedGraphs:
    def test_copy_is_deep(self, diamond_graph):
        clone = diamond_graph.copy()
        clone.node("b").param_bytes = 999
        assert diamond_graph.node("b").param_bytes == 400
        assert clone.num_edges == diamond_graph.num_edges

    def test_subgraph_induced_edges(self, diamond_graph):
        sub = diamond_graph.subgraph(["a", "b", "d"])
        assert sub.num_nodes == 3
        assert set(sub.edges()) == {("a", "b"), ("b", "d")}

    def test_subgraph_unknown_node_rejected(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.subgraph(["a", "ghost"])
