"""Unit + property tests for the synthetic DAG sampler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.sampler import SyntheticDAGSampler, sample_synthetic_dag
from repro.graphs.validate import validate_graph


class TestSamplerConfig:
    def test_rejects_tiny_graphs(self):
        with pytest.raises(GraphError):
            SyntheticDAGSampler(num_nodes=1)

    def test_rejects_zero_degree(self):
        with pytest.raises(GraphError):
            SyntheticDAGSampler(degree=0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(GraphError):
            SyntheticDAGSampler(param_bytes_range=(100, 10))
        with pytest.raises(GraphError):
            SyntheticDAGSampler(chain_bias=1.5)


class TestSamplerOutput:
    def test_node_count(self, small_sampler):
        g = small_sampler.sample()
        assert g.num_nodes == 10

    def test_is_valid_single_source_dag(self, small_sampler):
        for _ in range(10):
            g = small_sampler.sample()
            assert validate_graph(g, require_single_source=True) == []

    def test_max_degree_respected_and_attained(self):
        sampler = SyntheticDAGSampler(num_nodes=30, degree=4, seed=5)
        for _ in range(10):
            g = sampler.sample()
            assert g.max_in_degree == 4

    def test_reproducible_with_seed(self):
        g1 = sample_synthetic_dag(num_nodes=15, degree=3, seed=99)
        g2 = sample_synthetic_dag(num_nodes=15, degree=3, seed=99)
        assert g1.node_names == g2.node_names
        assert list(g1.edges()) == list(g2.edges())
        assert [n.param_bytes for n in g1.nodes] == [n.param_bytes for n in g2.nodes]

    def test_different_seeds_differ(self):
        g1 = sample_synthetic_dag(num_nodes=15, degree=3, seed=1)
        g2 = sample_synthetic_dag(num_nodes=15, degree=3, seed=2)
        assert list(g1.edges()) != list(g2.edges())

    def test_memory_attributes_present(self, small_sampler):
        g = small_sampler.sample()
        assert any(n.param_bytes > 0 for n in g.nodes)
        assert all(n.output_bytes > 0 for n in g.nodes)

    def test_batch_and_stream(self, small_sampler):
        batch = small_sampler.sample_batch(3)
        assert len(batch) == 3
        names = {g.name for g in batch}
        assert len(names) == 3  # unique graph names
        stream = small_sampler.stream()
        assert next(stream).num_nodes == 10


@settings(max_examples=20, deadline=None)
@given(
    num_nodes=st.integers(min_value=5, max_value=40),
    degree=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_sampled_graphs_always_valid_dags(num_nodes, degree, seed):
    """Property: every sampled graph is a connected single-source DAG with
    max in-degree bounded by the requested degree."""
    graph = sample_synthetic_dag(num_nodes=num_nodes, degree=degree, seed=seed)
    assert graph.num_nodes == num_nodes
    assert graph.max_in_degree <= degree
    assert validate_graph(graph, require_single_source=True) == []
