"""Unit tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graphs.io import (
    from_networkx,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
    to_dot,
    to_networkx,
)


class TestJsonRoundTrip:
    def test_dict_round_trip(self, diamond_graph):
        data = graph_to_dict(diamond_graph)
        restored = graph_from_dict(data)
        assert restored.node_names == diamond_graph.node_names
        assert list(restored.edges()) == list(diamond_graph.edges())
        assert restored.node("b").param_bytes == 400

    def test_file_round_trip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        restored = load_graph(path)
        assert restored.name == diamond_graph.name
        assert restored.num_edges == diamond_graph.num_edges

    def test_bad_version_rejected(self, diamond_graph):
        data = graph_to_dict(diamond_graph)
        data["format_version"] = 999
        with pytest.raises(GraphError):
            graph_from_dict(data)


class TestNetworkxBridge:
    def test_round_trip(self, diamond_graph):
        nx_graph = to_networkx(diamond_graph)
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.nodes["b"]["param_bytes"] == 400
        back = from_networkx(nx_graph, name="roundtrip")
        assert set(back.edges()) == set(diamond_graph.edges())


class TestDot:
    def test_dot_contains_nodes_and_edges(self, diamond_graph):
        dot = to_dot(diamond_graph)
        assert '"a" -> "b";' in dot
        assert dot.startswith("digraph")
        assert "conv2d" in dot
