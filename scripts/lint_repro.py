#!/usr/bin/env python3
"""Run the repo's AST invariant linter (:mod:`repro.analysis`).

Checks the conventions the serving stack's correctness rests on — lock
discipline, deterministic-zone purity, wire-format compatibility,
exception boundaries, telemetry naming, resource lifecycles — and exits
non-zero when a finding is not covered by the checked-in baseline.

Usage::

    PYTHONPATH=src python scripts/lint_repro.py              # gate (CI)
    PYTHONPATH=src python scripts/lint_repro.py --json       # machine output
    PYTHONPATH=src python scripts/lint_repro.py --update-baseline
    PYTHONPATH=src python scripts/lint_repro.py --rule determinism src/repro/scheduling
    PYTHONPATH=src python scripts/lint_repro.py --list-rules

The baseline (default ``lint_baseline.json`` at the repo root) records
accepted pre-existing findings as line-independent fingerprints; the
gate fails only on findings beyond it.  ``--update-baseline`` rewrites
the file from the current run (pruning fixed entries), which is the one
sanctioned way to grow the debt ledger — review the diff.

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage or
baseline-file errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    Baseline,
    Project,
    load_rules,
    partition,
    run_project,
)

DEFAULT_BASELINE = REPO_ROOT / "lint_baseline.json"

#: Output shape version for ``--json`` consumers (tests/tooling pins it).
JSON_VERSION = 1


def _collect_paths(targets):
    paths = []
    for target in targets:
        target = Path(target)
        if not target.is_absolute():
            target = REPO_ROOT / target
        if target.is_dir():
            paths.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            paths.append(target)
        else:
            raise SystemExit(f"not a python file or directory: {target}")
    return paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and gate on every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    rules = load_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id:20s} {rule.description}")
        return 0
    if args.rule:
        known = {rule.id for rule in rules}
        unknown = set(args.rule) - known
        if unknown:
            print(
                f"unknown rule id(s) {sorted(unknown)}; known: "
                f"{sorted(known)}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in set(args.rule)]

    project = Project.load(REPO_ROOT, _collect_paths(args.paths))
    findings = run_project(project, rules)

    if args.update_baseline:
        Baseline.from_findings(findings).write(args.baseline)
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{args.baseline}"
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    new, baselined, stale = partition(findings, baseline)

    if args.json:
        print(
            json.dumps(
                {
                    "version": JSON_VERSION,
                    "root": str(project.root),
                    "rules": [
                        {"id": rule.id, "description": rule.description}
                        for rule in rules
                    ],
                    "files_checked": len(project.files),
                    "findings": [finding.to_dict() for finding in findings],
                    "new": [finding.to_dict() for finding in new],
                    "baselined_count": len(baselined),
                    "stale_baseline_fingerprints": stale,
                    "exit_code": 1 if new else 0,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if new else 0

    for finding in new:
        print(finding.format())
    summary = (
        f"{len(project.files)} file(s): {len(new)} new finding(s), "
        f"{len(baselined)} baselined"
    )
    if stale:
        summary += (
            f", {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} "
            "(fixed code — rerun with --update-baseline to prune)"
        )
    print(summary)
    if new:
        print(
            "new invariant violations: fix them, annotate the sanctioned "
            "escape hatch, or (for accepted debt) --update-baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
