#!/usr/bin/env python3
"""Compact a :class:`DiskScheduleStore` directory offline.

The store's segment log is append-only: superseded entry versions,
invalidated (tombstoned) groups and the tombstones themselves stay on
disk as dead bytes until a compaction pass rewrites the live entries
into fresh segments.  Run this against a store directory no service is
currently holding open (compaction is in-process, not cross-process).

Usage::

    PYTHONPATH=src python scripts/compact_store.py STORE_DIR          # compact
    PYTHONPATH=src python scripts/compact_store.py STORE_DIR --stats  # inspect only
    PYTHONPATH=src python scripts/compact_store.py STORE_DIR --json   # machine output

Exits 0 on success (including the nothing-to-reclaim case), 2 on a
missing/invalid store directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", help="DiskScheduleStore root directory")
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print store stats and exit without compacting",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    args = parser.parse_args(argv)

    root = Path(args.directory)
    if not (root / "segments").is_dir():
        print(
            f"error: {root} is not a DiskScheduleStore directory "
            "(no segments/ subdirectory)",
            file=sys.stderr,
        )
        return 2

    from repro.service.store import DiskScheduleStore

    with DiskScheduleStore(root) as store:
        if args.stats:
            payload = asdict(store.stats())
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                for name, value in sorted(payload.items()):
                    print(f"{name:>24}: {value}")
            return 0
        result = store.compact()

    payload = asdict(result)
    payload["bytes_reclaimed"] = result.bytes_reclaimed
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"compacted {root}: {result.segments_before} -> "
            f"{result.segments_after} segments, "
            f"{result.entries_live} live entries "
            f"({result.entries_dropped} dropped), "
            f"{result.bytes_before} -> {result.bytes_after} bytes "
            f"({result.bytes_reclaimed} reclaimed)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
