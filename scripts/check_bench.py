#!/usr/bin/env python3
"""Validate every ``BENCH_*.json`` artifact against the shared schema.

Each benchmark writes a machine-readable twin of its rendered table via
:func:`benchmarks.bench_json.write_bench_json`, so the perf trajectory
can be tracked across PRs by tooling.  This checker keeps those
artifacts honest: CI fails when one goes missing a required field,
mismatches its filename, or carries non-JSON-native metric values.

Schema (shared by all benches):

* ``bench``        — non-empty string equal to the ``<name>`` in the
  ``BENCH_<name>.json`` filename;
* ``metrics``      — dict of metric name -> number/string/bool/null
  (nested dicts/lists of the same allowed);
* ``git_rev``      — string or null (outside a git checkout);
* ``seed``         — integer or null;
* ``created_unix`` — positive number;
* ``host``         — *optional* dict describing the measuring machine
  (e.g. ``cpu_count``, per-regime CPU utilization); same value rules as
  ``metrics``.

Usage::

    python scripts/check_bench.py            # validate repo-root BENCH_*.json
    python scripts/check_bench.py --list     # also print each bench's metrics
    python scripts/check_bench.py FILE...    # validate specific files

Exits non-zero on the first schema violation (all files are still
reported).  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List

REPO_ROOT = Path(__file__).resolve().parent.parent

REQUIRED_FIELDS = ("bench", "metrics", "git_rev", "seed", "created_unix")

#: Fields a bench may carry beyond the required set.
OPTIONAL_FIELDS = ("host",)

#: JSON-native leaf types allowed inside ``metrics``.
_METRIC_LEAVES = (bool, int, float, str, type(None))

#: Per-bench required metric fields: benches listed here must carry
#: these keys as finite numbers in ``metrics``.  Keeps load-bearing
#: artifacts (ones whose numbers gate acceptance criteria) from
#: silently dropping the fields tooling tracks across PRs.
BENCH_REQUIRED_METRICS = {
    "schedule_store": (
        "cold_first_n_s",
        "warm_first_n_s",
        "warm_speedup",
        "num_requests",
        "restored_entries",
    ),
    "observability": (
        "unsampled_p50_overhead_frac",
        "sampled_p50_overhead_frac",
        "full_p50_overhead_frac",
        "metrics_only_p50_s",
        "counter_inc_ns",
        "histogram_observe_ns",
        "num_requests",
    ),
    "portfolio": (
        "num_graphs",
        "quality_ratio_1ms",
        "quality_ratio_5ms",
        "quality_ratio_25ms",
        "quality_ratio_100ms",
        "policy_quality_ratio",
        "front_points_mean",
        "fault_answer_ms_max",
    ),
}


def _metric_value_errors(name: str, value: object) -> List[str]:
    """Validate one metrics entry (nested containers allowed)."""
    if isinstance(value, _METRIC_LEAVES):
        return []
    if isinstance(value, list):
        return [
            err
            for i, item in enumerate(value)
            for err in _metric_value_errors(f"{name}[{i}]", item)
        ]
    if isinstance(value, dict):
        errors = []
        for key, item in value.items():
            if not isinstance(key, str):
                errors.append(f"metrics key {name}.{key!r} is not a string")
            errors.extend(_metric_value_errors(f"{name}.{key}", item))
        return errors
    return [
        f"metrics[{name!r}] has non-JSON-native type "
        f"{type(value).__name__}"
    ]


def validate_bench_file(path: Path) -> List[str]:
    """All schema violations of one ``BENCH_*.json`` (empty = valid)."""
    errors: List[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]

    for field in REQUIRED_FIELDS:
        if field not in payload:
            errors.append(f"missing required field {field!r}")
    unknown = set(payload) - set(REQUIRED_FIELDS) - set(OPTIONAL_FIELDS)
    if unknown:
        errors.append(f"unknown fields {sorted(unknown)}")

    bench = payload.get("bench")
    if "bench" in payload:
        if not isinstance(bench, str) or not bench:
            errors.append(f"bench must be a non-empty string, got {bench!r}")
        else:
            expected = f"BENCH_{bench}.json"
            if path.name != expected:
                errors.append(
                    f"bench name {bench!r} does not match filename "
                    f"(expected {expected})"
                )

    if "metrics" in payload:
        metrics = payload["metrics"]
        if not isinstance(metrics, dict):
            errors.append(
                f"metrics must be an object, got {type(metrics).__name__}"
            )
        else:
            for name, value in metrics.items():
                errors.extend(_metric_value_errors(name, value))
            required = BENCH_REQUIRED_METRICS.get(
                bench if isinstance(bench, str) else "", ()
            )
            for name in required:
                value = metrics.get(name)
                if name not in metrics:
                    errors.append(
                        f"bench {bench!r} requires metric {name!r}"
                    )
                elif isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    errors.append(
                        f"required metric {name!r} must be a number, "
                        f"got {value!r}"
                    )

    if "git_rev" in payload:
        git_rev = payload["git_rev"]
        if git_rev is not None and (
            not isinstance(git_rev, str) or not git_rev
        ):
            errors.append(
                f"git_rev must be a non-empty string or null, got {git_rev!r}"
            )

    if "seed" in payload:
        seed = payload["seed"]
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            errors.append(f"seed must be an integer or null, got {seed!r}")

    if "host" in payload:
        host = payload["host"]
        if not isinstance(host, dict):
            errors.append(
                f"host must be an object, got {type(host).__name__}"
            )
        else:
            for name, value in host.items():
                errors.extend(_metric_value_errors(f"host.{name}", value))

    if "created_unix" in payload:
        created = payload["created_unix"]
        if (
            isinstance(created, bool)
            or not isinstance(created, (int, float))
            or created <= 0
        ):
            errors.append(
                f"created_unix must be a positive number, got {created!r}"
            )
    return errors


def check_files(paths: Iterable[Path], show: bool = False) -> int:
    """Validate each path; print a per-file verdict; return exit code."""
    paths = list(paths)
    if not paths:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    failed = 0
    for path in sorted(paths):
        errors = validate_bench_file(path)
        if errors:
            failed += 1
            print(f"FAIL {path.name}")
            for error in errors:
                print(f"  - {error}")
            continue
        print(f"ok   {path.name}")
        if show:
            payload = json.loads(path.read_text())
            for name in sorted(payload["metrics"]):
                print(f"       {name} = {payload['metrics'][name]}")
    if failed:
        print(
            f"{failed}/{len(paths)} benchmark artifact(s) violate the "
            "schema",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(paths)} benchmark artifact(s) schema-valid")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="specific BENCH_*.json files (default: repo-root glob)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print each valid bench's metrics",
    )
    args = parser.parse_args(argv)
    paths = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    return check_files(paths, show=args.list)


if __name__ == "__main__":
    raise SystemExit(main())
