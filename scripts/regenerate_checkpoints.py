#!/usr/bin/env python3
"""Regenerate the pretrained checkpoints shipped with the package.

Replays every registered training recipe (or a named subset) with its
embedded seeds and writes the ``<name>.npz`` + ``<name>.json`` pairs —
including versioned metadata and provenance — into
``src/repro/rl/pretrained`` (override with ``--out``).  The recipes are
deterministic end to end, so a regenerated artifact reproduces the
committed one on the same platform.

Usage::

    PYTHONPATH=src python scripts/regenerate_checkpoints.py
    PYTHONPATH=src python scripts/regenerate_checkpoints.py \
        --names respect_small --out /tmp/ckpts
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.rl.checkpoints import (  # noqa: E402
    PRETRAINED_DIR,
    available_checkpoints,
    get_checkpoint_spec,
    load_checkpoint,
    train_checkpoint,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--names",
        nargs="*",
        default=None,
        help="checkpoint names to regenerate (default: every registered one)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=PRETRAINED_DIR,
        help=f"output directory (default: {PRETRAINED_DIR})",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    names = args.names if args.names else available_checkpoints()
    for name in names:
        spec = get_checkpoint_spec(name)
        print(f"[{name}] {spec.description}")
        start = time.perf_counter()
        policy = train_checkpoint(name, directory=args.out)
        elapsed = time.perf_counter() - start
        print(
            f"[{name}] trained {policy.num_parameters()} parameters "
            f"in {elapsed:.1f}s -> {args.out / name}.npz (+ .json)"
        )
        # Round-trip through the validated loader as a self-check.
        load_checkpoint(args.out, name)
        print(f"[{name}] reload + validation OK")


if __name__ == "__main__":
    main()
