#!/usr/bin/env python3
"""Online adaptation walkthrough: detect drift -> fine-tune -> promote.

A served policy is only as good as the traffic it was trained for.  This
demo stands an :class:`repro.online.AdaptationLoop` next to a live
:class:`repro.service.SchedulingService` and walks the full closed loop:

1. **serve** compute-uniform CNN graphs — the comfortable regime; every
   serve is recorded (with its pipeline-latency reward) and observed by
   the drift detector;
2. **drift** — the workload shifts to attention-heavy graphs whose hot
   ``mhsa`` branches dominate the pipeline period; the frozen champion's
   decode orders collide the heads and its reward collapses, and the
   Page-Hinkley test over structural fingerprints + shape statistics
   raises a drift event;
3. **fine-tune** — a challenger copy of the champion is trained on the
   drifted traffic (self-labeled by the latency teacher, imitation +
   REINFORCE polish);
4. **promote** — the challenger shadow-plays the champion on held-out
   drifted graphs; being statistically better, it is checkpointed (with
   the drift event in its provenance) and hot-swapped into the service;
5. **verify** — post-promotion serves recover the pre-drift schedule
   quality, and the promoted checkpoint is reloadable through
   ``repro.rl.checkpoints``.

Usage::

    PYTHONPATH=src python examples/online_adaptation.py
"""

from __future__ import annotations

import statistics
import tempfile
from pathlib import Path

from repro.graphs.families import (
    AttentionAugmentedFamily,
    ComputeUniformFamily,
)
from repro.online import (
    AdaptationConfig,
    AdaptationLoop,
    DriftDetector,
    ExperienceBuffer,
    default_reward_model,
)
from repro.rl.checkpoints import load_checkpoint, read_metadata
from repro.rl.respect import RespectScheduler
from repro.service import SchedulingService

NUM_STAGES = 4
PRE_SERVES = 30
POST_SERVES = 40


def main() -> None:
    reward_model = default_reward_model()
    pre_family = ComputeUniformFamily(num_nodes=24, degree=3, seed=11)
    post_family = AttentionAugmentedFamily(num_nodes=24, degree=3, seed=22)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="respect-online-"))

    service = SchedulingService(RespectScheduler(), batch_window_s=0.0)
    loop = AdaptationLoop(
        service,
        buffer=ExperienceBuffer(capacity=256, seed=0),
        detector=DriftDetector(
            reference_size=24, window_size=14, threshold=1.8
        ),
        config=AdaptationConfig(
            max_adaptation_graphs=32,
            fresh_graphs=16,
            imitation_steps=300,
            reinforce_steps=10,
            checkpoint_dir=checkpoint_dir,
            seed=0,
        ),
        reward_model=reward_model,
        # Fresh drifted graphs for fine-tuning, straight from the live
        # distribution (the buffer supplies the already-served ones).
        graph_source=lambda count: post_family.sample_batch(count),
    ).attach()

    def serve(family) -> float:
        graph = family.sample()
        result = service.schedule(graph, NUM_STAGES)
        return reward_model.reward(graph, result.schedule)

    # 1. comfortable traffic -------------------------------------------
    pre_rewards = [serve(pre_family) for _ in range(PRE_SERVES)]
    print(
        f"pre-drift:  {PRE_SERVES} serves, mean pipeline-efficiency "
        f"reward {statistics.mean(pre_rewards):.3f}"
    )

    # 2. the workload drifts -------------------------------------------
    drifted_rewards = []
    while loop.pending_event is None:
        drifted_rewards.append(serve(post_family))
    event = loop.pending_event
    print(
        f"drift detected after {len(drifted_rewards)} drifted serves "
        f"(novelty {event.novelty_rate:.2f}, window mean |V| "
        f"{event.window_mean_nodes:.1f}); frozen reward so far "
        f"{statistics.mean(drifted_rewards):.3f}"
    )
    # let a representative drifted window accumulate while "fine-tuning
    # is pending" (a live deployment keeps serving during adaptation)
    for _ in range(16):
        drifted_rewards.append(serve(post_family))

    # 3 + 4. fine-tune a challenger, gate it, hot-swap -----------------
    report = loop.run_pending()
    evaluation = report.evaluation
    print(
        f"adaptation [{report.status}]: teacher reward "
        f"{report.teacher_mean_reward:.3f}, shadow eval champion "
        f"{evaluation.champion_mean:.3f} vs challenger "
        f"{evaluation.challenger_mean:.3f} (z={evaluation.z_score:.2f})"
    )
    assert report.promotion is not None, "challenger should promote"
    print(
        f"promoted: {report.promotion.checkpoint_path} "
        f"({report.promotion.invalidated_entries} stale cache entries "
        f"invalidated, service swaps={service.stats().swaps})"
    )

    # 5. verify recovery + provenance ----------------------------------
    recovered = [serve(post_family) for _ in range(POST_SERVES)]
    print(
        f"post-promotion: {POST_SERVES} serves, mean reward "
        f"{statistics.mean(recovered):.3f} "
        f"(pre-drift was {statistics.mean(pre_rewards):.3f})"
    )
    policy = load_checkpoint(checkpoint_dir, report.promotion.checkpoint_name)
    meta = read_metadata(checkpoint_dir, report.promotion.checkpoint_name)
    drift_provenance = meta["online_adaptation"]["drift_event"]
    print(
        f"checkpoint reloaded: {policy.num_parameters()} parameters, "
        f"drift recorded at observation "
        f"{drift_provenance['at_observation']}"
    )
    service.close()


if __name__ == "__main__":
    main()
