#!/usr/bin/env python3
"""Anytime scheduling: race solver lanes under a wall-clock deadline.

``AnytimePortfolio`` runs the list scheduler, the learned RESPECT
policy, force-directed, simulated annealing and branch-and-bound
concurrently, cancels the stragglers cooperatively when the deadline
fires, and answers from the best schedule found so far.  This example
sweeps one graph across deadline budgets and prints which lane won at
each budget, then extracts the multi-objective Pareto front the solver
suite spans on the same graph.

Usage::

    PYTHONPATH=src python examples/anytime_portfolio.py
"""

from __future__ import annotations

from repro.graphs.sampler import sample_synthetic_dag
from repro.portfolio import AnytimePortfolio, pareto_front
from repro.rl.respect import RespectScheduler
from repro.tpu.quantize import quantize_graph

NUM_NODES = 30
NUM_STAGES = 4
BUDGETS_MS = (1.0, 5.0, 25.0, 100.0, 1000.0)


def main() -> None:
    graph = quantize_graph(
        sample_synthetic_dag(num_nodes=NUM_NODES, degree=3, seed=7)
    )
    portfolio = AnytimePortfolio(policy=RespectScheduler(), seed=0)

    print(f"deadline sweep on {graph.name!r} (|V|={NUM_NODES}, "
          f"{NUM_STAGES} stages):\n")
    print(f"{'budget':>10}  {'winner':<16} {'objective':>14}  "
          f"{'complete':<8} lanes finished")
    for budget_ms in BUDGETS_MS:
        result = portfolio.schedule_with_deadline(graph, NUM_STAGES, budget_ms)
        extras = result.extras
        print(
            f"{budget_ms:>8.0f}ms  {extras['winning_lane']:<16} "
            f"{result.objective:>14.1f}  "
            f"{str(extras['anytime_complete']):<8} "
            f"{len(extras['lanes_completed'])}/{extras['lanes_total']}"
        )

    # The full-budget race also leaves an improvement trace: the
    # best-so-far answer at any moment of the race.
    result = portfolio.schedule_with_deadline(graph, NUM_STAGES, 1000.0)
    print("\nimprovement trace of the 1000 ms race:")
    for lane, ms, objective in result.extras["improvement_trace"]:
        print(f"  {ms:>8.1f} ms  {lane:<16} objective {objective:.1f}")

    front = pareto_front(graph, NUM_STAGES)
    print(f"\nPareto front over the solver suite "
          f"({len(front.candidates)} candidates, "
          f"{len(front.points)} non-dominated):")
    for row in front.summary():
        print(
            f"  {row['method']:<18} period {row['period_us']:>8.1f} us  "
            f"latency {row['latency_us']:>8.1f} us  "
            f"energy {row['energy_mj']:>7.3f} mJ  "
            f"sram reload {row['sram_reload_bytes']:>10} B"
        )


if __name__ == "__main__":
    main()
