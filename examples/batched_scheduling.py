#!/usr/bin/env python3
"""Batched scheduling: amortize RESPECT's network cost over many DAGs.

A scheduling service rarely sees one graph at a time — it sees bursts of
requests for different models.  ``RespectScheduler.schedule_batch`` pads
every encoder queue into one ``[B, N, F]`` tensor, runs a single masked
greedy decode for the whole burst, and packs/post-processes per graph.
Schedules are identical to per-graph ``schedule()`` calls; only the
wall-clock changes.

Usage::

    PYTHONPATH=src python examples/batched_scheduling.py
"""

from __future__ import annotations

import time

from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.respect import RespectScheduler

BATCH_SIZE = 32
NUM_STAGES = 4


def main() -> None:
    scheduler = RespectScheduler()
    # A mixed-size burst: the padding/masking handles heterogeneity.
    graphs = [
        sample_synthetic_dag(num_nodes=20 + (seed % 4) * 5, degree=3, seed=seed)
        for seed in range(BATCH_SIZE)
    ]
    scheduler.schedule(graphs[0], NUM_STAGES)  # warm the inference path

    start = time.perf_counter()
    sequential = [scheduler.schedule(g, NUM_STAGES) for g in graphs]
    seq_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = scheduler.schedule_batch(graphs, NUM_STAGES)
    batch_seconds = time.perf_counter() - start

    identical = all(
        a.schedule.assignment == b.schedule.assignment
        for a, b in zip(sequential, batched)
    )
    print(f"batch of {BATCH_SIZE} graphs, {NUM_STAGES}-stage pipelines")
    print(f"  sequential : {seq_seconds * 1e3:7.1f} ms "
          f"({BATCH_SIZE / seq_seconds:5.0f} graphs/s)")
    print(f"  batched    : {batch_seconds * 1e3:7.1f} ms "
          f"({BATCH_SIZE / batch_seconds:5.0f} graphs/s)")
    print(f"  speedup    : {seq_seconds / batch_seconds:.2f}x")
    print(f"  schedules identical: {identical}")


if __name__ == "__main__":
    main()
