#!/usr/bin/env python3
"""Sharded serving walkthrough: fan-out, backpressure, async, hot-swap.

One :class:`~repro.service.SchedulingService` is a single solver worker.
:class:`~repro.service.ShardedSchedulingService` is the production
shape: N independent shards (each with its own fingerprint cache,
micro-batcher and hot-swap slot) behind a consistent-hash router keyed
by graph fingerprint, with bounded admission per shard.  This demo
walks the four capabilities in order:

1. **fan-out + equivalence** — a 32-client burst over 4 shards, with
   every served schedule bit-identical to a direct scheduler call;
2. **admission control** — the same burst against depth-limited shards
   under each policy (``block`` waits, ``shed`` raises
   ``ServiceOverloadError``, ``degrade`` answers inline from a
   heuristic fallback);
3. **async facade** — ``await service.asubmit(...)`` from an asyncio
   application, futures bridged from the thread tier;
4. **per-shard hot swap** — a new policy version installed shard by
   shard while traffic flows, with the retired version's cache entries
   evicted tier-wide.

Usage::

    PYTHONPATH=src python examples/sharded_serving.py
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ServiceOverloadError
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.respect import RespectScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.service import ShardedSchedulingService

NUM_CLIENTS = 32
NUM_MODELS = 24
NUM_STAGES = 4
NUM_SHARDS = 4


def burst(service, workload):
    with ThreadPoolExecutor(NUM_CLIENTS) as pool:
        futures = [
            pool.submit(service.schedule, graph, NUM_STAGES)
            for graph in workload
        ]
        return [future.result() for future in futures]


def main() -> None:
    scheduler = RespectScheduler()
    models = [
        sample_synthetic_dag(num_nodes=14 + (seed % 3) * 4, degree=3, seed=seed)
        for seed in range(NUM_MODELS)
    ]
    scheduler.schedule(models[0], NUM_STAGES)  # warm the inference path
    direct = {id(g): scheduler.schedule(g, NUM_STAGES) for g in models}

    # -- 1. fan-out across 4 shards ------------------------------------
    with ShardedSchedulingService(scheduler, num_shards=NUM_SHARDS) as service:
        start = time.perf_counter()
        served = burst(service, models)
        elapsed = time.perf_counter() - start
        stats = service.stats()
        identical = all(
            s.schedule.assignment == direct[id(g)].schedule.assignment
            for s, g in zip(served, models)
        )
        print(f"1. {len(models)} models over {NUM_SHARDS} shards: "
              f"{elapsed * 1e3:.1f} ms ({len(models) / elapsed:.0f} req/s), "
              f"identical={identical}")
        print(f"   per-shard requests: "
              f"{[s.requests for s in stats.per_shard]} "
              f"(consistent-hash routing by graph fingerprint)")

    # -- 2. admission control ------------------------------------------
    print(f"2. admission at depth 2 per shard, {NUM_CLIENTS} clients:")
    with ShardedSchedulingService(
        scheduler, num_shards=NUM_SHARDS, max_queue_depth=2,
        admission="block",
    ) as service:
        burst(service, models)
        print(f"   block   -> every request served; "
              f"{service.stats().blocked} submits waited for a drain")
    with ShardedSchedulingService(
        scheduler, num_shards=NUM_SHARDS, max_queue_depth=2,
        admission="shed",
    ) as service:
        served_ok = 0
        shed = 0
        with ThreadPoolExecutor(NUM_CLIENTS) as pool:
            def try_one(graph):
                try:
                    service.schedule(graph, NUM_STAGES)
                    return True
                except ServiceOverloadError:
                    return False
            outcomes = list(pool.map(try_one, models))
        served_ok = sum(outcomes)
        shed = len(outcomes) - served_ok
        print(f"   shed    -> {served_ok} served, {shed} rejected with "
              f"ServiceOverloadError (caller retries)")
    with ShardedSchedulingService(
        scheduler, num_shards=NUM_SHARDS, max_queue_depth=2,
        admission="degrade", fallback_scheduler=ListScheduler(),
    ) as service:
        results = burst(service, models)
        degraded = sum(bool(r.extras.get("degraded")) for r in results)
        print(f"   degrade -> every request answered; {degraded} by the "
              f"ListScheduler fallback (bounded latency, lower quality)")

    # -- 3. async facade ------------------------------------------------
    async def async_app(service):
        results = await asyncio.gather(
            *[service.asubmit(g, NUM_STAGES) for g in models[:8]]
        )
        return sum(
            r.schedule.assignment == direct[id(g)].schedule.assignment
            for r, g in zip(results, models[:8])
        )

    with ShardedSchedulingService(scheduler, num_shards=NUM_SHARDS) as service:
        matched = asyncio.run(async_app(service))
        print(f"3. asyncio facade: {matched}/8 awaited results identical "
              f"to direct calls")

    # -- 4. per-shard hot swap ------------------------------------------
    # A real promotion installs *different* weights (a fine-tuned
    # challenger); its options fingerprint differs from the champion's,
    # so the champion's cache entries are genuinely stale afterwards.
    from repro.online import scheduler_with_policy
    from repro.rl.ptrnet import PointerNetworkPolicy

    challenger = scheduler_with_policy(
        scheduler,
        PointerNetworkPolicy(
            feature_dim=scheduler.embedding_config.feature_dim,
            hidden_size=16,
            seed=1,
        ),
    )
    assert (
        challenger.options_fingerprint() != scheduler.options_fingerprint()
    )
    with ShardedSchedulingService(scheduler, num_shards=NUM_SHARDS) as service:
        for graph in models:
            service.schedule(graph, NUM_STAGES)
        old_key = service.swap_scheduler(challenger)
        evicted = service.invalidate_options(old_key)
        post = service.schedule(models[0], NUM_STAGES)
        print(f"4. hot swap: all {NUM_SHARDS} shards now run the "
              f"challenger; {evicted} stale champion cache entries "
              f"evicted; post-swap serve solved fresh "
              f"(cache_hit={post.extras['cache_hit']})")


if __name__ == "__main__":
    main()
