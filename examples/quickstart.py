#!/usr/bin/env python3
"""Quickstart: schedule ResNet50 onto a 4-stage Edge TPU pipeline.

Walks the full RESPECT deployment flow of Fig. 1a:

1. build the DNN computational graph (Step 1),
2. quantize it (the Toco int8 conversion the real flow applies),
3. schedule with the pretrained RL policy (Steps 2-3),
4. deploy onto the simulated pipelined Edge TPU system and run a
   1,000-inference workload (Step 4),

then prints the same numbers for the exact ILP and the Edge TPU compiler
baseline so you can see the trade-off the paper is about.
"""

from __future__ import annotations

from repro import (
    EdgeTpuCompilerProxy,
    IlpScheduler,
    RespectScheduler,
    build_model,
    deploy,
    quantize_graph,
)

NUM_STAGES = 4
NUM_INFERENCES = 1000


def main() -> None:
    graph = quantize_graph(build_model("ResNet50"))
    print(f"model: {graph.name} (|V|={graph.num_nodes}, "
          f"params={graph.total_param_bytes / 1e6:.1f} MB int8)")
    print(f"target: {NUM_STAGES}-stage pipelined Edge TPU system\n")

    schedulers = {
        "RESPECT (RL)": RespectScheduler(),
        "exact ILP": IlpScheduler(),
        "EdgeTPU compiler": EdgeTpuCompilerProxy(),
    }
    for name, scheduler in schedulers.items():
        result = scheduler.schedule(graph, NUM_STAGES)
        pipeline = deploy(graph, result.schedule)
        report = pipeline.simulate(num_inferences=NUM_INFERENCES)
        print(f"== {name}")
        print(f"   solve time        : {result.solve_time * 1e3:8.1f} ms")
        print(f"   peak stage memory : "
              f"{result.schedule.peak_stage_param_bytes / 1e6:8.2f} MB")
        print(f"   simulated runtime : "
              f"{report.seconds_per_inference * 1e3:8.3f} ms/inference "
              f"(bottleneck: {report.bottleneck})")
        print(pipeline.summary())
        print()


if __name__ == "__main__":
    main()
