#!/usr/bin/env python3
"""Fleet walkthrough: scenario -> fleet -> router comparison table.

Serving millions of users means many pipelined Edge TPU rigs behind a
router, not one.  This walkthrough builds the skewed-tenant scenario
(three tenants, three zoo models), compiles the catalog onto a
heterogeneous four-replica fleet through one shared
``SchedulingService`` (watch the schedule-reuse hit rate), then replays
the *identical* seeded request trace under three routing policies and
prints the comparison.

Usage::

    PYTHONPATH=src python examples/simulate_fleet.py
"""

from __future__ import annotations

from repro.cluster import build_fleet, default_routers, simulate_scenario
from repro.cluster.scenarios import (
    heterogeneous_fleet,
    scenario_models,
    skewed_tenants_scenario,
)
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService
from repro.utils.tables import format_table

SEED = 0


def main() -> None:
    # 1. Scenario: a heavy tight-SLO tenant plus two light ones, over
    #    three zoo models.
    scenario = skewed_tenants_scenario(duration_s=4.0)
    models = scenario_models(scenario)
    print(f"scenario {scenario.name!r}:")
    for tenant in scenario.tenants:
        print(
            f"  {tenant.name:<14} {tenant.rate_per_s:>5.1f} req/s  "
            f"SLO {tenant.slo_seconds * 1000:.0f} ms  mix {dict(tenant.model_mix)}"
        )

    # 2. Fleet: four heterogeneous replicas; every (model, stage count)
    #    schedule flows through one shared SchedulingService, so equal
    #    stage counts are answered from the fingerprint cache.
    with SchedulingService(ListScheduler()) as service:
        fleet = build_fleet(heterogeneous_fleet(4), models, service=service)
    stats = fleet.build_stats
    print(
        f"\nfleet of {len(fleet)} replicas; schedule requests: "
        f"{stats.schedule_requests}, cache hits: {stats.cache_hits} "
        f"({100 * stats.hit_rate:.0f}% reuse across replicas)"
    )

    # 3. Same seeded trace, three routers.
    rows = []
    for router in default_routers():
        report = simulate_scenario(scenario, fleet, router, seed=SEED)
        heavy = report.tenant("heavy")
        rows.append(
            [
                router.name,
                report.completed,
                100.0 * report.slo_attainment,
                100.0 * heavy.slo_attainment,
                1000.0 * heavy.latency_p99_s,
                report.joules_per_completed,
                max(r.utilization for r in report.replicas),
            ]
        )
    print()
    print(
        format_table(
            [
                "router",
                "completed",
                "SLO%",
                "heavy SLO%",
                "heavy p99 (ms)",
                "J/req",
                "peak util",
            ],
            rows,
            title=f"router comparison, seed={SEED}",
        )
    )
    print(
        "\nThe SLO-aware router predicts each replica's completion time "
        "from its backlog,\nper-model stage profiles and model-switch "
        "reloads, keeping the heavy tenant's\ntight deadline off the "
        "2-stage and shared-bus replicas that round-robin\nblindly feeds."
    )


if __name__ == "__main__":
    main()
