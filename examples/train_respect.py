#!/usr/bin/env python3
"""Train a RESPECT policy on synthetic graphs and save a checkpoint.

This is the paper's data-independent training recipe (Sec. III): random
|V| = 30 DAGs with degrees 2..6, labeled by the exact scheduler, consumed
first by teacher-forced imitation (warm start) and then by REINFORCE with
the rollout baseline.  Paper-scale training (1M graphs, hidden 256, pure
REINFORCE over 300 epochs) is the same command with bigger numbers.

Usage::

    python examples/train_respect.py --dataset-size 400 --hidden 64 \
        --imitation-steps 300 --reinforce-steps 80 \
        --out src/repro/rl/pretrained --name respect_small
"""

from __future__ import annotations

import argparse
import time

from repro.rl.imitation import ImitationConfig
from repro.rl.reinforce import ReinforceConfig
from repro.rl.respect import save_policy
from repro.rl.trainer import RespectTrainingConfig, train_respect_policy


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset-size", type=int, default=300)
    parser.add_argument("--num-nodes", type=int, default=30)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--imitation-steps", type=int, default=200)
    parser.add_argument("--reinforce-steps", type=int, default=50)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--imitation-lr", type=float, default=1e-3)
    parser.add_argument("--reinforce-lr", type=float, default=1e-4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default="checkpoints")
    parser.add_argument("--name", type=str, default="respect_small")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = RespectTrainingConfig(
        dataset_size=args.dataset_size,
        num_nodes=args.num_nodes,
        hidden_size=args.hidden,
        imitation_steps=args.imitation_steps,
        reinforce_steps=args.reinforce_steps,
        imitation=ImitationConfig(
            batch_size=args.batch_size, learning_rate=args.imitation_lr,
            seed=args.seed,
        ),
        reinforce=ReinforceConfig(
            batch_size=args.batch_size, learning_rate=args.reinforce_lr,
            seed=args.seed,
        ),
        seed=args.seed,
    )
    print(
        f"generating {config.dataset_size} labeled synthetic graphs "
        f"(|V|={config.num_nodes}, degrees {tuple(config.degrees)}) ..."
    )
    start = time.perf_counter()
    result = train_respect_policy(config)
    elapsed = time.perf_counter() - start

    print(f"training finished in {elapsed:.1f}s")
    for label, history in (
        ("imitation", result.imitation_history),
        ("reinforce", result.reinforce_history),
    ):
        if not history:
            continue
        first, last = history[0], history[-1]
        if label == "imitation":
            print(
                f"  imitation: loss {first.loss:.3f} -> {last.loss:.3f}, "
                f"token accuracy {first.token_accuracy:.3f} -> "
                f"{last.token_accuracy:.3f} over {len(history)} steps"
            )
        else:
            print(
                f"  reinforce: cost {first.mean_cost:.4f} -> {last.mean_cost:.4f} "
                f"(reward {last.mean_reward:.4f}) over {len(history)} steps"
            )
    save_policy(result.policy, args.out, args.name)
    print(f"checkpoint saved to {args.out}/{args.name}.npz (+ .json)")


if __name__ == "__main__":
    main()
