#!/usr/bin/env python3
"""Trace one request end to end through the sharded serving tier.

The observability layer (:mod:`repro.obs`) threads one ``Telemetry``
facade through every serving constructor.  This demo builds the full
production shape — a :class:`~repro.service.ShardedSchedulingService`
with a disk-backed schedule store and decode worker *processes* — and
submits a single request with tracing on, then prints:

1. the request's **span tree**: admission decision, shard routing, tier
   lookup (memory/disk/miss), batched solve, the decode round-trip with
   the worker-side sub-span shipped home inside the wire response frame
   (note its ``pid`` differs from this process), and the publish;
2. a second request for the same graph, now a **memory-tier cache hit**
   (a two-span trace: lookup + nothing else to do);
3. the **Prometheus text exposition** of the same registry the
   ``stats()`` views read from — one bookkeeping, two renderings.

Usage::

    PYTHONPATH=src python examples/trace_a_request.py
"""

from __future__ import annotations

import os
import tempfile

from repro.graphs.sampler import sample_synthetic_dag
from repro.obs import InMemorySpanExporter, Telemetry, format_span_tree
from repro.rl.respect import RespectScheduler
from repro.service import ShardedSchedulingService

NUM_STAGES = 4


def main() -> None:
    exporter = InMemorySpanExporter()
    telemetry = Telemetry.with_tracing(exporter)  # sample_rate=1.0
    graph = sample_synthetic_dag(num_nodes=16, degree=3, seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        with ShardedSchedulingService(
            RespectScheduler(),
            num_shards=2,
            decode_workers=2,
            store_dir=os.path.join(tmp, "store"),
            telemetry=telemetry,
        ) as service:
            print(f"serving pid {os.getpid()}; decode workers are separate")
            print()

            result = service.schedule(graph, NUM_STAGES)
            print(
                f"request 1 (miss): objective={result.objective:.4f} "
                f"method={result.method}"
            )
            # The trace finishes asynchronously with the future; the
            # worker sub-span arrived inside the decode response frame.
            trace_id = exporter.records[-1]["trace_id"]
            print(format_span_tree(exporter.trace(trace_id)))
            print()

            exporter.clear()
            result = service.schedule(graph, NUM_STAGES)
            assert result.extras["cache_hit"] is True
            print("request 2 (memory-tier hit):")
            print(format_span_tree(exporter.records))
            print()

            print("--- Prometheus exposition (same registry stats() reads) ---")
            text = telemetry.registry.render_prometheus()
            for line in text.splitlines():
                if "respect_requests_total" in line or line.startswith(
                    "respect_tier_lookups_total"
                ):
                    print(line)
            stats = service.stats()
            print()
            print(
                f"stats() view of the same instruments: "
                f"requests={stats.requests} cache_hits={stats.cache_hits}"
            )


if __name__ == "__main__":
    main()
