#!/usr/bin/env python3
"""Warm-starting a fleet build from a persistent schedule store.

Compiling a model catalog onto a fleet runs every ``(model, stage
count)`` pair through the RESPECT solver — the expensive part of a
deploy.  With ``build_fleet(..., store_dir=...)`` those schedules are
persisted to a content-addressed on-disk store, so the *next* build
over the same directory (a redeploy, a config rollout, a crashed box
coming back) reuses them byte-for-byte instead of re-solving.

This walkthrough builds a heterogeneous fleet twice over one store
directory and prints the reuse delta: the cold build pays one solve per
distinct ``(model, stages, scheduler options)`` triple, the warm build
pays zero.

Usage::

    PYTHONPATH=src python examples/warm_start_fleet.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.cluster import build_fleet
from repro.cluster.scenarios import heterogeneous_fleet
from repro.models.zoo import build_model
from repro.rl.respect import RespectScheduler
from repro.service import DiskScheduleStore
from repro.utils.tables import format_table

MODELS = ("Xception", "ResNet50")


def timed_build(replicas, models, store_dir):
    start = time.perf_counter()
    fleet = build_fleet(
        replicas, models, scheduler=RespectScheduler(), store_dir=store_dir
    )
    return fleet, time.perf_counter() - start


def main() -> None:
    replicas = heterogeneous_fleet(4)
    models = {name: build_model(name) for name in MODELS}
    stage_counts = sorted({spec.num_stages for spec in replicas})
    print(
        f"catalog: {len(models)} models x {len(replicas)} replicas "
        f"(stage counts {stage_counts})"
    )

    with tempfile.TemporaryDirectory(prefix="warm_start_fleet_") as tmp:
        store_dir = Path(tmp) / "schedule-store"

        # 1. Cold build: the store directory is empty, so every distinct
        #    (model, stage count) pair costs a RESPECT solve.  Replicas
        #    sharing a stage count already reuse within the build.
        cold, cold_s = timed_build(replicas, models, store_dir)

        # 2. Warm build: a *fresh* scheduler and a *fresh* service — as
        #    after a process restart — over the same directory.  Every
        #    request is answered from disk; zero solver invocations.
        warm, warm_s = timed_build(replicas, models, store_dir)

        rows = []
        for label, fleet, seconds in (
            ("cold (empty store)", cold, cold_s),
            ("warm (same store dir)", warm, warm_s),
        ):
            stats = fleet.build_stats
            rows.append(
                [
                    label,
                    stats.schedule_requests,
                    stats.cache_hits,
                    stats.unique_solves,
                    f"{100 * stats.hit_rate:.0f}%",
                    f"{seconds * 1e3:.0f} ms",
                ]
            )
        print()
        print(
            format_table(
                ["build", "requests", "reused", "solves", "reuse", "wall"],
                rows,
                title="fleet build: cold vs warm over one store directory",
            )
        )

        with DiskScheduleStore(store_dir) as store:
            disk = store.stats()
        print(
            f"\nstore: {disk.entries} schedule(s) in {disk.segments} "
            f"segment(s) under {store_dir.name}/"
        )

    assert warm.build_stats.unique_solves == 0, "warm build must not solve"
    print(
        "\nThe warm build solved nothing: every schedule came back from "
        "the persistent\nstore, bit-identical to the cold build's — the "
        "same mechanism warm-starts\nSchedulingService / "
        "ShardedSchedulingService after a restart (see\n"
        "service.restore())."
    )


if __name__ == "__main__":
    main()
