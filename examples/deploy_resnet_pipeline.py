#!/usr/bin/env python3
"""Deployment deep-dive: ResNet101v2 across 4/5/6-stage pipelines.

The paper's headline case: at 6 stages, a communication- and
caching-aware schedule fits every stage's parameters into the 8 MiB
on-chip SRAM while the compiler's parameter-count balancing overflows a
stage, forcing per-inference weight streaming over USB — worth ~2.5x of
end-to-end runtime.  This example prints the stage-by-stage deployment
(cached vs streamed bytes) and the energy estimate for each method.
"""

from __future__ import annotations

from repro import (
    EdgeTpuCompilerProxy,
    IlpScheduler,
    RespectScheduler,
    build_model,
    deploy,
    quantize_graph,
)
from repro.tpu.power import estimate_energy

MODEL = "ResNet101v2"
NUM_INFERENCES = 1000


def main() -> None:
    graph = quantize_graph(build_model(MODEL))
    print(f"{MODEL}: {graph.total_param_bytes / 1e6:.1f} MB of int8 parameters; "
          f"one Edge TPU caches ~7.7 MB\n")

    respect = RespectScheduler()
    for num_stages in (4, 5, 6):
        print(f"===== {num_stages}-stage pipeline "
              f"(aggregate SRAM {num_stages * 7.69:.1f} MB) =====")
        for name, scheduler in (
            ("RESPECT", respect),
            ("exact ILP", IlpScheduler()),
            ("compiler", EdgeTpuCompilerProxy()),
        ):
            result = scheduler.schedule(graph, num_stages)
            pipeline = deploy(graph, result.schedule)
            report = pipeline.simulate(num_inferences=NUM_INFERENCES)
            energy = estimate_energy(report)
            streamed = sum(p.off_chip_bytes for p in report.profiles)
            print(f"-- {name}: {report.seconds_per_inference * 1e3:.3f} ms/inf, "
                  f"{streamed / 1e6:.2f} MB streamed/inf, "
                  f"{energy.joules_per_inference * 1e3:.1f} mJ/inf")
            print(pipeline.summary())
        print()


if __name__ == "__main__":
    main()
