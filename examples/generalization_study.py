#!/usr/bin/env python3
"""Generalization study: synthetic |V| = 30 training -> arbitrary graphs.

The paper's final experiment demonstrates that a policy trained purely on
30-node synthetic graphs imitates the exact scheduler on much larger,
structurally different graphs.  This example sweeps synthetic graph
sizes and degrees far outside the training distribution plus the twelve
real DNNs, reporting the peak-memory gap to the exact optimum at every
point.
"""

from __future__ import annotations

from repro import build_model, quantize_graph
from repro.graphs.sampler import sample_synthetic_dag
from repro.models.zoo import FIG5_MODELS
from repro.rl.respect import RespectScheduler
from repro.scheduling.ilp import IlpScheduler
from repro.utils.tables import format_table

NUM_STAGES = 4


def gap_percent(respect, exact_solver, graph) -> float:
    respect_result = respect.schedule(graph, NUM_STAGES)
    exact = exact_solver.schedule(graph, NUM_STAGES)
    optimum = exact.extras["peak_optimum_bytes"]
    if optimum == 0:
        return 0.0
    return 100.0 * (
        respect_result.schedule.peak_stage_param_bytes - optimum
    ) / optimum


def main() -> None:
    respect = RespectScheduler()
    exact = IlpScheduler(peak_tolerance=0.0)

    rows = []
    for num_nodes in (15, 30, 60, 120, 240):
        for degree in (2, 4, 6):
            graph = sample_synthetic_dag(
                num_nodes=num_nodes, degree=degree, seed=num_nodes + degree
            )
            gap = gap_percent(respect, exact, graph)
            in_dist = "yes" if num_nodes == 30 else "no"
            rows.append([f"synthetic |V|={num_nodes}", degree, in_dist,
                         f"{gap:.2f}%"])
    print(format_table(
        ["graph", "deg(V)", "training size?", "gap to optimal"],
        rows,
        title="Generalization across synthetic sizes/degrees "
              f"({NUM_STAGES}-stage)",
    ))
    print()

    rows = []
    for name in FIG5_MODELS:
        graph = quantize_graph(build_model(name))
        gap = gap_percent(respect, exact, graph)
        rows.append([name, graph.num_nodes, f"{gap:.2f}%"])
    print(format_table(
        ["DNN model", "|V|", "gap to optimal"],
        rows,
        title="Generalization to real ImageNet DNN graphs "
              f"({NUM_STAGES}-stage)",
    ))


if __name__ == "__main__":
    main()
