#!/usr/bin/env python3
"""Survey every scheduler in the library on one workload.

Runs the exact methods (ILP, branch-and-bound on a small graph), the
classic RCS heuristics (list scheduling, Hu, force-directed), the
metaheuristics (simulated annealing, DP budgeting), the Edge TPU compiler
proxy and RESPECT on the same graphs, and prints the quality/solving-time
trade-off table — the Pareto frontier the paper's introduction frames.
"""

from __future__ import annotations

from repro import build_model, quantize_graph
from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.respect import RespectScheduler
from repro.scheduling import (
    BranchAndBoundScheduler,
    DpBudgetScheduler,
    EdgeTpuCompilerProxy,
    ForceDirectedScheduler,
    HuScheduler,
    IlpScheduler,
    ListScheduler,
    SimulatedAnnealingScheduler,
)
from repro.utils.tables import format_table

NUM_STAGES = 4


def survey(graph, schedulers) -> str:
    rows = []
    for name, scheduler in schedulers:
        result = scheduler.schedule(graph, NUM_STAGES)
        schedule = result.schedule
        rows.append(
            [
                name,
                f"{result.solve_time * 1e3:.2f} ms",
                f"{schedule.peak_stage_param_bytes / 1e6:.3f} MB",
                f"{schedule.transfer_bytes() / 1e6:.3f} MB",
                "yes" if schedule.is_valid() else "NO",
            ]
        )
    return format_table(
        ["scheduler", "solve time", "peak stage memory", "transfers/inf", "valid"],
        rows,
        title=f"{graph.name} on {NUM_STAGES} stages",
    )


def main() -> None:
    # Small synthetic graph: every method including exhaustive search.
    small = sample_synthetic_dag(num_nodes=24, degree=3, seed=7)
    print(survey(small, [
        ("branch & bound (exact)", BranchAndBoundScheduler()),
        ("ILP (exact)", IlpScheduler()),
        ("list scheduling", ListScheduler()),
        ("Hu's algorithm", HuScheduler()),
        ("force-directed", ForceDirectedScheduler()),
        ("simulated annealing", SimulatedAnnealingScheduler(iterations=1500)),
        ("DP budgeting", DpBudgetScheduler()),
        ("EdgeTPU compiler proxy", EdgeTpuCompilerProxy()),
        ("RESPECT (RL)", RespectScheduler()),
    ]))
    print()

    # Real DNN graph: the scalable subset.
    xception = quantize_graph(build_model("Xception"))
    print(survey(xception, [
        ("ILP (exact)", IlpScheduler()),
        ("list scheduling", ListScheduler()),
        ("Hu's algorithm", HuScheduler()),
        ("force-directed", ForceDirectedScheduler()),
        ("simulated annealing", SimulatedAnnealingScheduler(iterations=1500)),
        ("DP budgeting", DpBudgetScheduler()),
        ("EdgeTPU compiler proxy", EdgeTpuCompilerProxy()),
        ("RESPECT (RL)", RespectScheduler()),
    ]))


if __name__ == "__main__":
    main()
