#!/usr/bin/env python3
"""Serve schedule requests: fingerprint cache + micro-batching.

A production deployment doesn't call ``RespectScheduler.schedule`` per
request — it stands a :class:`repro.service.SchedulingService` in front
of the scheduler.  Concurrent ``submit()`` calls return futures; the
service answers repeat graphs from an LRU cache keyed by exact content
fingerprints, coalesces identical in-flight requests onto one solve, and
aggregates the rest into vectorized ``schedule_batch`` micro-batches.
Served schedules are bit-identical to direct scheduler calls.

This demo simulates a bursty workload: 64 clients requesting schedules
for a pool of 12 distinct models (real traffic is heavily repetitive —
the same DNNs deploy again and again).

Usage::

    PYTHONPATH=src python examples/serve_schedules.py
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor

from repro.graphs.sampler import sample_synthetic_dag
from repro.rl.respect import RespectScheduler
from repro.service import SchedulingService

NUM_CLIENTS = 64
NUM_MODELS = 12
NUM_STAGES = 4


def main() -> None:
    scheduler = RespectScheduler()
    models = [
        sample_synthetic_dag(num_nodes=20 + (seed % 4) * 5, degree=3, seed=seed)
        for seed in range(NUM_MODELS)
    ]
    scheduler.schedule(models[0], NUM_STAGES)  # warm the inference path

    rng = random.Random(0)
    workload = [models[rng.randrange(NUM_MODELS)] for _ in range(NUM_CLIENTS)]

    start = time.perf_counter()
    direct = {id(g): scheduler.schedule(g, NUM_STAGES) for g in models}
    sequential = [direct[id(g)] for g in workload]
    _ = sequential  # the per-model answers every request would get
    seq_seconds = time.perf_counter() - start

    with SchedulingService(scheduler, max_batch_size=32) as service:
        start = time.perf_counter()
        with ThreadPoolExecutor(NUM_CLIENTS) as pool:
            futures = [
                pool.submit(service.schedule, graph, NUM_STAGES)
                for graph in workload
            ]
            served = [future.result() for future in futures]
        serve_seconds = time.perf_counter() - start
        stats = service.stats()

    identical = all(
        a.schedule.assignment == direct[id(g)].schedule.assignment
        for a, g in zip(served, workload)
    )
    print(f"{NUM_CLIENTS} requests over {NUM_MODELS} models, "
          f"{NUM_STAGES}-stage pipelines")
    print(f"  sequential unique solves : {seq_seconds * 1e3:7.1f} ms")
    print(f"  concurrent service       : {serve_seconds * 1e3:7.1f} ms "
          f"({NUM_CLIENTS / serve_seconds:5.0f} req/s)")
    print(f"  schedules identical      : {identical}")
    print("service stats:")
    print(f"  requests={stats.requests}  cache_hits={stats.cache_hits}  "
          f"coalesced={stats.coalesced}  hit_rate={stats.hit_rate:.0%}")
    print(f"  batches={stats.batches}  mean_batch_size="
          f"{stats.mean_batch_size:.1f}  scheduled={stats.scheduled_graphs}")
    print(f"  latency mean={stats.latency_mean_s * 1e3:.1f} ms  "
          f"p50={stats.latency_p50_s * 1e3:.1f} ms  "
          f"p99={stats.latency_p99_s * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
