"""Simulated-annealing metaheuristic scheduler.

One of the iterative metaheuristics the paper's background section cites
as an alternative point on the runtime/quality trade-off curve.  Starts
from a balanced list schedule and proposes single-node stage moves that
keep the monotone dependency constraint, accepting uphill moves with the
Metropolis criterion under a geometric cooling schedule.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.schedule import (
    DEFAULT_COMM_WEIGHT,
    Schedule,
    ScheduleResult,
)
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.timing import Timer


class SimulatedAnnealingScheduler:
    """Metropolis search over dependency-valid stage assignments.

    Parameters
    ----------
    iterations:
        Number of proposed moves.
    initial_temperature / final_temperature:
        Geometric cooling endpoints, in units of the objective (bytes).
    comm_weight:
        Objective weight shared with the exact schedulers.
    seed:
        RNG seed for reproducibility.
    should_stop:
        Optional zero-argument callable polled between moves (the anytime
        portfolio's cooperative-cancellation hook).  When it returns
        True the search stops and the best schedule found so far is
        returned with ``extras["stopped_early"] = True``.  Runs that are
        never cancelled are bit-identical to runs without the hook.
    """

    method_name = "simulated_annealing"

    def __init__(
        self,
        iterations: int = 2000,
        initial_temperature: float = 1e6,
        final_temperature: float = 1e2,
        comm_weight: float = DEFAULT_COMM_WEIGHT,
        seed: SeedLike = 0,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        if iterations < 1:
            raise SchedulingError("iterations must be positive")
        if initial_temperature <= 0 or final_temperature <= 0:
            raise SchedulingError("temperatures must be positive")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.final_temperature = final_temperature
        self.comm_weight = comm_weight
        self._seed = seed
        self._should_stop = should_stop

    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        rng = resolve_rng(self._seed)
        with Timer() as timer:
            current = ListScheduler().schedule(graph, num_stages).schedule
            assignment = dict(current.assignment)
            cost = current.objective(self.comm_weight)
            best_assignment = dict(assignment)
            best_cost = cost
            names = graph.node_names
            cooling = (self.final_temperature / self.initial_temperature) ** (
                1.0 / self.iterations
            )
            temperature = self.initial_temperature
            accepted = 0
            stopped_early = False
            iterations_run = 0
            should_stop = self._should_stop
            for _ in range(self.iterations):
                if should_stop is not None and should_stop():
                    stopped_early = True
                    break
                iterations_run += 1
                name = names[int(rng.integers(len(names)))]
                lo = max(
                    (assignment[p] for p in graph.parents(name)), default=0
                )
                hi = min(
                    (assignment[c] for c in graph.children(name)),
                    default=num_stages - 1,
                )
                if hi <= lo and assignment[name] == lo:
                    temperature *= cooling
                    continue
                new_stage = int(rng.integers(lo, hi + 1))
                if new_stage == assignment[name]:
                    temperature *= cooling
                    continue
                old_stage = assignment[name]
                assignment[name] = new_stage
                candidate = Schedule(graph, num_stages, assignment)
                new_cost = candidate.objective(self.comm_weight)
                delta = new_cost - cost
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    cost = new_cost
                    accepted += 1
                    if cost < best_cost:
                        best_cost = cost
                        best_assignment = dict(assignment)
                else:
                    assignment[name] = old_stage
                temperature *= cooling
        schedule = Schedule(graph, num_stages, best_assignment)
        extras: Dict[str, object] = {"accepted_moves": accepted}
        if stopped_early:
            extras["stopped_early"] = True
            extras["iterations_run"] = iterations_run
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            objective=best_cost,
            status="interrupted" if stopped_early else "heuristic",
            extras=extras,
        )
