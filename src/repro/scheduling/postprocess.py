"""Post-inference processing (Sec. III, "Post-Inference Processing").

RL output sequences are not guaranteed to respect domain constraints, so
the deployment stage applies a deterministic repair with minimum changes
to the RL solution:

* **dependency repair** — any node scheduled before one of its parents is
  pushed forward to its parent's stage;
* **sibling rule** (optional) — Edge TPU deployment requires the children
  of a node to share a pipeline stage; offending children are moved to
  the earliest predicted stage among them.

Both passes are pure functions returning new :class:`Schedule` objects.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SchedulingError
from repro.scheduling.schedule import Schedule

_MAX_SIBLING_ROUNDS = 50


def repair_dependencies(schedule: Schedule) -> Schedule:
    """Push nodes forward until every edge satisfies ``stage(u) <= stage(v)``.

    Processing in topological order guarantees a single pass suffices and
    that every node moves the minimum distance forward (the paper's
    "simply pushing the involved node forward").
    """
    graph = schedule.graph
    assignment: Dict[str, int] = dict(schedule.assignment)
    for name in graph.topological_order():
        parents = graph.parents(name)
        if parents:
            floor = max(assignment[p] for p in parents)
            if assignment[name] < floor:
                assignment[name] = floor
    return Schedule(graph, schedule.num_stages, assignment)


def enforce_sibling_rule(schedule: Schedule, max_rounds: int = _MAX_SIBLING_ROUNDS) -> Schedule:
    """Move every node's children to the earliest common feasible stage.

    The paper assigns sibling groups "to the earliest predicted stage";
    naively that can sit before a child's own parents, so the target is
    clamped to each child's dependency floor (the latest stage among its
    parents).  Pulling children earlier never violates descendants, and
    pushes are followed by a dependency repair; the pass iterates to a
    fixed point.
    """
    graph = schedule.graph
    current = schedule
    order = graph.topological_order()
    for _ in range(max_rounds):
        assignment = dict(current.assignment)
        changed = False
        for name in order:
            children = graph.children(name)
            if len(children) < 2:
                continue
            stages = {assignment[c] for c in children}
            floors = [
                max((assignment[p] for p in graph.parents(c)), default=0)
                for c in children
            ]
            target = max(min(stages), max(floors))
            for child in children:
                if assignment[child] != target:
                    assignment[child] = target
                    changed = True
        if not changed:
            return current
        current = repair_dependencies(
            Schedule(graph, current.num_stages, assignment)
        )
    if not current.is_valid() or current.sibling_violations():
        raise SchedulingError("sibling-rule enforcement failed to converge")
    return current


def postprocess_schedule(schedule: Schedule, enforce_siblings: bool = False) -> Schedule:
    """Full post-inference pipeline: dependency repair (+ sibling rule)."""
    repaired = repair_dependencies(schedule)
    if enforce_siblings:
        repaired = enforce_sibling_rule(repaired)
    return repaired
