"""Schedule representation shared by every scheduling method.

A schedule assigns each node of a computational graph to one of ``n``
pipeline stages (``S = s_0, s_1, ..., s_{n-1}`` in the paper's notation).
The pipelined Edge TPU system executes stage ``k`` on device ``k``, so a
valid schedule must be *monotone* along dataflow: for every edge
``(u, v)``, ``stage(u) <= stage(v)``.

The optimization objective follows the memory-and-communication-aware
formulation of Yin et al. [21] that the paper uses as its exact method:

``objective = peak per-stage parameter bytes + comm_weight * hop-weighted
activation bytes crossing stage boundaries``

The peak term is what Fig. 5 plots ("Memory Usage (MB)"); the hop-weighted
communication term is linear in stage indices, which keeps the ILP linear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.topology import asap_levels

#: Default weight of the communication term relative to peak memory bytes.
#: Calibrated so the exact method meaningfully trades cut-tensor bytes
#: against peak-memory balance (the paper's exact baseline optimizes
#: "memory allocation and communication cost" jointly).
DEFAULT_COMM_WEIGHT = 0.25


class Schedule:
    """An assignment of graph nodes to pipeline stages.

    Parameters
    ----------
    graph:
        The scheduled computational graph.
    num_stages:
        Number of pipeline stages ``n`` (= number of Edge TPUs).
    assignment:
        Mapping from node name to stage index in ``[0, num_stages)``.
        Every node of ``graph`` must be assigned.
    """

    def __init__(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        assignment: Dict[str, int],
    ) -> None:
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        missing = [n for n in graph.node_names if n not in assignment]
        if missing:
            raise SchedulingError(
                f"schedule is missing {len(missing)} node(s), e.g. {missing[:5]}"
            )
        extra = [n for n in assignment if n not in graph]
        if extra:
            raise SchedulingError(
                f"schedule assigns unknown node(s), e.g. {extra[:5]}"
            )
        for name, stage in assignment.items():
            if not 0 <= stage < num_stages:
                raise SchedulingError(
                    f"node {name!r} assigned to stage {stage}, valid range is "
                    f"[0, {num_stages})"
                )
        self.graph = graph
        self.num_stages = num_stages
        self.assignment = dict(assignment)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def stage_of(self, name: str) -> int:
        """Stage index of node ``name``."""
        return self.assignment[name]

    def stage_nodes(self, stage: int) -> List[str]:
        """Node names assigned to ``stage`` (graph insertion order)."""
        return [n for n in self.graph.node_names if self.assignment[n] == stage]

    def stages(self) -> List[List[str]]:
        """All stages as lists of node names."""
        buckets: List[List[str]] = [[] for _ in range(self.num_stages)]
        for name in self.graph.node_names:
            buckets[self.assignment[name]].append(name)
        return buckets

    # ------------------------------------------------------------------
    # memory metrics (Fig. 5)
    # ------------------------------------------------------------------
    def stage_param_bytes(self) -> List[int]:
        """Parameter bytes cached per stage."""
        totals = [0] * self.num_stages
        for node in self.graph.nodes:
            totals[self.assignment[node.name]] += node.param_bytes
        return totals

    @property
    def peak_stage_param_bytes(self) -> int:
        """Peak per-stage parameter footprint — the paper's memory objective."""
        return max(self.stage_param_bytes())

    # ------------------------------------------------------------------
    # communication metrics
    # ------------------------------------------------------------------
    def cut_edges(self) -> List[Tuple[str, str]]:
        """Edges whose endpoints sit in different stages."""
        return [
            (u, v)
            for u, v in self.graph.edges()
            if self.assignment[u] != self.assignment[v]
        ]

    def hop_weighted_comm_bytes(self) -> int:
        """Sum over edges of ``out_bytes(u) * (stage(v) - stage(u))``.

        Linear in stage indices, hence usable inside the ILP objective.
        Negative hops (dependency violations) contribute negatively, which
        is fine: this metric is only meaningful on valid schedules.
        """
        total = 0
        for u, v in self.graph.edges():
            hops = self.assignment[v] - self.assignment[u]
            if hops:
                total += self.graph.node(u).output_bytes * hops
        return total

    def transfer_bytes(self) -> int:
        """Activation bytes physically moved between devices per inference.

        A producer's output travels device -> host -> device once per
        *distinct consumer stage* other than its own (the host fans a
        tensor out to every stage that consumes it).
        """
        total = 0
        for u in self.graph.node_names:
            consumer_stages = {
                self.assignment[v]
                for v in self.graph.children(u)
                if self.assignment[v] != self.assignment[u]
            }
            total += self.graph.node(u).output_bytes * len(consumer_stages)
        return total

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def dependency_violations(self) -> List[Tuple[str, str]]:
        """Edges ``(u, v)`` with ``stage(u) > stage(v)`` (pipeline-illegal)."""
        return [
            (u, v)
            for u, v in self.graph.edges()
            if self.assignment[u] > self.assignment[v]
        ]

    def is_valid(self) -> bool:
        """True iff no dependency points backwards across stages."""
        return not self.dependency_violations()

    def sibling_violations(self) -> List[str]:
        """Parents whose children span multiple stages (Edge TPU rule).

        The paper notes the Edge TPU deployment flow requires the children
        of any node to live in the same pipeline stage; post-inference
        processing moves them to the earliest predicted stage.
        """
        offenders = []
        for name in self.graph.node_names:
            child_stages = {self.assignment[c] for c in self.graph.children(name)}
            if len(child_stages) > 1:
                offenders.append(name)
        return offenders

    # ------------------------------------------------------------------
    # objective
    # ------------------------------------------------------------------
    def objective(self, comm_weight: float = DEFAULT_COMM_WEIGHT) -> float:
        """Scheduling objective: peak stage memory + weighted communication."""
        return self.peak_stage_param_bytes + comm_weight * self.hop_weighted_comm_bytes()

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_sequence(self) -> List[str]:
        """The ``gamma`` label sequence: stage-major, ASAP-level minor order.

        This is how an exact schedule is presented to the RL agent as the
        ground-truth node-picking order (Eq. 2 of the paper).
        """
        levels = asap_levels(self.graph)
        index = self.graph.build_index()
        return sorted(
            self.graph.node_names,
            key=lambda n: (self.assignment[n], levels[n], index[n]),
        )

    def copy(self) -> "Schedule":
        """Independent copy sharing the (immutable-in-practice) graph."""
        return Schedule(self.graph, self.num_stages, dict(self.assignment))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self.graph is other.graph
            and self.num_stages == other.num_stages
            and self.assignment == other.assignment
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = [len(s) for s in self.stages()]
        return (
            f"Schedule(graph={self.graph.name!r}, stages={self.num_stages}, "
            f"sizes={sizes})"
        )


@dataclass
class ScheduleResult:
    """Outcome of one scheduler invocation.

    Attributes
    ----------
    schedule:
        The produced stage assignment.
    solve_time:
        Wall-clock seconds the scheduler spent (the Fig. 3 quantity).
    method:
        Human-readable scheduler name.
    objective:
        Objective value the scheduler reports (peak memory + weighted
        comm); recomputed from the schedule when the solver does not
        supply one.
    status:
        Solver status string (``"optimal"``, ``"heuristic"``, ...).
    extras:
        Method-specific diagnostics (iteration counts, MIP gaps, ...).
    """

    schedule: Schedule
    solve_time: float
    method: str
    objective: float = -1.0
    status: str = "ok"
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.objective < 0:
            self.objective = self.schedule.objective()
