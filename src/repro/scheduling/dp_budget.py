"""Dynamic-programming adaptive-budget scheduler.

Adaptation of the memory-aware adaptive budgeting idea of Ahn et al.
(MLSys'20, reference [1] of the paper) to pipeline partitioning: find the
minimum per-stage parameter budget ``B*`` for which a contiguous
topological segmentation into ``n`` parts exists (binary search over
budgets + greedy feasibility — the classic linear-partition scheme), then
among minimum-peak segmentations slide each cut to the cheapest nearby
activation tensor (communication tie-break).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.utils.timing import Timer


class DpBudgetScheduler:
    """Optimal contiguous segmentation by adaptive budget search.

    Note: restricted to *contiguous* cuts of the topological order, so it
    upper-bounds the unrestricted optimum; on chain-like DNN graphs the
    two coincide or nearly so.
    """

    method_name = "dp_budget"

    def __init__(self, comm_window: int = 3) -> None:
        if comm_window < 0:
            raise SchedulingError("comm_window must be non-negative")
        self.comm_window = comm_window

    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        with Timer() as timer:
            order = graph.topological_order()
            mem = [graph.node(n).param_bytes for n in order]
            budget = self._min_feasible_budget(mem, num_stages)
            boundaries = self._greedy_cuts(mem, num_stages, budget)
            boundaries = self._slide_cuts(graph, order, mem, boundaries, budget)
            assignment = self._to_assignment(order, boundaries)
        schedule = Schedule(graph, num_stages, assignment)
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="heuristic",
            extras={"budget": budget},
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _feasible(mem: List[int], num_stages: int, budget: int) -> bool:
        stages = 1
        used = 0
        for m in mem:
            if m > budget:
                return False
            if used + m > budget:
                stages += 1
                used = 0
                if stages > num_stages:
                    return False
            used += m
        return True

    def _min_feasible_budget(self, mem: List[int], num_stages: int) -> int:
        low = max(mem) if mem else 0
        high = sum(mem)
        while low < high:
            mid = (low + high) // 2
            if self._feasible(mem, num_stages, mid):
                high = mid
            else:
                low = mid + 1
        return low

    @staticmethod
    def _greedy_cuts(mem: List[int], num_stages: int, budget: int) -> List[int]:
        boundaries: List[int] = []
        used = 0
        for i, m in enumerate(mem):
            if used + m > budget and len(boundaries) < num_stages - 1:
                boundaries.append(i)
                used = 0
            used += m
        while len(boundaries) < num_stages - 1:
            boundaries.append(len(mem))
        return boundaries

    def _slide_cuts(
        self,
        graph: ComputationalGraph,
        order: List[str],
        mem: List[int],
        boundaries: List[int],
        budget: int,
    ) -> List[int]:
        """Move each cut within ``comm_window`` ops to a cheaper activation
        boundary without breaking the peak budget."""
        prefix = [0]
        for m in mem:
            prefix.append(prefix[-1] + m)

        def segment_ok(cuts: List[int]) -> bool:
            edges = [0] + list(cuts) + [len(order)]
            return all(
                prefix[edges[i + 1]] - prefix[edges[i]] <= budget
                for i in range(len(edges) - 1)
            )

        def cut_cost(position: int) -> int:
            # Activation bytes of the op right before the cut — what would
            # cross the stage boundary.
            if position <= 0 or position > len(order):
                return 0
            return graph.node(order[position - 1]).output_bytes

        result = list(boundaries)
        for i in range(len(result)):
            best = result[i]
            best_cost = cut_cost(best)
            for delta in range(-self.comm_window, self.comm_window + 1):
                candidate = result[i] + delta
                lower = 1 if i == 0 else result[i - 1] + 1
                upper = len(order) - 1 if i == len(result) - 1 else result[i + 1] - 1
                if not lower <= candidate <= upper:
                    continue
                trial = list(result)
                trial[i] = candidate
                if segment_ok(trial) and cut_cost(candidate) < best_cost:
                    best = candidate
                    best_cost = cut_cost(candidate)
            result[i] = best
        return result

    @staticmethod
    def _to_assignment(order: List[str], boundaries: List[int]) -> Dict[str, int]:
        assignment: Dict[str, int] = {}
        cuts = list(boundaries) + [len(order)]
        stage = 0
        for i, name in enumerate(order):
            while stage < len(cuts) - 1 and i >= cuts[stage]:
                stage += 1
            assignment[name] = stage
        return assignment
