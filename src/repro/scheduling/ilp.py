"""Exact pipeline scheduling via integer linear programming.

This is the reproduction's stand-in for the paper's CPLEX-based exact
method (after the memory- and communication-aware formulation of Yin et
al., SEC'22 [21]).  Subject to the monotone dependency constraint
``stage(u) <= stage(v)`` for every edge, it optimizes

``lexicographic`` (default)
    Phase 1 minimizes the peak per-stage parameter bytes ``M*`` (the
    parameter-caching optimum Fig. 5 reports); phase 2 minimizes the
    hop-weighted activation bytes crossing stage boundaries subject to
    every stage staying within ``M* * (1 + peak_tolerance)``.  Memory
    comes first, communication breaks ties — the behaviour the paper
    ascribes to its exact baseline.

``weighted``
    Single solve of ``M + comm_weight * comm`` — kept as a cross-check
    against the pure-Python branch-and-bound solver, which implements
    the identical objective.

Two encodings are provided:

``step`` (default)
    Indicator ``x[i,k] = 1`` iff ``stage(i) <= k`` for ``k < n-1``.  The
    dependency constraint becomes the tight pairwise bound
    ``x[v,k] <= x[u,k]`` and stage memory is a difference of consecutive
    steps.  This is the classic SDC-style unary encoding and solves all
    twelve DNN graphs in seconds with HiGHS.

``assignment``
    One-hot ``y[i,k]``.  Kept as a cross-check; produces identical
    objectives on every tested instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

try:  # scipy ships HiGHS; numpy-only deployments can still import us.
    from scipy import sparse
    from scipy.optimize import Bounds, LinearConstraint, milp
except ImportError:  # pragma: no cover - exercised only without scipy
    sparse = None
    Bounds = LinearConstraint = milp = None

from repro.errors import InfeasibleScheduleError, SolverError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import (
    DEFAULT_COMM_WEIGHT,
    Schedule,
    ScheduleResult,
)
from repro.utils.timing import Timer

_OBJECTIVES = ("lexicographic", "weighted")
_FORMULATIONS = ("step", "assignment")


class IlpScheduler:
    """Exact memory-and-communication-aware pipeline scheduler.

    Parameters
    ----------
    objective:
        ``"lexicographic"`` (memory first, then communication; default)
        or ``"weighted"`` (single weighted solve).
    comm_weight:
        Communication weight for the ``weighted`` objective.
    peak_tolerance:
        Phase-2 slack above the phase-1 peak optimum (lexicographic
        mode); 0 enforces the exact memory optimum.
    formulation:
        ``"step"`` (default) or ``"assignment"``.
    time_limit:
        Per-solve wall-clock budget in seconds.
    mip_rel_gap:
        Relative MIP gap at which the solver may stop (0 = proven
        optimal).
    should_stop:
        Optional zero-argument callable polled between MILP solves (the
        anytime portfolio's cooperative-cancellation hook).  A running
        HiGHS solve cannot be interrupted (cap ``time_limit`` for that),
        but a cancellation between the two lexicographic phases returns
        the phase-1 schedule with status ``"interrupted"``, and a
        cancellation before any solve raises :class:`SolverError`.
    """

    method_name = "ilp"

    def __init__(
        self,
        objective: str = "lexicographic",
        comm_weight: float = DEFAULT_COMM_WEIGHT,
        peak_tolerance: float = 0.03,
        formulation: str = "step",
        time_limit: float = 300.0,
        mip_rel_gap: float = 0.0,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        if milp is None:
            raise SolverError(
                "IlpScheduler requires scipy (HiGHS); install scipy or "
                "use BranchAndBoundScheduler / the heuristic schedulers"
            )
        if objective not in _OBJECTIVES:
            raise SolverError(f"unknown ILP objective {objective!r}")
        if formulation not in _FORMULATIONS:
            raise SolverError(f"unknown ILP formulation {formulation!r}")
        if comm_weight < 0:
            raise SolverError("comm_weight must be non-negative")
        if peak_tolerance < 0:
            raise SolverError("peak_tolerance must be non-negative")
        self.objective = objective
        self.comm_weight = comm_weight
        self.peak_tolerance = peak_tolerance
        self.formulation = formulation
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self._should_stop = should_stop

    def _cancelled(self) -> bool:
        return self._should_stop is not None and self._should_stop()

    # ------------------------------------------------------------------
    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        """Solve the exact scheduling problem for ``graph`` on ``num_stages``."""
        if num_stages < 1:
            raise SolverError("num_stages must be at least 1")
        if self._cancelled():
            raise SolverError("ILP solve cancelled before the first phase")
        graph.assert_acyclic()
        with Timer() as timer:
            if num_stages == 1 or graph.num_nodes == 0:
                assignment = {n: 0 for n in graph.node_names}
                schedule = Schedule(graph, num_stages, assignment)
                status = "optimal"
                extras = {
                    "peak_optimum_bytes": schedule.peak_stage_param_bytes,
                    "peak_cap_bytes": schedule.peak_stage_param_bytes,
                    "comm_bytes": schedule.hop_weighted_comm_bytes(),
                }
            elif self.objective == "weighted":
                schedule, status = self._solve(
                    graph, num_stages, comm_weight=self.comm_weight, peak_cap=None
                )
                extras = {}
            else:
                schedule, status, extras = self._solve_lexicographic(
                    graph, num_stages
                )
        if self.objective == "lexicographic":
            objective_value = float(schedule.peak_stage_param_bytes)
        else:
            objective_value = schedule.objective(self.comm_weight)
        extras["formulation"] = self.formulation
        extras["objective_mode"] = self.objective
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            objective=objective_value,
            status=status,
            extras=extras,
        )

    # ------------------------------------------------------------------
    def _solve_lexicographic(
        self, graph: ComputationalGraph, num_stages: int
    ) -> Tuple[Schedule, str, Dict[str, object]]:
        # Phase 1: pure peak-memory optimum.
        phase1, status1 = self._solve(
            graph, num_stages, comm_weight=0.0, peak_cap=None
        )
        peak_optimum = phase1.peak_stage_param_bytes
        if self._cancelled():
            # Deadline hit between phases: the phase-1 schedule is the
            # exact peak-memory optimum, just not comm-tie-broken.
            return (
                phase1,
                "interrupted",
                {
                    "peak_optimum_bytes": peak_optimum,
                    "peak_cap_bytes": peak_optimum,
                    "comm_bytes": phase1.hop_weighted_comm_bytes(),
                    "stopped_early": True,
                },
            )
        # Phase 2: cheapest communication within the (padded) optimum.
        cap = int(peak_optimum * (1.0 + self.peak_tolerance))
        phase2, status2 = self._solve(
            graph, num_stages, comm_weight=1.0, peak_cap=cap, minimize_peak=False
        )
        status = status1 if status1 == status2 else f"{status1}/{status2}"
        extras: Dict[str, object] = {
            "peak_optimum_bytes": peak_optimum,
            "peak_cap_bytes": cap,
            "comm_bytes": phase2.hop_weighted_comm_bytes(),
        }
        return phase2, status, extras

    # ------------------------------------------------------------------
    def _solve(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        comm_weight: float,
        peak_cap: Optional[int],
        minimize_peak: bool = True,
    ) -> Tuple[Schedule, str]:
        if self.formulation == "step":
            builder = self._build_step
        else:
            builder = self._build_assignment
        cost, constraints, integrality, bounds, decode = builder(
            graph, num_stages, comm_weight, peak_cap, minimize_peak
        )
        result = self._run_milp(cost, constraints, integrality, bounds)
        assignment = decode(result.x)
        schedule = Schedule(graph, num_stages, assignment)
        return schedule, self._status_string(result)

    # ------------------------------------------------------------------
    # step encoding
    # ------------------------------------------------------------------
    def _build_step(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        comm_weight: float,
        peak_cap: Optional[int],
        minimize_peak: bool,
    ):
        names = graph.node_names
        index = {n: i for i, n in enumerate(names)}
        num_nodes = len(names)
        steps = num_stages - 1  # x[i,k] for k in [0, n-2]
        with_m = minimize_peak
        num_vars = (1 if with_m else 0) + num_nodes * steps

        offset = 1 if with_m else 0

        def var(i: int, k: int) -> int:
            return offset + i * steps + k

        mem = np.array([graph.node(n).param_bytes for n in names], dtype=float)
        total_mem = float(mem.sum())

        cost = np.zeros(num_vars)
        if with_m:
            cost[0] = 1.0
        if comm_weight:
            # comm = sum_(u,v) out_u * sum_k (x[u,k] - x[v,k]).
            for u, v in graph.edges():
                out_bytes = float(graph.node(u).output_bytes)
                for k in range(steps):
                    cost[var(index[u], k)] += comm_weight * out_bytes
                    cost[var(index[v], k)] -= comm_weight * out_bytes

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        lower: List[float] = []
        upper: List[float] = []
        row = 0

        def add_entry(r: int, c: int, v: float) -> None:
            rows.append(r)
            cols.append(c)
            vals.append(v)

        # Monotonicity: x[i,k] - x[i,k+1] <= 0.
        for i in range(num_nodes):
            for k in range(steps - 1):
                add_entry(row, var(i, k), 1.0)
                add_entry(row, var(i, k + 1), -1.0)
                lower.append(-np.inf)
                upper.append(0.0)
                row += 1

        # Dependency: x[v,k] - x[u,k] <= 0 for every edge (u, v).
        for u, v in graph.edges():
            for k in range(steps):
                add_entry(row, var(index[v], k), 1.0)
                add_entry(row, var(index[u], k), -1.0)
                lower.append(-np.inf)
                upper.append(0.0)
                row += 1

        # Stage memory <= M (or <= peak_cap when M is absent).
        cap = float(peak_cap) if peak_cap is not None else None

        def memory_row(entries, constant: float) -> None:
            nonlocal row
            for c, v in entries:
                add_entry(row, c, v)
            if with_m:
                add_entry(row, 0, -1.0)
                lower.append(-np.inf)
                upper.append(-constant)
            else:
                lower.append(-np.inf)
                upper.append(cap - constant)  # type: ignore[operand-type]
            row += 1

        # Stage 0: sum_i m_i x[i,0] (+0) <= M | cap.
        memory_row(
            [(var(i, 0), mem[i]) for i in range(num_nodes) if mem[i]], 0.0
        )
        # Stages 1..n-2: sum_i m_i (x[i,k] - x[i,k-1]) <= M | cap.
        for k in range(1, steps):
            entries = []
            for i in range(num_nodes):
                if mem[i]:
                    entries.append((var(i, k), mem[i]))
                    entries.append((var(i, k - 1), -mem[i]))
            memory_row(entries, 0.0)
        # Last stage: total - sum_i m_i x[i,n-2] <= M | cap.
        memory_row(
            [(var(i, steps - 1), -mem[i]) for i in range(num_nodes) if mem[i]],
            total_mem,
        )

        matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, num_vars))
        constraints = LinearConstraint(matrix, np.array(lower), np.array(upper))
        integrality = np.ones(num_vars)
        lb = np.zeros(num_vars)
        ub = np.ones(num_vars)
        if with_m:
            integrality[0] = 0
            ub[0] = max(total_mem, 1.0)

        def decode(x: np.ndarray) -> Dict[str, int]:
            assignment: Dict[str, int] = {}
            for i, name in enumerate(names):
                stage_steps = sum(1 for k in range(steps) if x[var(i, k)] > 0.5)
                assignment[name] = num_stages - 1 - stage_steps
            return assignment

        return cost, constraints, integrality, Bounds(lb, ub), decode

    # ------------------------------------------------------------------
    # assignment (one-hot) encoding
    # ------------------------------------------------------------------
    def _build_assignment(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        comm_weight: float,
        peak_cap: Optional[int],
        minimize_peak: bool,
    ):
        names = graph.node_names
        index = {n: i for i, n in enumerate(names)}
        num_nodes = len(names)
        with_m = minimize_peak
        offset = 1 if with_m else 0
        num_vars = offset + num_nodes * num_stages

        def var(i: int, k: int) -> int:
            return offset + i * num_stages + k

        mem = np.array([graph.node(n).param_bytes for n in names], dtype=float)
        total_mem = float(mem.sum())

        cost = np.zeros(num_vars)
        if with_m:
            cost[0] = 1.0
        if comm_weight:
            # stage(i) = sum_k k*y[i,k]; comm = sum out_u*(s(v)-s(u)).
            for u, v in graph.edges():
                out_bytes = float(graph.node(u).output_bytes)
                for k in range(num_stages):
                    cost[var(index[v], k)] += comm_weight * out_bytes * k
                    cost[var(index[u], k)] -= comm_weight * out_bytes * k

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        lower: List[float] = []
        upper: List[float] = []
        row = 0

        def add_entry(r: int, c: int, v: float) -> None:
            rows.append(r)
            cols.append(c)
            vals.append(v)

        # One stage per node.
        for i in range(num_nodes):
            for k in range(num_stages):
                add_entry(row, var(i, k), 1.0)
            lower.append(1.0)
            upper.append(1.0)
            row += 1

        # Dependency: sum_k k*(y[u,k] - y[v,k]) <= 0.
        for u, v in graph.edges():
            for k in range(1, num_stages):
                add_entry(row, var(index[u], k), float(k))
                add_entry(row, var(index[v], k), -float(k))
            lower.append(-np.inf)
            upper.append(0.0)
            row += 1

        # Stage memory.
        cap = float(peak_cap) if peak_cap is not None else None
        for k in range(num_stages):
            for i in range(num_nodes):
                if mem[i]:
                    add_entry(row, var(i, k), mem[i])
            if with_m:
                add_entry(row, 0, -1.0)
                lower.append(-np.inf)
                upper.append(0.0)
            else:
                lower.append(-np.inf)
                upper.append(cap)  # type: ignore[arg-type]
            row += 1

        matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, num_vars))
        constraints = LinearConstraint(matrix, np.array(lower), np.array(upper))
        integrality = np.ones(num_vars)
        lb = np.zeros(num_vars)
        ub = np.ones(num_vars)
        if with_m:
            integrality[0] = 0
            ub[0] = max(total_mem, 1.0)

        def decode(x: np.ndarray) -> Dict[str, int]:
            assignment: Dict[str, int] = {}
            for i, name in enumerate(names):
                assignment[name] = int(
                    max(range(num_stages), key=lambda k: x[var(i, k)])
                )
            return assignment

        return cost, constraints, integrality, Bounds(lb, ub), decode

    # ------------------------------------------------------------------
    def _run_milp(self, cost, constraints, integrality, bounds):
        # HiGHS defaults to a 1e-4 relative gap; pin it so "optimal" means
        # proven optimal (the BnB cross-check relies on exact agreement).
        options = {"time_limit": self.time_limit, "mip_rel_gap": self.mip_rel_gap}
        result = milp(
            c=cost,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        if result.status == 2:
            raise InfeasibleScheduleError(
                "ILP reports the scheduling instance is infeasible"
            )
        if result.x is None:
            raise SolverError(
                f"MILP solver returned no solution (status={result.status}: "
                f"{result.message})"
            )
        return result

    @staticmethod
    def _status_string(result) -> str:
        return "optimal" if result.status == 0 else f"feasible(status={result.status})"
