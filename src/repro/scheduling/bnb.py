"""Pure-Python exact branch-and-bound pipeline scheduler.

A dependency-free exact solver for *small* graphs.  It serves two roles:

* generating ground-truth label sequences for the |V| = 30 synthetic
  training graphs without paying the ILP setup overhead per sample, and
* cross-checking the HiGHS ILP in tests (both must report identical
  optimal objectives on every random instance, in both the weighted and
  the lexicographic objective modes).

The search assigns nodes in topological order.  Monotonicity confines a
node's stage to ``[max(parent stages), n-1]``, the peak-memory term only
grows along a branch, and the communication term is lower-bounded by the
already-fixed edges, which together give an admissible bound for pruning.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import (
    DEFAULT_COMM_WEIGHT,
    Schedule,
    ScheduleResult,
)
from repro.utils.timing import Timer

_DEFAULT_MAX_NODES = 80
_DEFAULT_NODE_BUDGET = 2_000_000
_OBJECTIVES = ("lexicographic", "weighted")
#: How many explored search nodes between ``should_stop`` polls; small
#: enough to react within a fraction of a millisecond, large enough that
#: the callable adds no measurable overhead to uncancelled runs.
_STOP_POLL_INTERVAL = 256


class _SearchInterrupted(Exception):
    """Internal: unwinds the DFS when ``should_stop`` fires."""


class BranchAndBoundScheduler:
    """Exact scheduler for small graphs (training-label generation).

    Parameters
    ----------
    objective:
        ``"lexicographic"`` (peak memory, then communication — matches the
        default :class:`IlpScheduler`) or ``"weighted"``.
    comm_weight:
        Weight of the communication term in ``weighted`` mode.
    peak_tolerance:
        Phase-2 peak slack in lexicographic mode (0 = exact optimum).
    max_nodes:
        Hard limit on |V|; larger graphs should use the ILP.
    node_budget:
        Limit on explored search-tree nodes per phase, guarding against
        adversarial instances; exceeding it raises
        :class:`SchedulingError`.
    should_stop:
        Optional zero-argument callable polled every
        ``_STOP_POLL_INTERVAL`` explored nodes (the anytime portfolio's
        cooperative-cancellation hook).  When it returns True the search
        unwinds and the incumbent (greedy warm start or better) is
        returned with status ``"interrupted"`` instead of the proven
        optimum.  Runs that are never cancelled are bit-identical to
        runs without the hook.
    """

    method_name = "branch_and_bound"

    def __init__(
        self,
        objective: str = "lexicographic",
        comm_weight: float = DEFAULT_COMM_WEIGHT,
        peak_tolerance: float = 0.03,
        max_nodes: int = _DEFAULT_MAX_NODES,
        node_budget: int = _DEFAULT_NODE_BUDGET,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        if objective not in _OBJECTIVES:
            raise SchedulingError(f"unknown BnB objective {objective!r}")
        if comm_weight < 0 or peak_tolerance < 0:
            raise SchedulingError("comm_weight/peak_tolerance must be >= 0")
        self.objective = objective
        self.comm_weight = comm_weight
        self.peak_tolerance = peak_tolerance
        self.max_nodes = max_nodes
        self.node_budget = node_budget
        self._should_stop = should_stop

    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        """Find the exact optimal schedule by exhaustive pruned search."""
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        if graph.num_nodes > self.max_nodes:
            raise SchedulingError(
                f"branch-and-bound limited to |V| <= {self.max_nodes}; "
                f"got {graph.num_nodes} (use IlpScheduler instead)"
            )
        extras: Dict[str, object] = {"objective_mode": self.objective}
        interrupted = False
        with Timer() as timer:
            if self.objective == "weighted":
                assignment, _, interrupted = self._search(
                    graph, num_stages, comm_weight=self.comm_weight, peak_cap=None
                )
            else:
                # Phase 1: exact peak-memory optimum.
                phase1, peak_cost, interrupted = self._search(
                    graph, num_stages, comm_weight=0.0, peak_cap=None
                )
                peak_optimum = int(peak_cost)
                extras["peak_optimum_bytes"] = peak_optimum
                if interrupted:
                    # Cancelled mid-phase-1: ship the incumbent rather
                    # than starting (and instantly abandoning) phase 2.
                    assignment = phase1
                else:
                    cap = int(peak_optimum * (1.0 + self.peak_tolerance))
                    # Phase 2: cheapest communication within the cap.
                    assignment, comm_cost, interrupted = self._search(
                        graph,
                        num_stages,
                        comm_weight=1.0,
                        peak_cap=cap,
                        count_peak=False,
                    )
                    extras["peak_cap_bytes"] = cap
                    if not assignment:
                        # Interrupted before any cap-feasible incumbent.
                        assignment = phase1
                    else:
                        extras["comm_bytes"] = int(comm_cost)
        schedule = Schedule(graph, num_stages, assignment)
        if self.objective == "lexicographic":
            objective_value = float(schedule.peak_stage_param_bytes)
        else:
            objective_value = schedule.objective(self.comm_weight)
        if interrupted:
            extras["stopped_early"] = True
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            objective=objective_value,
            status="interrupted" if interrupted else "optimal",
            extras=extras,
        )

    # ------------------------------------------------------------------
    def _search(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        comm_weight: float,
        peak_cap: Optional[int],
        count_peak: bool = True,
    ) -> Tuple[Dict[str, int], float, bool]:
        """DFS returning ``(best assignment, best cost, interrupted)``.

        Cost is ``peak + comm_weight * comm`` when ``count_peak`` else
        ``comm_weight * comm``; ``peak_cap`` (when given) is a hard
        per-stage memory bound.  ``interrupted`` is True when
        ``should_stop`` cut the search short, in which case the incumbent
        (possibly empty under a ``peak_cap``) is returned instead of the
        proven optimum.
        """
        order = graph.topological_order()
        parents = {n: graph.parents(n) for n in order}
        mem = {n: graph.node(n).param_bytes for n in order}
        out_bytes = {n: graph.node(n).output_bytes for n in order}

        best_assignment: Dict[str, int] = {}
        best_cost = float("inf")
        stage_mem = [0] * num_stages
        assignment: Dict[str, int] = {}
        explored = 0
        weight = comm_weight

        # Greedy warm start bounds the search from above immediately.
        warm = self._greedy_warm_start(order, mem, parents, num_stages)
        if peak_cap is None or all(
            m <= peak_cap for m in Schedule(graph, num_stages, warm).stage_param_bytes()
        ):
            warm_schedule = Schedule(graph, num_stages, warm)
            peak_part = warm_schedule.peak_stage_param_bytes if count_peak else 0.0
            best_assignment = dict(warm)
            best_cost = peak_part + weight * warm_schedule.hop_weighted_comm_bytes()

        def comm_added(name: str, stage: int) -> float:
            total = 0.0
            for parent in parents[name]:
                hops = stage - assignment[parent]
                if hops:
                    total += out_bytes[parent] * hops
            return total

        should_stop = self._should_stop

        def recurse(depth: int, peak: int, comm: float) -> None:
            nonlocal best_cost, best_assignment, explored
            explored += 1
            if explored > self.node_budget:
                raise SchedulingError(
                    "branch-and-bound node budget exhausted; instance too hard"
                )
            if (
                should_stop is not None
                and explored % _STOP_POLL_INTERVAL == 0
                and should_stop()
            ):
                raise _SearchInterrupted
            if depth == len(order):
                cost = (peak if count_peak else 0.0) + weight * comm
                if cost < best_cost:
                    best_cost = cost
                    best_assignment = dict(assignment)
                return
            name = order[depth]
            floor = 0
            if parents[name]:
                floor = max(assignment[p] for p in parents[name])
            for stage in range(floor, num_stages):
                new_mem = stage_mem[stage] + mem[name]
                if peak_cap is not None and new_mem > peak_cap:
                    continue
                new_comm = comm + comm_added(name, stage)
                new_peak = max(peak, new_mem)
                bound = (new_peak if count_peak else 0.0) + weight * new_comm
                # Admissible: peak cannot shrink, comm cannot shrink.
                if bound < best_cost:
                    stage_mem[stage] = new_mem
                    assignment[name] = stage
                    recurse(depth + 1, new_peak, new_comm)
                    del assignment[name]
                    stage_mem[stage] = new_mem - mem[name]

        interrupted = False
        try:
            recurse(0, 0, 0.0)
        except _SearchInterrupted:
            interrupted = True
        if not best_assignment and not interrupted:
            raise InfeasibleScheduleError(
                "no schedule satisfies the peak-memory cap"
            )
        return best_assignment, best_cost, interrupted

    @staticmethod
    def _greedy_warm_start(
        order: List[str],
        mem: Dict[str, int],
        parents: Dict[str, List[str]],
        num_stages: int,
    ) -> Dict[str, int]:
        total = sum(mem.values())
        budget = total / max(1, num_stages)
        assignment: Dict[str, int] = {}
        stage = 0
        used = 0
        for name in order:
            if stage < num_stages - 1 and used > 0 and used + mem[name] > budget:
                stage += 1
                used = 0
            floor = 0
            if parents[name]:
                floor = max(assignment[p] for p in parents[name])
            assignment[name] = max(stage, floor)
            used += mem[name]
        return assignment
