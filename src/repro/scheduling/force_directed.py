"""Force-directed scheduling (Paulin & Knight) adapted to pipeline stages.

Force-directed scheduling balances a "distribution graph" — the expected
resource usage per time step given each node's feasible window — by
repeatedly committing the (node, step) choice with the lowest force.
Here the resource is parameter memory and time steps are pipeline
stages: a node's window is ``[max(assigned parents), n-1]`` intersected
with ``[0, min(assigned children)]``, and the distribution graph spreads
each unassigned node's bytes uniformly over its window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.utils.timing import Timer


class ForceDirectedScheduler:
    """Memory-balancing force-directed pipeline scheduler."""

    method_name = "force_directed"

    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        with Timer() as timer:
            assignment = self._assign(graph, num_stages)
        schedule = Schedule(graph, num_stages, assignment)
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="heuristic",
        )

    # ------------------------------------------------------------------
    def _assign(self, graph: ComputationalGraph, num_stages: int) -> Dict[str, int]:
        names = graph.topological_order()
        mem = {n: graph.node(n).param_bytes for n in names}
        assignment: Dict[str, int] = {}

        def window(name: str) -> Tuple[int, int]:
            lo = max(
                (assignment[p] for p in graph.parents(name) if p in assignment),
                default=0,
            )
            hi = min(
                (assignment[c] for c in graph.children(name) if c in assignment),
                default=num_stages - 1,
            )
            if hi < lo:
                hi = lo  # dependency repair happens downstream if needed
            return lo, hi

        def distribution() -> List[float]:
            dg = [0.0] * num_stages
            for name in names:
                if name in assignment:
                    dg[assignment[name]] += mem[name]
                else:
                    lo, hi = window(name)
                    share = mem[name] / (hi - lo + 1)
                    for stage in range(lo, hi + 1):
                        dg[stage] += share
            return dg

        # Commit nodes one at a time, choosing the minimal-force placement.
        # Nodes are processed in topological order so parent windows are
        # already tight; the force of placing `name` at stage `s` is the
        # increase in sum-of-squares of the distribution graph.
        for name in names:
            lo, hi = window(name)
            if lo == hi or mem[name] == 0:
                assignment[name] = lo if mem[name] == 0 else lo
                # Zero-memory nodes exert no force; pin to their window
                # start to keep stages compact.
                assignment[name] = lo
                continue
            dg = distribution()
            share = mem[name] / (hi - lo + 1)
            best_stage = lo
            best_force: Optional[float] = None
            for stage in range(lo, hi + 1):
                force = 0.0
                for other in range(lo, hi + 1):
                    # Placing at `stage` removes the spread share from
                    # every window slot and adds the full mass at `stage`.
                    delta = mem[name] - share if other == stage else -share
                    force += 2 * dg[other] * delta + delta * delta
                if best_force is None or force < best_force:
                    best_force = force
                    best_stage = stage
            assignment[name] = best_stage
        return assignment
