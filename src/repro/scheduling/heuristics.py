"""Classical RCS heuristics adapted to pipeline-stage scheduling.

The paper situates its baselines in the resource-constrained-scheduling
literature (Hu's algorithm, list scheduling, force-directed scheduling).
These adaptations target the pipeline formulation: stages play the role
of time steps, the monotone dependency constraint replaces unit-latency
precedence, and the per-stage memory budget replaces resource counts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.topology import asap_levels, graph_depth
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.scheduling.sequence import DEFAULT_BUDGET_SLACK
from repro.utils.timing import Timer


class ListScheduler:
    """List scheduling with critical-path priority and memory budgets.

    Nodes are visited in topological order with longest-path-to-sink
    priority; each is placed in the earliest stage at or after its
    parents' stages whose parameter budget still has room, spilling to
    later stages (and ultimately the last stage) when full.
    """

    method_name = "list_scheduling"

    def __init__(self, budget_slack: float = DEFAULT_BUDGET_SLACK) -> None:
        if budget_slack <= 0:
            raise SchedulingError("budget_slack must be positive")
        self.budget_slack = budget_slack

    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        with Timer() as timer:
            assignment = self._assign(graph, num_stages)
        schedule = Schedule(graph, num_stages, assignment)
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="heuristic",
        )

    def _assign(self, graph: ComputationalGraph, num_stages: int) -> Dict[str, int]:
        budget = graph.total_param_bytes / max(1, num_stages) * self.budget_slack
        # Priority: distance-to-sink (critical path) — classic list order.
        height: Dict[str, int] = {}
        for name in reversed(graph.topological_order()):
            children = graph.children(name)
            height[name] = 0 if not children else 1 + max(height[c] for c in children)
        order = sorted(
            graph.topological_order(),
            key=lambda n: (asap_levels(graph)[n], -height[n]),
        )
        stage_mem = [0.0] * num_stages
        assignment: Dict[str, int] = {}
        for name in order:
            parents = graph.parents(name)
            floor = max((assignment[p] for p in parents), default=0)
            node_mem = graph.node(name).param_bytes
            chosen = num_stages - 1
            for stage in range(floor, num_stages):
                if stage_mem[stage] + node_mem <= budget or stage == num_stages - 1:
                    chosen = stage
                    break
            assignment[name] = chosen
            stage_mem[chosen] += node_mem
        return assignment


class HuScheduler:
    """Hu's level-based algorithm mapped onto pipeline stages.

    Hu's algorithm schedules by topological level; here levels are scaled
    proportionally onto the ``n`` stages (level ``l`` of a depth-``D``
    graph lands in stage ``floor(l * n / (D + 1))``).  Memory-oblivious by
    design — it illustrates why level heuristics alone are poor for
    parameter-caching objectives.
    """

    method_name = "hu"

    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        with Timer() as timer:
            levels = asap_levels(graph)
            depth = graph_depth(graph)
            assignment = {
                name: min(
                    num_stages - 1, (level * num_stages) // (depth + 1)
                )
                for name, level in levels.items()
            }
        schedule = Schedule(graph, num_stages, assignment)
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="heuristic",
        )
