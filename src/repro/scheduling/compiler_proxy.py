"""Edge TPU compiler proxy — the paper's commercial-compiler baseline.

Google's closed-source ``edgetpu_compiler`` segments a model with
``--num_segments`` into contiguous pieces holding "roughly equal amounts
of parameter data" (Coral documentation), and the companion profiling
partitioner iteratively recompiles and benchmarks candidate partitions to
shave the bottleneck segment.  This proxy reproduces both behaviours:

* **parameter-count balancing** over the serialized (topological) op
  order — contiguous cuts, communication-oblivious, exactly the failure
  mode the paper exploits (cuts land on early layers with huge activation
  tensors);
* **profiling-guided rebalancing** — when a ``profiler`` callback is
  supplied (the Edge TPU simulator in this repo), the proxy repeatedly
  "compiles" each candidate partition (a full operator-mapping pass over
  the graph) and profiles it, moving boundaries away from the slowest
  segment.  These compile+profile cycles are what make the real
  compiler's *solving time* orders of magnitude larger than one RL
  forward pass (Fig. 3).

The proxy never sleeps or pads time artificially: its cost is the honest
cost of the work the real tool performs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.utils.timing import Timer

#: Signature of the on-device profiler: schedule -> seconds per inference.
Profiler = Callable[[Schedule], float]


class EdgeTpuCompilerProxy:
    """Heuristic contiguous partitioner mimicking the Edge TPU compiler.

    Parameters
    ----------
    profiler:
        Optional callback estimating on-device latency of a candidate
        schedule.  When given, the profiling partitioner runs
        ``max_profile_iterations`` rebalancing rounds; when ``None`` the
        plain parameter-count balancer is used (a single pass, like
        ``edgetpu_compiler --num_segments`` without profiling).
    max_profile_iterations:
        Upper bound on profiling rounds (the real delegate tool defaults
        to a small two-digit count).
    """

    method_name = "edgetpu_compiler"

    def __init__(
        self,
        profiler: Optional[Profiler] = None,
        max_profile_iterations: int = 10,
    ) -> None:
        if max_profile_iterations < 0:
            raise SchedulingError("max_profile_iterations must be >= 0")
        self.profiler = profiler
        self.max_profile_iterations = max_profile_iterations

    # ------------------------------------------------------------------
    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        """Partition ``graph`` into ``num_stages`` contiguous segments."""
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        graph.assert_acyclic()
        with Timer() as timer:
            order = graph.topological_order()
            boundaries = self._balance_parameters(graph, order, num_stages)
            self._compile_pass(graph, order, boundaries)
            iterations = 0
            if self.profiler is not None and num_stages > 1:
                boundaries, iterations = self._profile_rebalance(
                    graph, order, boundaries, num_stages
                )
            assignment = self._boundaries_to_assignment(order, boundaries)
        schedule = Schedule(graph, num_stages, assignment)
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="heuristic",
            extras={"profile_iterations": iterations},
        )

    # ------------------------------------------------------------------
    # parameter-count balancing (the documented --num_segments behaviour)
    # ------------------------------------------------------------------
    @staticmethod
    def _balance_parameters(
        graph: ComputationalGraph, order: Sequence[str], num_stages: int
    ) -> List[int]:
        """Choose cut positions so segments hold ~equal parameter bytes.

        Each segment greedily accumulates ops until it reaches its own
        ``total / num_stages`` share, *including* the op that crosses the
        target (the real compiler cuts after whole ops).  Because every
        segment overshoots independently, the final segment absorbs the
        accumulated shortfall — the well-known source of unbalanced
        ``--num_segments`` results that Coral's profiling partitioner
        exists to fix.

        Returns ``num_stages - 1`` indices into ``order``; segment ``k``
        spans ``order[boundaries[k-1]:boundaries[k]]``.
        """
        total = graph.total_param_bytes
        target = total / num_stages
        boundaries: List[int] = []
        running = 0
        for i, name in enumerate(order):
            running += graph.node(name).param_bytes
            if running >= target and len(boundaries) < num_stages - 1:
                boundaries.append(i + 1)
                running = 0
        while len(boundaries) < num_stages - 1:
            boundaries.append(len(order))
        return boundaries

    @staticmethod
    def _boundaries_to_assignment(
        order: Sequence[str], boundaries: Sequence[int]
    ) -> Dict[str, int]:
        assignment: Dict[str, int] = {}
        stage = 0
        cuts = list(boundaries) + [len(order)]
        for i, name in enumerate(order):
            while stage < len(cuts) - 1 and i >= cuts[stage]:
                stage += 1
            assignment[name] = stage
        return assignment

    # ------------------------------------------------------------------
    # compilation pass (operator mapping / tiling analysis per candidate)
    # ------------------------------------------------------------------
    @staticmethod
    def _compile_pass(
        graph: ComputationalGraph, order: Sequence[str], boundaries: Sequence[int]
    ) -> List[Dict[str, int]]:
        """One "compilation" of a candidate partition.

        Mirrors the work the real compiler performs per candidate: walk
        every operator, map it onto the systolic array (tiling decision
        derived from its attributes) and account its weight allocation
        segment by segment.  The returned per-segment summaries feed the
        profiler.
        """
        cuts = list(boundaries) + [len(order)]
        summaries: List[Dict[str, int]] = []
        start = 0
        for cut in cuts:
            segment = order[start:cut]
            params = 0
            macs = 0
            activation = 0
            for name in segment:
                node = graph.node(name)
                # Tiling decision: how many 64x64 tiles the op occupies.
                tiles = max(1, node.macs // (64 * 64)) if node.macs else 1
                params += node.param_bytes
                macs += node.macs
                activation = max(activation, node.output_bytes * min(tiles, 4))
            summaries.append(
                {"params": params, "macs": macs, "peak_activation": activation}
            )
            start = cut
        return summaries

    # ------------------------------------------------------------------
    # profiling partitioner (iterative recompile + measure)
    # ------------------------------------------------------------------
    def _profile_rebalance(
        self,
        graph: ComputationalGraph,
        order: Sequence[str],
        boundaries: List[int],
        num_stages: int,
    ):
        assert self.profiler is not None
        best_boundaries = list(boundaries)
        best_latency = self._profile(graph, order, best_boundaries, num_stages)
        iterations = 0
        for _ in range(self.max_profile_iterations):
            iterations += 1
            candidates = self._neighbor_partitions(best_boundaries, len(order))
            improved = False
            for candidate in candidates:
                latency = self._profile(graph, order, candidate, num_stages)
                if latency < best_latency:
                    best_latency = latency
                    best_boundaries = candidate
                    improved = True
            if not improved:
                break
        return best_boundaries, iterations

    def _profile(
        self,
        graph: ComputationalGraph,
        order: Sequence[str],
        boundaries: Sequence[int],
        num_stages: int,
    ) -> float:
        # Every profile requires a fresh compile of the candidate, exactly
        # like the real profiling partitioner recompiles per measurement.
        self._compile_pass(graph, order, boundaries)
        assignment = self._boundaries_to_assignment(order, boundaries)
        schedule = Schedule(graph, num_stages, assignment)
        return self.profiler(schedule)  # type: ignore[misc]

    @staticmethod
    def _neighbor_partitions(boundaries: List[int], length: int) -> List[List[int]]:
        """Candidate partitions: each boundary moved one op left/right."""
        candidates: List[List[int]] = []
        for i in range(len(boundaries)):
            for delta in (-1, 1):
                moved = list(boundaries)
                moved[i] += delta
                lower = 1 if i == 0 else moved[i - 1] + 1
                upper = length - 1 if i == len(boundaries) - 1 else moved[i + 1] - 1
                if lower <= moved[i] <= upper:
                    candidates.append(moved)
        return candidates
