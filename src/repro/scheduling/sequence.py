"""Sequence <-> schedule conversions: the paper's ``rho`` and ``gamma``.

The RL agent emits a *node sequence* ``pi`` (a permutation of V).  The
deterministic packer ``rho`` (Eq. 2) turns a sequence into a stage
assignment for a given Edge TPU pipeline: it walks the sequence filling
stage 0 with nodes until the per-stage memory budget is reached, then
stage 1, and so on.  The same ``rho`` is applied to the exact method's
sequence ``gamma`` so rewards compare like with like (Eq. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import Schedule

#: Multiplier on the ideal per-stage share ``total/n`` used as the packing
#: budget.  A little slack avoids spilling a single node into a new stage
#: when the running sum lands a few bytes over the ideal share.
DEFAULT_BUDGET_SLACK = 1.05


def normalize_stage_counts(num_stages, count: int) -> List[int]:
    """Broadcast/validate per-graph stage counts for batched scheduling.

    ``num_stages`` is either one int shared by ``count`` graphs or a
    sequence with exactly ``count`` entries; every entry must be >= 1.
    The single validation point shared by ``RespectScheduler
    .schedule_batch`` and ``flow.compare.schedule_many``.
    """
    if hasattr(num_stages, "__iter__"):
        counts = [int(stages) for stages in num_stages]
        if len(counts) != count:
            raise SchedulingError(
                f"num_stages has {len(counts)} entries for {count} graphs"
            )
    else:
        counts = [int(num_stages)] * count
    if any(stages < 1 for stages in counts):
        raise SchedulingError("num_stages must be at least 1")
    return counts


def validate_sequence(graph: ComputationalGraph, order: Sequence[str]) -> None:
    """Ensure ``order`` is a permutation of the graph's nodes."""
    if len(order) != graph.num_nodes:
        raise SchedulingError(
            f"sequence length {len(order)} != |V| = {graph.num_nodes}"
        )
    seen = set()
    for name in order:
        if name not in graph:
            raise SchedulingError(f"sequence refers to unknown node {name!r}")
        if name in seen:
            raise SchedulingError(f"sequence repeats node {name!r}")
        seen.add(name)


def minimal_feasible_budget(
    mem_sizes: Sequence[int], num_stages: int
) -> int:
    """Smallest per-stage budget packing ``mem_sizes`` into ``num_stages``.

    Classic linear-partition bound via binary search over budgets with a
    greedy feasibility check that mirrors :func:`pack_sequence`'s stage
    advancement exactly.  The result is the optimal *contiguous* peak for
    this particular order.
    """
    if num_stages < 1:
        raise SchedulingError("num_stages must be at least 1")
    low = max(mem_sizes) if mem_sizes else 0
    high = sum(mem_sizes)

    def fits(budget: int) -> bool:
        stages = 1
        used = 0
        for size in mem_sizes:
            if used > 0 and used + size > budget:
                stages += 1
                used = 0
                if stages > num_stages:
                    return False
            used += size
        return True

    while low < high:
        mid = (low + high) // 2
        if fits(mid):
            high = mid
        else:
            low = mid + 1
    return low


def pack_sequence(
    graph: ComputationalGraph,
    order: Sequence[str],
    num_stages: int,
    budget_bytes: Optional[int] = None,
    budget_slack: Optional[float] = None,
    dependency_aware: bool = False,
) -> Schedule:
    """``rho``: pack a node sequence into ``num_stages`` pipeline stages.

    Walks ``order`` with a monotone stage pointer.  A node opens the next
    stage when the current stage's parameter bytes would exceed the
    budget.  The budget defaults to the *minimal feasible* one for this
    order (binary search — optimal contiguous segmentation); passing
    ``budget_slack`` instead uses the simpler fixed share
    ``total_param_bytes / num_stages * budget_slack``, and
    ``budget_bytes`` pins it outright.  The final stage absorbs any
    overflow so every node is placed.

    With ``dependency_aware=True`` a node is additionally never placed
    before the latest stage of its already-placed parents, which removes
    most post-processing repairs at the cost of less faithful packing.
    """
    validate_sequence(graph, order)
    if num_stages < 1:
        raise SchedulingError("num_stages must be at least 1")
    if budget_bytes is None:
        if budget_slack is not None:
            ideal = graph.total_param_bytes / max(1, num_stages)
            budget_bytes = int(ideal * budget_slack)
        else:
            budget_bytes = minimal_feasible_budget(
                [graph.node(n).param_bytes for n in order], num_stages
            )
    if budget_bytes < 0:
        raise SchedulingError("budget_bytes must be non-negative")

    assignment: Dict[str, int] = {}
    stage = 0
    used = 0
    for name in order:
        node = graph.node(name)
        if (
            stage < num_stages - 1
            and used > 0
            and used + node.param_bytes > budget_bytes
        ):
            stage += 1
            used = 0
        target = stage
        if dependency_aware:
            parent_stages = [
                assignment[p] for p in graph.parents(name) if p in assignment
            ]
            if parent_stages:
                target = max(target, max(parent_stages))
            target = min(target, num_stages - 1)
            if target > stage:
                stage = target
                used = 0
        assignment[name] = target
        used += node.param_bytes
    return Schedule(graph, num_stages, assignment)


def schedule_to_sequence(schedule: Schedule) -> List[str]:
    """``gamma``: linearize an (exact) schedule into a label sequence.

    Delegates to :meth:`Schedule.to_sequence` — stage-major order with
    ASAP levels breaking ties inside a stage, so replaying the sequence
    through :func:`pack_sequence` reconstructs a schedule with the same
    stage boundaries (verified by round-trip tests).
    """
    return schedule.to_sequence()
