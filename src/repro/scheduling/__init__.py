"""Pipeline-scheduling algorithms.

Contains the schedule representation shared by every method, the exact
solvers (ILP via HiGHS, pure-Python branch-and-bound), the heuristic
baselines the paper compares against (Edge TPU compiler proxy, list
scheduling, Hu's algorithm, force-directed scheduling), metaheuristics
(simulated annealing, DP adaptive budgeting), the ``rho`` sequence packer
that turns RL output orders into stage assignments, and the deterministic
post-inference processing of Sec. III.
"""

from repro.scheduling.annealing import SimulatedAnnealingScheduler
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.dp_budget import DpBudgetScheduler
from repro.scheduling.force_directed import ForceDirectedScheduler
from repro.scheduling.heuristics import HuScheduler, ListScheduler
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.postprocess import (
    enforce_sibling_rule,
    postprocess_schedule,
    repair_dependencies,
)
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.scheduling.sequence import pack_sequence, schedule_to_sequence

__all__ = [
    "BranchAndBoundScheduler",
    "DpBudgetScheduler",
    "EdgeTpuCompilerProxy",
    "ForceDirectedScheduler",
    "HuScheduler",
    "IlpScheduler",
    "ListScheduler",
    "Schedule",
    "ScheduleResult",
    "SimulatedAnnealingScheduler",
    "enforce_sibling_rule",
    "pack_sequence",
    "postprocess_schedule",
    "repair_dependencies",
    "schedule_to_sequence",
]
