"""Experiment E1 — Table I: DNN model statistics.

Reproduces the |V| / deg(V) / Depth table for the ten benchmark models
and reports the match against the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graphs.topology import graph_depth
from repro.models.zoo import MODEL_BUILDERS, TABLE1_EXPECTED, build_model
from repro.utils.tables import format_table


@dataclass
class Table1Row:
    """One model's statistics next to the paper's values."""

    model: str
    num_nodes: int
    degree: int
    depth: int
    paper_num_nodes: Optional[int]
    paper_degree: Optional[int]
    paper_depth: Optional[int]

    @property
    def matches_paper(self) -> Optional[bool]:
        if self.paper_num_nodes is None:
            return None
        return (
            self.num_nodes == self.paper_num_nodes
            and self.degree == self.paper_degree
            and self.depth == self.paper_depth
        )


def run_table1(models: Optional[List[str]] = None) -> List[Table1Row]:
    """Build every model and collect its Table I statistics."""
    names = models if models is not None else list(TABLE1_EXPECTED)
    rows: List[Table1Row] = []
    for name in names:
        graph = build_model(name)
        expected = TABLE1_EXPECTED.get(name, {})
        rows.append(
            Table1Row(
                model=name,
                num_nodes=graph.num_nodes,
                degree=graph.max_in_degree,
                depth=graph_depth(graph),
                paper_num_nodes=expected.get("num_nodes"),
                paper_degree=expected.get("degree"),
                paper_depth=expected.get("depth"),
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the Table I reproduction."""
    body = []
    for row in rows:
        match = row.matches_paper
        body.append(
            [
                row.model,
                row.num_nodes,
                row.degree,
                row.depth,
                row.paper_num_nodes if row.paper_num_nodes is not None else "-",
                row.paper_degree if row.paper_degree is not None else "-",
                row.paper_depth if row.paper_depth is not None else "-",
                "yes" if match else ("-" if match is None else "NO"),
            ]
        )
    return format_table(
        ["model", "|V|", "deg(V)", "depth", "paper |V|", "paper deg", "paper depth", "match"],
        body,
        title="Table I — DNN computational-graph statistics",
    )
