"""Experiment drivers — one callable per paper table/figure.

Each driver returns structured rows plus a ``format_*`` helper that
renders the same series the paper reports; the ``benchmarks/`` harness
wraps them in pytest-benchmark targets.
"""

from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.fleet_routing import (
    format_fleet_routing,
    run_fleet_routing,
)
from repro.experiments.online_adaptation import (
    format_online_adaptation,
    run_online_adaptation,
)

__all__ = [
    "format_fig3",
    "format_fig4",
    "format_fig5",
    "format_fleet_routing",
    "format_online_adaptation",
    "format_table1",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fleet_routing",
    "run_online_adaptation",
    "run_table1",
]
