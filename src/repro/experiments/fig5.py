"""Experiment E4 — Fig. 5: gap-to-optimal parameter caching.

For twelve ImageNet models and 4/5/6-stage pipelines, compare the peak
per-stage parameter-caching footprint of RESPECT's schedule against the
exact optimum (the phase-1 objective of the lexicographic ILP).  The
paper reports average gaps of 2.26% / 2.74% / 6.31% for 4/5/6 stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.models.zoo import FIG5_MODELS, build_model
from repro.rl.respect import RespectScheduler
from repro.scheduling.ilp import IlpScheduler
from repro.tpu.quantize import quantize_graph
from repro.utils.stats import mean
from repro.utils.tables import format_table

#: Average gap-to-optimal percentages the paper reports per stage count.
PAPER_AVERAGE_GAPS = {4: 2.26, 5: 2.74, 6: 6.31}


@dataclass
class Fig5Row:
    """Peak memory of RESPECT vs the exact optimum for one cell."""

    model: str
    num_stages: int
    optimal_bytes: int
    respect_bytes: int

    @property
    def gap_fraction(self) -> float:
        if self.optimal_bytes == 0:
            return 0.0
        return (self.respect_bytes - self.optimal_bytes) / self.optimal_bytes

    @property
    def gap_percent(self) -> float:
        return 100.0 * self.gap_fraction


def run_fig5(
    models: Optional[Sequence[str]] = None,
    stage_counts: Sequence[int] = (4, 5, 6),
    respect: Optional[RespectScheduler] = None,
    ilp_time_limit: float = 300.0,
) -> List[Fig5Row]:
    """Measure peak parameter-caching memory: RESPECT vs exact optimum."""
    names = list(models) if models is not None else list(FIG5_MODELS)
    respect = respect or RespectScheduler()
    rows: List[Fig5Row] = []
    for name in names:
        graph = quantize_graph(build_model(name))
        # One RESPECT decode covers every stage count (stage sweep).
        respect_results = respect.schedule_stage_sweep(graph, stage_counts)
        for respect_result, num_stages in zip(respect_results, stage_counts):
            ilp = IlpScheduler(peak_tolerance=0.0, time_limit=ilp_time_limit)
            exact = ilp.schedule(graph, num_stages)
            optimal = int(exact.extras["peak_optimum_bytes"])
            rows.append(
                Fig5Row(
                    model=name,
                    num_stages=num_stages,
                    optimal_bytes=optimal,
                    respect_bytes=respect_result.schedule.peak_stage_param_bytes,
                )
            )
    return rows


def average_gaps(rows: List[Fig5Row]) -> Dict[int, float]:
    """Average gap-to-optimal percent per stage count."""
    out: Dict[int, float] = {}
    for num_stages in sorted({r.num_stages for r in rows}):
        panel = [r.gap_percent for r in rows if r.num_stages == num_stages]
        out[num_stages] = mean(panel)
    return out


def format_fig5(rows: List[Fig5Row]) -> str:
    """Render the three Fig. 5 panels plus the average-gap summary."""
    parts: List[str] = []
    for num_stages in sorted({r.num_stages for r in rows}):
        panel = [r for r in rows if r.num_stages == num_stages]
        body = [
            [
                row.model,
                f"{row.optimal_bytes / 1e6:.3f}",
                f"{row.respect_bytes / 1e6:.3f}",
                f"{row.gap_percent:.2f}%",
            ]
            for row in panel
        ]
        parts.append(
            format_table(
                ["model", "optimal objective (MB)", "RESPECT (MB)", "gap"],
                body,
                title=f"Fig. 5 ({num_stages}-stage) — parameter caching vs optimum",
            )
        )
    gaps = average_gaps(rows)
    summary_bits = []
    for num_stages, gap in gaps.items():
        paper = PAPER_AVERAGE_GAPS.get(num_stages)
        paper_note = f" (paper: {paper:.2f}%)" if paper is not None else ""
        summary_bits.append(f"{num_stages}-stage {gap:.2f}%{paper_note}")
    parts.append("average gap-to-optimal: " + ", ".join(summary_bits))
    return "\n\n".join(parts)
