"""Experiment E6 — ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism:

* **reward** — stage-vector cosine (Eq. 3) vs raw sequence cosine
  (Eq. 1) vs exact-match, measured on a trained policy's rollouts;
* **baseline** — REINFORCE variance with rollout / batch-mean / no
  baseline over a short training run;
* **embedding columns** — imitation accuracy with parent IDs or the
  memory column removed;
* **post-processing** — dependency-violation counts of unconstrained
  decoding with and without repair (and with the precedence mask);
* **bus topology** — simulated runtime under the shared-bus worst case
  vs per-stage links (why communication-oblivious schedules collapse);
* **rho budget slack** — sensitivity of packed peak memory to the
  per-stage budget multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.synthetic import (
    LabeledExample,
    batch_examples,
    generate_dataset,
    stack_precedence,
)
from repro.embedding.features import EmbeddingConfig
from repro.models.zoo import build_model
from repro.rl.imitation import ImitationConfig, ImitationTrainer
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.rl.respect import RespectScheduler
from repro.rl.reward import (
    exact_match_fraction,
    sequence_cosine_reward,
    stage_cosine_reward,
)
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.postprocess import postprocess_schedule, repair_dependencies
from repro.scheduling.sequence import pack_sequence
from repro.tpu.pipeline import PipelinedTpuSystem
from repro.tpu.quantize import quantize_graph
from repro.utils.stats import mean, stddev


# ----------------------------------------------------------------------
# reward-definition ablation
# ----------------------------------------------------------------------
def ablate_reward_definitions(
    policy: PointerNetworkPolicy,
    examples: Sequence[LabeledExample],
) -> Dict[str, float]:
    """Mean value of each reward definition over greedy rollouts."""
    seq_rewards: List[float] = []
    stage_rewards: List[float] = []
    matches: List[float] = []
    for chunk, features, targets in batch_examples(
        examples, batch_size=16, shuffle=False
    ):
        rollout = policy.forward(
            features, mode="greedy", precedence=stack_precedence(chunk)
        )
        for b, example in enumerate(chunk):
            pi = rollout.actions[b]
            gamma = targets[b]
            seq_rewards.append(sequence_cosine_reward(pi, gamma))
            matches.append(exact_match_fraction(pi, gamma))
            packed_pi = pack_sequence(
                example.graph, example.queue.names_for(pi), example.num_stages
            )
            packed_gamma = pack_sequence(
                example.graph, example.queue.names_for(gamma), example.num_stages
            )
            names = example.queue.node_names
            stage_rewards.append(
                stage_cosine_reward(
                    [packed_pi.assignment[n] for n in names],
                    [packed_gamma.assignment[n] for n in names],
                )
            )
    return {
        "sequence_cosine_eq1": mean(seq_rewards),
        "stage_cosine_eq3": mean(stage_rewards),
        "exact_match": mean(matches),
    }


# ----------------------------------------------------------------------
# baseline-variant ablation
# ----------------------------------------------------------------------
def ablate_baselines(
    examples: Sequence[LabeledExample],
    feature_dim: int,
    steps: int = 15,
    hidden_size: int = 24,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Short REINFORCE runs per baseline kind; reports advantage spread.

    The rollout baseline should show the smallest advantage standard
    deviation (that is its purpose — Eq. 6's variance reduction).
    """
    out: Dict[str, Dict[str, float]] = {}
    for kind in ("rollout", "batch_mean", "none"):
        policy = PointerNetworkPolicy(
            feature_dim=feature_dim, hidden_size=hidden_size, seed=seed
        )
        trainer = ReinforceTrainer(
            policy,
            list(examples),
            ReinforceConfig(batch_size=8, baseline=kind, seed=seed),
        )
        history = trainer.train(steps)
        advantages = [m.mean_cost - m.mean_baseline for m in history]
        out[kind] = {
            "final_cost": history[-1].mean_cost,
            "advantage_std": stddev(advantages),
            "mean_grad_norm": mean([m.grad_norm for m in history]),
        }
    return out


# ----------------------------------------------------------------------
# embedding-column ablation
# ----------------------------------------------------------------------
def ablate_embedding_columns(
    steps: int = 40,
    dataset_size: int = 60,
    num_nodes: int = 12,
    hidden_size: int = 32,
    seed: int = 0,
) -> Dict[str, float]:
    """Imitation token accuracy with embedding column groups removed."""
    variants = {
        "full": EmbeddingConfig(),
        "no_parent_ids": EmbeddingConfig(include_parent_ids=False),
        "no_memory": EmbeddingConfig(include_memory=False),
        "no_parent_levels": EmbeddingConfig(include_parent_levels=False),
    }
    out: Dict[str, float] = {}
    for name, config in variants.items():
        examples = generate_dataset(
            dataset_size, num_nodes=num_nodes, embedding=config, seed=seed
        )
        policy = PointerNetworkPolicy(
            feature_dim=config.feature_dim, hidden_size=hidden_size, seed=seed
        )
        trainer = ImitationTrainer(
            policy, examples, ImitationConfig(batch_size=8, seed=seed)
        )
        history = trainer.train(steps)
        out[name] = history[-1].token_accuracy
    return out


# ----------------------------------------------------------------------
# post-processing ablation
# ----------------------------------------------------------------------
@dataclass
class PostprocessAblation:
    """Dependency-violation statistics of one decoding configuration."""

    mean_violations_raw: float
    mean_violations_repaired: float
    mean_peak_bytes_raw: float
    mean_peak_bytes_repaired: float


def ablate_postprocessing(
    respect: Optional[RespectScheduler] = None,
    models: Sequence[str] = ("Xception", "ResNet50"),
    num_stages: int = 4,
) -> Dict[str, PostprocessAblation]:
    """Compare constrained vs unconstrained decoding, before/after repair."""
    base = respect or RespectScheduler()
    out: Dict[str, PostprocessAblation] = {}
    graphs = [quantize_graph(build_model(name)) for name in models]
    for constrained in (True, False):
        scheduler = RespectScheduler(
            policy=base.policy,
            embedding_config=base.embedding_config,
            budget_slack=base.budget_slack,
            constrain_topological=constrained,
        )
        violations_raw: List[float] = []
        violations_rep: List[float] = []
        peak_raw: List[float] = []
        peak_rep: List[float] = []
        # One padded batched decode covers every model in this variant.
        orders = scheduler.decode_orders(graphs)
        for graph, order in zip(graphs, orders):
            raw = pack_sequence(graph, order, num_stages)
            repaired = repair_dependencies(raw)
            violations_raw.append(len(raw.dependency_violations()))
            violations_rep.append(len(repaired.dependency_violations()))
            peak_raw.append(raw.peak_stage_param_bytes)
            peak_rep.append(repaired.peak_stage_param_bytes)
        key = "constrained" if constrained else "unconstrained"
        out[key] = PostprocessAblation(
            mean_violations_raw=mean(violations_raw),
            mean_violations_repaired=mean(violations_rep),
            mean_peak_bytes_raw=mean(peak_raw),
            mean_peak_bytes_repaired=mean(peak_rep),
        )
    return out


# ----------------------------------------------------------------------
# bus-topology ablation
# ----------------------------------------------------------------------
def ablate_bus_topology(
    model: str = "ResNet50",
    num_stages: int = 6,
    num_inferences: int = 200,
) -> Dict[str, Dict[str, float]]:
    """Per-inference runtime under per-stage links vs one shared bus."""
    graph = quantize_graph(build_model(model))
    out: Dict[str, Dict[str, float]] = {}
    for method_name, scheduler in (
        ("edgetpu_compiler", EdgeTpuCompilerProxy()),
        ("ilp", IlpScheduler()),
    ):
        result = scheduler.schedule(graph, num_stages)
        row: Dict[str, float] = {}
        for mode in ("per_stage", "shared"):
            system = PipelinedTpuSystem(bus_mode=mode)
            report = system.run(graph, result.schedule, num_inferences)
            row[mode] = report.seconds_per_inference
        out[method_name] = row
    return out


# ----------------------------------------------------------------------
# rho budget-slack ablation
# ----------------------------------------------------------------------
def ablate_budget_slack(
    respect: Optional[RespectScheduler] = None,
    model: str = "ResNet50",
    num_stages: int = 4,
    slacks: Sequence[float] = (1.0, 1.05, 1.1, 1.25, 1.5),
) -> Dict[float, int]:
    """Peak memory of the packed schedule as the rho budget slack varies."""
    base = respect or RespectScheduler()
    graph = quantize_graph(build_model(model))
    # The greedy decode is slack-independent: decode once, re-pack per
    # slack (same schedules as one full scheduler run per slack).
    order = base.decode_orders([graph])[0]
    out: Dict[float, int] = {}
    for slack in slacks:
        packed = pack_sequence(graph, order, num_stages, budget_slack=slack)
        schedule = postprocess_schedule(
            packed, enforce_siblings=base.enforce_siblings
        )
        out[slack] = schedule.peak_stage_param_bytes
    return out
