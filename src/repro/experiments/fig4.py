"""Experiment E3 — Fig. 4: pipelined Edge TPU inference runtime.

Simulated per-inference runtime of the three methods' schedules on 4-,
5- and 6-stage pipelines, normalized to the Edge TPU compiler baseline
(= 1.0), exactly how the paper plots it.  The expected shape: RESPECT
and the exact method at or below 1.0 with the margin growing as stages
increase (compiler heuristics degrade with scheduling complexity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.models.zoo import FIG4_MODELS, build_model
from repro.rl.respect import RespectScheduler
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.postprocess import postprocess_schedule
from repro.tpu.pipeline import PipelinedTpuSystem
from repro.tpu.quantize import quantize_graph
from repro.utils.stats import mean
from repro.utils.tables import format_table


@dataclass
class Fig4Row:
    """Normalized runtimes for one (model, stage count) cell."""

    model: str
    num_stages: int
    compiler_seconds: float
    ilp_seconds: float
    respect_seconds: float

    @property
    def relative_ilp(self) -> float:
        return self.ilp_seconds / self.compiler_seconds

    @property
    def relative_respect(self) -> float:
        return self.respect_seconds / self.compiler_seconds

    @property
    def respect_speedup(self) -> float:
        """RESPECT's on-chip speedup over the compiler (paper: up to 2.5x)."""
        return self.compiler_seconds / self.respect_seconds


def run_fig4(
    models: Optional[Sequence[str]] = None,
    stage_counts: Sequence[int] = (4, 5, 6),
    num_inferences: int = 1000,
    respect: Optional[RespectScheduler] = None,
    ilp_time_limit: float = 300.0,
) -> List[Fig4Row]:
    """Simulate all three methods across models and stage counts."""
    names = list(models) if models is not None else list(FIG4_MODELS)
    respect = respect or RespectScheduler()
    system = PipelinedTpuSystem()
    rows: List[Fig4Row] = []
    for name in names:
        graph = quantize_graph(build_model(name))
        # RESPECT decodes once for all stage counts (stage sweep);
        # the baselines solve each stage count independently.
        respect_results = respect.schedule_stage_sweep(graph, stage_counts)
        for idx, num_stages in enumerate(stage_counts):
            seconds: Dict[str, float] = {}
            results = {
                "compiler": EdgeTpuCompilerProxy().schedule(graph, num_stages),
                "ilp": IlpScheduler(time_limit=ilp_time_limit).schedule(
                    graph, num_stages
                ),
                "respect": respect_results[idx],
            }
            for method, result in results.items():
                schedule = postprocess_schedule(result.schedule)
                report = system.run(graph, schedule, num_inferences=num_inferences)
                seconds[method] = report.seconds_per_inference
            rows.append(
                Fig4Row(
                    model=name,
                    num_stages=num_stages,
                    compiler_seconds=seconds["compiler"],
                    ilp_seconds=seconds["ilp"],
                    respect_seconds=seconds["respect"],
                )
            )
    return rows


def format_fig4(rows: List[Fig4Row]) -> str:
    """Render the three Fig. 4 panels (4-, 5-, 6-stage)."""
    parts: List[str] = []
    for num_stages in sorted({r.num_stages for r in rows}):
        panel = [r for r in rows if r.num_stages == num_stages]
        body = [
            [
                row.model,
                1.0,
                round(row.relative_ilp, 3),
                round(row.relative_respect, 3),
                f"{row.respect_speedup:.2f}x",
            ]
            for row in panel
        ]
        table = format_table(
            ["model", "EdgeTPU compiler", "exact method", "RESPECT", "speedup"],
            body,
            title=(
                f"Fig. 4 ({num_stages}-stage) — normalized inference runtime "
                f"(compiler = 1.0)"
            ),
        )
        avg_respect = mean([row.relative_respect for row in panel])
        parts.append(
            table
            + f"\naverage RESPECT relative runtime: {avg_respect:.3f} "
            f"(speedup {1.0 / avg_respect:.2f}x over compiler)"
        )
    return "\n\n".join(parts)
