"""Experiment — routing-policy comparison over the standard fleet suite.

The first end-to-end composition of the whole stack: model zoo ->
:class:`~repro.service.SchedulingService`-backed schedules ->
heterogeneous :class:`~repro.cluster.Fleet` -> router policies ->
fleet discrete-event simulation -> per-tenant SLO attainment, latency
percentiles and per-request energy.  Every (scenario, fleet) pair from
:func:`repro.cluster.scenarios.standard_suite` is simulated once per
router under the same seed, so the routers face the *identical* request
trace and differ only in dispatch decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.fleet import Fleet, ReplicaSpec, build_fleet
from repro.cluster.report import FleetReport
from repro.cluster.router import Router, default_routers
from repro.cluster.scenarios import scenario_models, standard_suite
from repro.cluster.simulate import simulate_scenario
from repro.cluster.workload import Scenario
from repro.scheduling.heuristics import ListScheduler
from repro.service import SchedulingService
from repro.utils.tables import format_table


@dataclass
class FleetRoutingRow:
    """One (scenario, router) cell of the comparison."""

    scenario: str
    router: str
    requests: int
    completed: int
    rejected: int
    slo_attainment: float
    worst_tenant_attainment: float
    p99_latency_s: float
    throughput_per_s: float
    joules_per_completed: float
    max_replica_utilization: float
    schedule_reuse_hit_rate: float
    report: FleetReport


def _row(report: FleetReport) -> FleetRoutingRow:
    return FleetRoutingRow(
        scenario=report.scenario,
        router=report.router,
        requests=report.requests,
        completed=report.completed,
        rejected=report.rejected,
        slo_attainment=report.slo_attainment,
        worst_tenant_attainment=min(
            (t.slo_attainment for t in report.tenants), default=0.0
        ),
        p99_latency_s=max(
            (t.latency_p99_s for t in report.tenants), default=0.0
        ),
        throughput_per_s=report.throughput_per_s,
        joules_per_completed=report.joules_per_completed,
        max_replica_utilization=max(
            (r.utilization for r in report.replicas), default=0.0
        ),
        schedule_reuse_hit_rate=report.schedule_reuse_hit_rate,
        report=report,
    )


def run_fleet_routing(
    suite: Optional[Sequence[Tuple[Scenario, List[ReplicaSpec]]]] = None,
    routers: Optional[Sequence[Router]] = None,
    scheduler_factory=ListScheduler,
    seed: int = 0,
) -> List[FleetRoutingRow]:
    """Simulate every router over every (scenario, fleet) of the suite.

    One :class:`SchedulingService` (and therefore one fingerprint cache)
    is shared across *all* fleets, so replicas with equal stage counts —
    within and across fleets — reuse schedules; the per-row
    ``schedule_reuse_hit_rate`` quantifies it.
    """
    suite = list(suite) if suite is not None else standard_suite()
    routers = list(routers) if routers is not None else default_routers()
    rows: List[FleetRoutingRow] = []
    with SchedulingService(scheduler_factory()) as service:
        for scenario, replica_specs in suite:
            models = scenario_models(scenario)
            fleet = build_fleet(replica_specs, models, service=service)
            for router in routers:
                report = simulate_scenario(scenario, fleet, router, seed=seed)
                rows.append(_row(report))
    return rows


def format_fleet_routing(rows: Sequence[FleetRoutingRow]) -> str:
    """Render the comparison as the experiment's summary table."""
    return format_table(
        [
            "scenario",
            "router",
            "reqs",
            "done",
            "rej",
            "SLO%",
            "worst tenant%",
            "p99 (s)",
            "req/s",
            "J/req",
            "peak util",
            "sched reuse%",
        ],
        [
            [
                row.scenario,
                row.router,
                row.requests,
                row.completed,
                row.rejected,
                100.0 * row.slo_attainment,
                100.0 * row.worst_tenant_attainment,
                row.p99_latency_s,
                row.throughput_per_s,
                row.joules_per_completed,
                row.max_replica_utilization,
                100.0 * row.schedule_reuse_hit_rate,
            ]
            for row in rows
        ],
        title="Fleet routing-policy comparison",
    )


def attainment_by_router(
    rows: Sequence[FleetRoutingRow],
) -> Dict[str, Dict[str, float]]:
    """``{scenario: {router: SLO attainment}}`` — the headline series."""
    series: Dict[str, Dict[str, float]] = {}
    for row in rows:
        series.setdefault(row.scenario, {})[row.router] = row.slo_attainment
    return series
