"""Experiment — online adaptation under workload drift.

The end-to-end composition of the online subsystem: one deterministic
drifting request stream (:func:`repro.cluster.scenarios
.attention_drift_scenario` — tenants shift from compute-uniform CNN
graphs to attention-heavy graphs mid-run) is served twice by the same
pretrained champion:

* **frozen** — a plain :class:`~repro.service.SchedulingService`; after
  the drift point its mean pipeline-efficiency reward collapses (the
  champion's decode order colocates the hot attention heads and the
  parameter-byte packer cannot see compute);
* **adaptive** — the same service with an
  :class:`~repro.online.AdaptationLoop` attached: drift is detected from
  the served-fingerprint stream, a challenger is fine-tuned on the
  drifted traffic, shadow-evaluated, promoted into the serving path via
  hot-swap, and the post-promotion serves recover to (within a few
  percent of) the pre-drift schedule quality.

Both passes see the *identical* request trace under one seed, so the
whole experiment — drift point, detection serve, promotion serve, every
reward — replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.drifting import GraphDriftScenario, generate_graph_requests
from repro.cluster.scenarios import attention_drift_scenario
from repro.online import (
    AdaptationConfig,
    AdaptationLoop,
    AdaptationReport,
    DriftDetector,
    ExperienceBuffer,
    PipelineLatencyReward,
    default_reward_model,
)
from repro.rl.respect import RespectScheduler
from repro.service import SchedulingService
from repro.utils.rng import spawn_rngs
from repro.utils.stats import percentile
from repro.utils.tables import format_table

#: Seed-domain offset separating the fresh fine-tuning stream from the
#: served trace's tenant generators (which spawn from the bare seed).
_FRESH_FAMILY_SEED_DOMAIN = 977_000_000


@dataclass(frozen=True)
class ServedPhaseStats:
    """Reward/latency summary of one (series, phase) slice.

    ``p99_gap_to_bound`` is the latency headline: the 99th percentile of
    per-request relative overhead over the graph's own lower-bound
    period.  (Absolute periods are not comparable across the drift point
    — post-drift graphs carry inherently heavier operators — so the
    per-graph normalization is what makes pre/post recovery claims
    meaningful.)
    """

    series: str
    phase: str
    requests: int
    mean_reward: float
    p99_period_s: float
    mean_gap_to_bound: float
    p99_gap_to_bound: float


@dataclass
class OnlineAdaptationResult:
    """Everything the drift experiment measures."""

    scenario: str
    seed: int
    requests: int
    drift_request_index: int
    #: Every request index at which the detector raised an event (a
    #: pre-drift entry is a false alarm — the promotion gate, not the
    #: detector, is the last line of defense).
    detection_request_indices: List[int]
    promotion_request_index: Optional[int]
    phases: List[ServedPhaseStats]
    adaptation_reports: List[AdaptationReport]
    #: Aligned per-request rewards: ``rewards[series][i]``.
    rewards: Dict[str, List[float]]

    # -- headline numbers ----------------------------------------------
    def phase_stats(self, series: str, phase: str) -> ServedPhaseStats:
        for stats in self.phases:
            if stats.series == series and stats.phase == phase:
                return stats
        raise KeyError(f"no phase stats for {(series, phase)}")

    @property
    def pre_drift_reward(self) -> float:
        """Champion quality on the pre-drift traffic (frozen pass)."""
        return self.phase_stats("frozen", "pre").mean_reward

    @property
    def frozen_post_reward(self) -> float:
        return self.phase_stats("frozen", "post").mean_reward

    @property
    def promoted(self) -> bool:
        return self.promotion_request_index is not None

    @property
    def adaptive_recovered_reward(self) -> float:
        """Adaptive-service quality on post-promotion serves.

        Falls back to the whole post-drift slice when no challenger was
        promoted (the adaptive service then just served the champion).
        """
        if not self.promoted:
            return self.phase_stats("adaptive", "post").mean_reward
        return self.phase_stats("adaptive", "post_promoted").mean_reward

    @property
    def degradation(self) -> float:
        """Relative reward loss of the frozen champion after drift."""
        if self.pre_drift_reward <= 0:
            return 0.0
        return 1.0 - self.frozen_post_reward / self.pre_drift_reward

    @property
    def recovery_gap(self) -> float:
        """Relative shortfall of the adapted service vs pre-drift."""
        if self.pre_drift_reward <= 0:
            return 0.0
        return 1.0 - self.adaptive_recovered_reward / self.pre_drift_reward


def _phase_stats(
    series: str,
    phase: str,
    rewards: Sequence[float],
    periods: Sequence[float],
) -> ServedPhaseStats:
    if not rewards:
        return ServedPhaseStats(series, phase, 0, 0.0, 0.0, 0.0, 0.0)
    gaps = [1.0 / r - 1.0 for r in rewards if r > 0]
    return ServedPhaseStats(
        series=series,
        phase=phase,
        requests=len(rewards),
        mean_reward=sum(rewards) / len(rewards),
        p99_period_s=percentile(list(periods), 99),
        mean_gap_to_bound=sum(gaps) / len(rewards),
        p99_gap_to_bound=percentile(gaps, 99) if gaps else 0.0,
    )


def run_online_adaptation(
    seed: int = 0,
    scenario: Optional[GraphDriftScenario] = None,
    adaptation: Optional[AdaptationConfig] = None,
    reward_model: Optional[PipelineLatencyReward] = None,
    reference_size: int = 48,
    detector_window: int = 24,
    detector_threshold: float = 2.0,
    adapt_warmup_serves: int = 24,
    max_adaptations: int = 2,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> OnlineAdaptationResult:
    """Serve one drifting trace frozen and adaptively; measure recovery.

    ``adapt_warmup_serves`` delays the (synchronous) adaptation until
    that many serves followed drift detection, so the experience
    buffer's recent window is genuinely drifted — the live loop gets the
    same effect from traffic arriving while fine-tuning runs in the
    background.  ``max_adaptations`` bounds the fine-tuning rounds (the
    promotion gate already rejects unhelpful challengers; the cap just
    bounds the experiment's wall-clock).
    """
    scenario = scenario or attention_drift_scenario()
    reward_model = reward_model or default_reward_model()
    requests = generate_graph_requests(scenario, seed)
    if not requests:
        raise ValueError("scenario generated an empty request stream")
    drift_index = next(
        (i for i, r in enumerate(requests) if r.phase == "post"), len(requests)
    )

    def measure(request, result) -> Tuple[float, float]:
        """(reward, period) with one stage-profile pass, not two."""
        period = reward_model.period(request.graph, result.schedule)
        bound = reward_model.bound_period(request.graph, request.num_stages)
        return (bound / period if period > 0 else 1.0), period

    # ------------------------------------------------------------- frozen
    frozen_rewards: List[float] = []
    frozen_periods: List[float] = []
    with SchedulingService(RespectScheduler(), batch_window_s=0.0) as service:
        for request in requests:
            result = service.schedule(request.graph, request.num_stages)
            reward, period = measure(request, result)
            frozen_rewards.append(reward)
            frozen_periods.append(period)

    # ----------------------------------------------------------- adaptive
    config = adaptation or AdaptationConfig(
        max_adaptation_graphs=40,
        fresh_graphs=24,
        imitation_steps=600,
        reinforce_steps=20,
        seed=seed,
    )
    if checkpoint_dir is not None:
        config = replace(config, checkpoint_dir=checkpoint_dir)
    # Fresh drifted samples for fine-tuning come from the scenario's own
    # post-drift family, on a child seed from a disjoint domain so the
    # stream never collides with the served trace's tenant generators.
    (fresh_rng,) = spawn_rngs(_FRESH_FAMILY_SEED_DOMAIN + seed, 1)
    fresh_family = scenario.post_family(fresh_rng)

    adaptive_rewards: List[float] = []
    adaptive_periods: List[float] = []
    detection_indices: List[int] = []
    promotion_index: Optional[int] = None
    reports: List[AdaptationReport] = []
    with SchedulingService(RespectScheduler(), batch_window_s=0.0) as service:
        loop = AdaptationLoop(
            service,
            buffer=ExperienceBuffer(capacity=256, seed=seed),
            detector=DriftDetector(
                reference_size=reference_size,
                window_size=detector_window,
                threshold=detector_threshold,
            ),
            config=config,
            reward_model=reward_model,
            graph_source=lambda count: fresh_family.sample_batch(count),
        ).attach()
        seen_event = None
        serves_since_event = 0
        for index, request in enumerate(requests):
            result = service.schedule(request.graph, request.num_stages)
            reward, period = measure(request, result)
            adaptive_rewards.append(reward)
            adaptive_periods.append(period)
            event = loop.pending_event
            if event is None:
                continue
            if event is not seen_event:
                # A genuinely new detection (not the same unconsumed
                # event observed again, e.g. after max_adaptations).
                seen_event = event
                serves_since_event = 0
                detection_indices.append(index)
            else:
                serves_since_event += 1
            if (
                serves_since_event >= adapt_warmup_serves
                or index == len(requests) - 1
            ) and len(reports) < max_adaptations:
                report = loop.run_pending()
                if report is not None:
                    reports.append(report)
                    if report.promotion is not None:
                        promotion_index = index + 1
        loop.detach()

    # ------------------------------------------------------------ summary
    def split(series: str, rewards, periods) -> List[ServedPhaseStats]:
        stats = [
            _phase_stats(
                series, "pre", rewards[:drift_index], periods[:drift_index]
            ),
            _phase_stats(
                series, "post", rewards[drift_index:], periods[drift_index:]
            ),
        ]
        if series == "adaptive" and promotion_index is not None:
            stats.append(
                _phase_stats(
                    series,
                    "post_frozen_window",
                    rewards[drift_index:promotion_index],
                    periods[drift_index:promotion_index],
                )
            )
            stats.append(
                _phase_stats(
                    series,
                    "post_promoted",
                    rewards[promotion_index:],
                    periods[promotion_index:],
                )
            )
        return stats

    phases = split("frozen", frozen_rewards, frozen_periods) + split(
        "adaptive", adaptive_rewards, adaptive_periods
    )
    return OnlineAdaptationResult(
        scenario=scenario.name,
        seed=seed,
        requests=len(requests),
        drift_request_index=drift_index,
        detection_request_indices=detection_indices,
        promotion_request_index=promotion_index,
        phases=phases,
        adaptation_reports=reports,
        rewards={"frozen": frozen_rewards, "adaptive": adaptive_rewards},
    )


def format_online_adaptation(result: OnlineAdaptationResult) -> str:
    """Render the experiment's summary table."""
    rows = [
        [
            stats.series,
            stats.phase,
            stats.requests,
            stats.mean_reward,
            100.0 * stats.mean_gap_to_bound,
            100.0 * stats.p99_gap_to_bound,
            stats.p99_period_s * 1e3,
        ]
        for stats in result.phases
        if stats.requests
    ]
    table = format_table(
        [
            "series",
            "phase",
            "reqs",
            "mean reward",
            "gap %",
            "p99 gap %",
            "p99 period (ms)",
        ],
        rows,
        title=(
            f"Online adaptation under drift — scenario "
            f"{result.scenario!r}, seed {result.seed}"
        ),
    )
    lines = [
        table,
        (
            f"drift at request {result.drift_request_index}, detections at "
            f"{result.detection_request_indices}, promoted at "
            f"{result.promotion_request_index}"
        ),
        (
            f"frozen champion degradation: {100 * result.degradation:.1f}% | "
            f"adaptive recovery gap vs pre-drift: "
            f"{100 * result.recovery_gap:.1f}%"
        ),
    ]
    for report in result.adaptation_reports:
        evaluation = report.evaluation
        lines.append(
            f"adaptation [{report.status}]: teacher "
            f"{report.teacher_mean_reward:.3f}, imitation accuracy "
            f"{report.imitation_final_accuracy:.2f}"
            + (
                f", shadow champion {evaluation.champion_mean:.3f} vs "
                f"challenger {evaluation.challenger_mean:.3f} "
                f"(z={evaluation.z_score:.2f})"
                if evaluation is not None
                else ""
            )
        )
    return "\n".join(lines)


__all__ = [
    "OnlineAdaptationResult",
    "ServedPhaseStats",
    "format_online_adaptation",
    "run_online_adaptation",
]
