"""Experiment E2 — Fig. 3: schedule solving-time speedups.

For every (model, stage count) the paper measures the wall-clock time
each method needs to *produce a schedule* and plots RESPECT's speedup
over (a) the commercial Edge TPU compiler and (b) the exact ILP.  The
reproduction measures the same three solvers on the same ten models.

Caveat recorded in EXPERIMENTS.md: the real ``edgetpu_compiler`` is a
closed-source binary whose invocation costs seconds (full compilation);
our proxy performs only the partitioning/compile-pass work, so measured
RESPECT-over-compiler speedups are smaller than the paper's 24-683x.

Measurement note: RESPECT is timed through
``RespectScheduler.schedule_stage_sweep`` — one stage-independent
decode shared by all stage counts, with the wall-clock amortized per
schedule — while the compiler and ILP (which share no work between
stage counts) are timed per cell.  The paper times one solve per cell
for every method; our per-cell RESPECT cost is the amortized figure, so
speedups here are modestly more favorable to RESPECT than a strict
per-cell replication (a solo ``schedule()`` call costs roughly
``len(stage_counts)`` times the amortized number's decode share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.models.zoo import FIG4_MODELS, build_model
from repro.rl.respect import RespectScheduler
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.ilp import IlpScheduler
from repro.tpu.pipeline import PipelinedTpuSystem
from repro.tpu.quantize import quantize_graph
from repro.utils.stats import ratio_summary
from repro.utils.tables import format_table


@dataclass
class Fig3Row:
    """Solving times of the three methods for one configuration."""

    model: str
    num_nodes: int
    num_stages: int
    respect_seconds: float
    compiler_seconds: float
    ilp_seconds: float

    @property
    def speedup_over_compiler(self) -> float:
        return self.compiler_seconds / max(self.respect_seconds, 1e-12)

    @property
    def speedup_over_ilp(self) -> float:
        return self.ilp_seconds / max(self.respect_seconds, 1e-12)


def run_fig3(
    models: Optional[Sequence[str]] = None,
    stage_counts: Sequence[int] = (4, 5, 6),
    respect: Optional[RespectScheduler] = None,
    ilp_time_limit: float = 300.0,
    profile_inferences: int = 1000,
) -> List[Fig3Row]:
    """Measure schedule solving time for RESPECT / compiler / ILP.

    The compiler proxy runs its profiling partitioner: every candidate
    partition is compiled and *measured* — the real tool executes the
    paper's full 1,000-inference workload per measurement, so the default
    ``profile_inferences`` matches that.
    """
    names = list(models) if models is not None else list(FIG4_MODELS)
    respect = respect or RespectScheduler()
    system = PipelinedTpuSystem()
    rows: List[Fig3Row] = []
    for name in names:
        graph = quantize_graph(build_model(name))
        # Warm the inference path once per model (numpy buffer allocation
        # and BLAS initialization would otherwise land in the first
        # measured decode); the paper likewise times steady inference.
        respect.schedule(graph, stage_counts[0])
        # One decode serves every stage count: the pointer network's
        # output is stage-independent, so RESPECT's measured solving
        # time is the sweep's amortized per-schedule cost — the
        # quantity a server producing all three pipelines pays.  The
        # compiler and ILP have no such shared work and pay per cell.
        respect_results = respect.schedule_stage_sweep(graph, stage_counts)
        for respect_result, num_stages in zip(respect_results, stage_counts):

            def profiler(schedule) -> float:
                report = system.run(graph, schedule, num_inferences=profile_inferences)
                return report.seconds_per_inference

            compiler = EdgeTpuCompilerProxy(profiler=profiler)
            compiler_result = compiler.schedule(graph, num_stages)
            ilp_result = IlpScheduler(time_limit=ilp_time_limit).schedule(
                graph, num_stages
            )
            rows.append(
                Fig3Row(
                    model=name,
                    num_nodes=graph.num_nodes,
                    num_stages=num_stages,
                    respect_seconds=respect_result.solve_time,
                    compiler_seconds=compiler_result.solve_time,
                    ilp_seconds=ilp_result.solve_time,
                )
            )
    return rows


def format_fig3(rows: List[Fig3Row]) -> str:
    """Render the Fig. 3 series plus the headline speedup summary."""
    body = []
    for row in sorted(rows, key=lambda r: (r.num_stages, r.num_nodes)):
        body.append(
            [
                f"{row.num_stages}-stage",
                row.model,
                row.num_nodes,
                f"{row.respect_seconds * 1e3:.1f} ms",
                f"{row.compiler_seconds * 1e3:.1f} ms",
                f"{row.ilp_seconds:.2f} s",
                f"{row.speedup_over_compiler:.1f}x",
                f"{row.speedup_over_ilp:.1f}x",
            ]
        )
    table = format_table(
        [
            "pipeline",
            "model",
            "|V|",
            "RESPECT",
            "compiler",
            "ILP",
            "vs compiler",
            "vs ILP",
        ],
        body,
        title="Fig. 3 — schedule solving time (RL speedups over baselines)",
    )
    compiler_speedups = [r.speedup_over_compiler for r in rows]
    ilp_speedups = [r.speedup_over_ilp for r in rows]
    summary_compiler = ratio_summary(compiler_speedups)
    summary_ilp = ratio_summary(ilp_speedups)
    summary = (
        "\nheadline: RESPECT vs compiler "
        f"{summary_compiler['min']:.1f}-{summary_compiler['max']:.1f}x "
        f"(geomean {summary_compiler['geomean']:.1f}x, paper: 24-683x); "
        "vs ILP "
        f"{summary_ilp['min']:.1f}-{summary_ilp['max']:.1f}x "
        f"(geomean {summary_ilp['geomean']:.1f}x, paper: 100-930x)"
    )
    return table + summary
