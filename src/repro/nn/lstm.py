"""Batched LSTM cell with manual backpropagation.

Gate layout in the fused weight matrices is ``[input, forget, cell,
output]``.  The forget-gate bias is initialized to 1.0, the standard
trick for stable early training.  ``forward`` returns an opaque cache
that ``backward`` consumes; backpropagation-through-time is driven by the
caller (the pointer network walks its cached steps in reverse).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.init import glorot_uniform, zeros
from repro.nn.params import Module
from repro.utils.rng import SeedLike, resolve_rng

Cache = Dict[str, np.ndarray]


class LSTMCell(Module):
    """A single LSTM cell operating on ``[batch, features]`` arrays."""

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None) -> None:
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be positive")
        rng = resolve_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = self.add_param("w_x", glorot_uniform((input_size, 4 * hidden_size), rng))
        self.w_h = self.add_param("w_h", glorot_uniform((hidden_size, 4 * hidden_size), rng))
        bias = zeros((4 * hidden_size,))
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = self.add_param("bias", bias)

    # ------------------------------------------------------------------
    def initial_state(self, batch: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell states for a batch."""
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        return h, c

    def forward(
        self, x: np.ndarray, h: np.ndarray, c: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, Cache]:
        """One step: returns ``(h_next, c_next, cache)``."""
        hidden = self.hidden_size
        z = x @ self.w_x.value + h @ self.w_h.value + self.bias.value
        i = F.sigmoid(z[:, :hidden])
        f = F.sigmoid(z[:, hidden : 2 * hidden])
        g = F.tanh(z[:, 2 * hidden : 3 * hidden])
        o = F.sigmoid(z[:, 3 * hidden :])
        c_next = f * c + i * g
        tanh_c = F.tanh(c_next)
        h_next = o * tanh_c
        cache: Cache = {
            "x": x, "h": h, "c": c,
            "i": i, "f": f, "g": g, "o": o,
            "tanh_c": tanh_c,
        }
        return h_next, c_next, cache

    def forward_from_projection(
        self, x_proj: np.ndarray, h: np.ndarray, c: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cacheless step from a precomputed input projection ``x @ w_x``.

        Inference loops hoist the input projection of *every* step into
        one large GEMM (``[B*T, in] @ [in, 4H]`` instead of ``T`` skinny
        matmuls) and feed the per-step slices here.  The gate math keeps
        :meth:`forward`'s exact association order
        ``(x_proj + h @ w_h) + bias``, so given a bitwise-equal
        ``x_proj`` the returned state is bitwise-equal to
        :meth:`forward`'s — the property the scheduling service's
        bit-identical-schedules guarantee rests on.  No cache is built;
        this path cannot be backpropagated.
        """
        hidden = self.hidden_size
        z = x_proj + h @ self.w_h.value + self.bias.value
        i = F.sigmoid(z[:, :hidden])
        f = F.sigmoid(z[:, hidden : 2 * hidden])
        g = F.tanh(z[:, 2 * hidden : 3 * hidden])
        o = F.sigmoid(z[:, 3 * hidden :])
        c_next = f * c + i * g
        h_next = o * F.tanh(c_next)
        return h_next, c_next

    def backward(
        self, dh_next: np.ndarray, dc_next: np.ndarray, cache: Cache
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop one step; accumulates parameter grads.

        Parameters are the gradients flowing into ``h_next``/``c_next``;
        returns ``(dx, dh, dc)`` flowing into the step inputs.
        """
        i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
        tanh_c = cache["tanh_c"]
        do = dh_next * tanh_c
        dc = dc_next + dh_next * o * F.dtanh_from_output(tanh_c)
        di = dc * g
        dg = dc * i
        df = dc * cache["c"]
        dc_prev = dc * f
        dz = np.concatenate(
            [
                di * F.dsigmoid_from_output(i),
                df * F.dsigmoid_from_output(f),
                dg * F.dtanh_from_output(g),
                do * F.dsigmoid_from_output(o),
            ],
            axis=1,
        )
        self.w_x.grad += cache["x"].T @ dz
        self.w_h.grad += cache["h"].T @ dz
        self.bias.grad += dz.sum(axis=0)
        dx = dz @ self.w_x.value.T
        dh_prev = dz @ self.w_h.value.T
        return dx, dh_prev, dc_prev
