"""Adam optimizer (Kingma & Ba) over a module's parameter dictionary."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import TrainingError
from repro.nn.params import Module, Parameter


class Adam:
    """Adam with optional global gradient-norm clipping.

    The paper trains with Adam at learning rate 1e-4; clipping is the
    standard guard for REINFORCE gradients.
    """

    def __init__(
        self,
        module: Module,
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip_norm: Optional[float] = 2.0,
    ) -> None:
        if lr <= 0:
            raise TrainingError("learning rate must be positive")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise TrainingError("betas must lie in [0, 1)")
        self.module = module
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip_norm = grad_clip_norm
        self._step = 0
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        for name, param in module.named_parameters():
            self._m[name] = np.zeros_like(param.value)
            self._v[name] = np.zeros_like(param.value)

    # ------------------------------------------------------------------
    def global_grad_norm(self) -> float:
        """L2 norm over all parameter gradients."""
        total = 0.0
        for _, param in self.module.named_parameters():
            total += float(np.sum(param.grad * param.grad))
        return float(np.sqrt(total))

    def step(self) -> float:
        """Apply one update from the accumulated grads; returns grad norm."""
        norm = self.global_grad_norm()
        scale = 1.0
        if self.grad_clip_norm is not None and norm > self.grad_clip_norm > 0:
            scale = self.grad_clip_norm / (norm + 1e-12)
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for name, param in self.module.named_parameters():
            grad = param.grad * scale
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            param.value -= self.lr * update
        return norm

    def zero_grad(self) -> None:
        """Convenience passthrough to the module."""
        self.module.zero_grad()
