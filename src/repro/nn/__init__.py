"""From-scratch NumPy neural-network substrate.

The paper implements its LSTM pointer network in PyTorch; this offline
reproduction implements the same components directly on NumPy with
manual backpropagation: batched LSTM cells, the glimpse/pointer attention
heads, parameter management with checkpointing, and the Adam optimizer.
Every gradient path is verified against finite differences in the test
suite.
"""

from repro.nn.adam import Adam
from repro.nn.attention import AttentionHead, Glimpse
from repro.nn.functional import (
    log_softmax,
    masked_softmax,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.lstm import LSTMCell
from repro.nn.params import Module, Parameter

__all__ = [
    "Adam",
    "AttentionHead",
    "Glimpse",
    "LSTMCell",
    "Module",
    "Parameter",
    "log_softmax",
    "masked_softmax",
    "sigmoid",
    "softmax",
    "tanh",
]
