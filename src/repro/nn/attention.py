"""Glimpse and pointer attention heads (Algorithm 1 of the paper).

Both heads share the additive-attention form of Vinyals' pointer
networks:

``scores_t = v^T tanh(C @ W_ref + (q @ W_q + b))``

where ``C`` is the encoder context matrix (``[B, T, H]``) and ``q`` the
decoder query (``[B, H]``).  The *pointer* head exposes the (optionally
tanh-clipped) scores as selection logits; the *glimpse* head instead
softmaxes its scores and returns the attention-weighted context vector
used to refine the query before pointing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.init import glorot_uniform, zeros
from repro.nn.params import Module
from repro.utils.rng import SeedLike, resolve_rng

Cache = Dict[str, np.ndarray]


class AttentionHead(Module):
    """Additive attention producing per-position scores.

    Parameters
    ----------
    hidden_size:
        Dimension ``H`` of contexts and queries.
    logit_clip:
        When positive, scores become ``logit_clip * tanh(scores)`` — the
        exploration-friendly clipping of Bello et al. used by the pointer
        head.  Zero disables clipping (glimpse head).
    """

    def __init__(
        self, hidden_size: int, logit_clip: float = 0.0, rng: SeedLike = None
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.hidden_size = hidden_size
        self.logit_clip = logit_clip
        self.w_ref = self.add_param("w_ref", glorot_uniform((hidden_size, hidden_size), rng))
        self.w_q = self.add_param("w_q", glorot_uniform((hidden_size, hidden_size), rng))
        self.bias = self.add_param("bias", zeros((hidden_size,)))
        self.v = self.add_param("v", glorot_uniform((hidden_size,), rng))

    def precompute_ref(self, contexts: np.ndarray) -> np.ndarray:
        """Project the context matrix once (``contexts @ W_ref``).

        The pointer decoder scores the *same* contexts at every step;
        hoisting this projection out of the decode loop removes an
        O(T^2 H^2) term from inference (the dominant cost on 500+-node
        graphs).
        """
        return contexts @ self.w_ref.value

    def forward(
        self,
        contexts: np.ndarray,
        query: np.ndarray,
        ref: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Cache]:
        """Score every context position: returns ``(scores [B,T], cache)``.

        ``ref`` may carry :meth:`precompute_ref`'s output to avoid
        re-projecting unchanged contexts.
        """
        if ref is None:
            ref = self.precompute_ref(contexts)  # [B, T, H]
        q = query @ self.w_q.value + self.bias.value  # [B, H]
        activated = F.tanh(ref + q[:, None, :])  # [B, T, H]
        raw = activated @ self.v.value  # [B, T]
        if self.logit_clip > 0:
            clipped = self.logit_clip * F.tanh(raw / self.logit_clip)
        else:
            clipped = raw
        cache: Cache = {
            "contexts": contexts,
            "query": query,
            "activated": activated,
            "raw": raw,
        }
        return clipped, cache

    def scores(self, query: np.ndarray, ref: np.ndarray) -> np.ndarray:
        """Cacheless scoring for inference: returns the clipped scores only.

        Computes exactly :meth:`forward`'s float operations (so the result
        is bitwise-equal) but skips building the backward cache, which
        keeps ``O(B T H)`` intermediates alive per decode step.  ``ref``
        must be :meth:`precompute_ref`'s output for the scored contexts.
        """
        q = query @ self.w_q.value + self.bias.value  # [B, H]
        activated = F.tanh(ref + q[:, None, :])  # [B, T, H]
        raw = activated @ self.v.value  # [B, T]
        if self.logit_clip > 0:
            return self.logit_clip * F.tanh(raw / self.logit_clip)
        return raw

    def backward(
        self, dscores: np.ndarray, cache: Cache
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Backprop scores gradient; returns ``(dcontexts, dquery)``."""
        if self.logit_clip > 0:
            inner = F.tanh(cache["raw"] / self.logit_clip)
            dscores = dscores * F.dtanh_from_output(inner)
        activated = cache["activated"]
        # raw = activated @ v
        self.v.grad += np.einsum("bt,bth->h", dscores, activated)
        dactivated = dscores[:, :, None] * self.v.value[None, None, :]
        dpre = dactivated * F.dtanh_from_output(activated)  # [B, T, H]
        contexts = cache["contexts"]
        self.w_ref.grad += np.einsum("bti,btj->ij", contexts, dpre)
        dcontexts = dpre @ self.w_ref.value.T
        dq = dpre.sum(axis=1)  # [B, H]
        self.w_q.grad += cache["query"].T @ dq
        self.bias.grad += dq.sum(axis=0)
        dquery = dq @ self.w_q.value.T
        return dcontexts, dquery


class Glimpse(Module):
    """Attention-weighted context read refining the decoder query."""

    def __init__(self, hidden_size: int, rng: SeedLike = None) -> None:
        super().__init__()
        self.attention = self.add_module("attention", AttentionHead(hidden_size, rng=rng))

    def forward(
        self,
        contexts: np.ndarray,
        query: np.ndarray,
        mask: Optional[np.ndarray] = None,
        ref: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Cache]:
        """Return ``(glimpse_vector [B,H], cache)``.

        ``mask`` marks selectable positions (True = selectable); visited
        nodes are excluded from the glimpse just as they are from the
        pointer distribution.  ``ref`` forwards a precomputed context
        projection (see :meth:`AttentionHead.precompute_ref`).
        """
        scores, att_cache = self.attention.forward(contexts, query, ref=ref)
        if mask is not None:
            weights = F.masked_softmax(scores, mask)
        else:
            weights = F.softmax(scores)
        glimpse = np.einsum("bt,bth->bh", weights, contexts)
        cache: Cache = {
            "att_cache": att_cache,  # type: ignore[dict-item]
            "weights": weights,
            "contexts": contexts,
        }
        return glimpse, cache

    def backward(
        self, dglimpse: np.ndarray, cache: Cache
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Backprop the glimpse vector; returns ``(dcontexts, dquery)``."""
        weights = cache["weights"]
        contexts = cache["contexts"]
        dweights = np.einsum("bh,bth->bt", dglimpse, contexts)
        dcontexts = weights[:, :, None] * dglimpse[:, None, :]
        # Softmax Jacobian: dscore = w * (dw - sum(w * dw)).
        inner = np.sum(weights * dweights, axis=1, keepdims=True)
        dscores = weights * (dweights - inner)
        dctx_att, dquery = self.attention.backward(dscores, cache["att_cache"])
        return dcontexts + dctx_att, dquery
