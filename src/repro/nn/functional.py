"""Numerically stable activation functions and their derivatives."""

from __future__ import annotations

import numpy as np

#: Logit value used to mask invalid choices; exp(-1e9) == 0 in float64
#: while keeping the array finite (softmax stays NaN-free).
MASK_LOGIT = -1e9


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Element-wise logistic function, stable for large |x|.

    Computed branch-free as ``z = exp(-|x|)`` with ``1 / (1 + z)`` for
    ``x >= 0`` and ``z / (1 + z)`` otherwise — per element exactly the
    classic two-branch formulas (``-|x|`` *is* ``-x`` on the positive
    branch and ``x`` on the negative one), so results are bit-identical
    to a masked two-pass evaluation while avoiding its fancy-indexing
    gather/scatter, which dominates on the small arrays of a decode step.
    ``exp`` never overflows (its argument is ``<= 0``).  The arithmetic
    runs in the input dtype and the result widens to float64 afterwards,
    matching the former implementation's compute-then-assign semantics
    bit for bit.
    """
    z = np.exp(-np.abs(x))
    one_plus = 1.0 + z
    out = np.where(x >= 0, 1.0 / one_plus, z / one_plus)
    return out.astype(float, copy=False)


def dsigmoid_from_output(y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid expressed through its output ``y``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Element-wise hyperbolic tangent."""
    return np.tanh(x)


def dtanh_from_output(y: np.ndarray) -> np.ndarray:
    """Derivative of tanh expressed through its output ``y``."""
    return 1.0 - y * y


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def masked_softmax(logits: np.ndarray, mask: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax over positions where ``mask`` is True.

    Masked positions receive probability exactly 0.  Raises no error when
    a row is fully masked — the caller is responsible for never asking
    for a choice when nothing is selectable (the pointer decoder always
    has at least one unvisited node).
    """
    masked_logits = np.where(mask, logits, MASK_LOGIT)
    return softmax(masked_logits, axis=axis)
