"""Numerically stable activation functions and their derivatives."""

from __future__ import annotations

import numpy as np

#: Logit value used to mask invalid choices; exp(-1e9) == 0 in float64
#: while keeping the array finite (softmax stays NaN-free).
MASK_LOGIT = -1e9


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Element-wise logistic function, stable for large |x|."""
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def dsigmoid_from_output(y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid expressed through its output ``y``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Element-wise hyperbolic tangent."""
    return np.tanh(x)


def dtanh_from_output(y: np.ndarray) -> np.ndarray:
    """Derivative of tanh expressed through its output ``y``."""
    return 1.0 - y * y


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def masked_softmax(logits: np.ndarray, mask: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax over positions where ``mask`` is True.

    Masked positions receive probability exactly 0.  Raises no error when
    a row is fully masked — the caller is responsible for never asking
    for a choice when nothing is selectable (the pointer decoder always
    has at least one unvisited node).
    """
    masked_logits = np.where(mask, logits, MASK_LOGIT)
    return softmax(masked_logits, axis=axis)
