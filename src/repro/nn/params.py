"""Parameter containers, module base class and checkpointing.

A deliberately small module system: parameters are registered explicitly,
``parameters()`` flattens submodule trees into dotted names, and
checkpoints are plain ``.npz`` archives keyed by those names (plus a JSON
metadata sidecar handled by the policy).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

import numpy as np

from repro.errors import CheckpointError


class Parameter:
    """A trainable array with an accumulated gradient."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Module:
    """Base class with explicit parameter/submodule registration."""

    def __init__(self) -> None:
        self._params: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    # ------------------------------------------------------------------
    def add_param(self, name: str, value: np.ndarray) -> Parameter:
        """Register and return a new trainable parameter."""
        if name in self._params or name in self._modules:
            raise CheckpointError(f"duplicate parameter/module name {name!r}")
        param = Parameter(value)
        self._params[name] = param
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        """Register and return a submodule."""
        if name in self._params or name in self._modules:
            raise CheckpointError(f"duplicate parameter/module name {name!r}")
        self._modules[name] = module
        return module

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs depth-first."""
        for name, param in self._params.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Dict[str, Parameter]:
        """All parameters as a flat dotted-name dictionary."""
        return dict(self.named_parameters())

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.value.size for _, p in self.named_parameters())

    def zero_grad(self) -> None:
        """Reset every gradient accumulator to zero."""
        for _, param in self.named_parameters():
            param.zero_grad()

    def cast(self, dtype) -> "Module":
        """Cast every parameter (and grad buffer) to ``dtype`` in place.

        Training runs in float64 for verifiable gradients; inference-only
        copies are cast to float32 for ~2x faster forward passes.
        """
        for _, param in self.named_parameters():
            param.value = param.value.astype(dtype)
            param.grad = param.grad.astype(dtype)
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter values keyed by dotted name."""
        return {name: param.value.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (strict matching)."""
        params = self.parameters()
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise CheckpointError(
                f"state dict mismatch; missing={sorted(missing)[:5]}, "
                f"unexpected={sorted(unexpected)[:5]}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=float)
            if value.shape != param.value.shape:
                raise CheckpointError(
                    f"shape mismatch for {name!r}: checkpoint {value.shape} vs "
                    f"model {param.value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)

    def save_npz(self, path: Union[str, Path]) -> None:
        """Persist all parameters to an ``.npz`` archive."""
        np.savez(Path(path), **self.state_dict())

    def load_npz(self, path: Union[str, Path]) -> None:
        """Load parameters saved by :meth:`save_npz`."""
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"checkpoint {path} does not exist")
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})
