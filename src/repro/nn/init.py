"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng


def glorot_uniform(shape, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for 1-D or 2-D shapes."""
    rng = resolve_rng(rng)
    if len(shape) == 2:
        fan_in, fan_out = shape
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        raise ValueError(f"glorot_uniform supports 1-D/2-D shapes, got {shape}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=float)
