"""Exception hierarchy for the RESPECT reproduction library.

Every error raised by :mod:`repro` derives from :class:`RespectError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class RespectError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(RespectError):
    """Raised for malformed computational graphs (bad nodes/edges)."""


class CycleError(GraphError):
    """Raised when an operation requires a DAG but the graph has a cycle."""


class SchedulingError(RespectError):
    """Raised when a scheduler cannot produce a schedule."""


class InfeasibleScheduleError(SchedulingError):
    """Raised when the scheduling constraints admit no feasible solution."""


class SolverError(SchedulingError):
    """Raised when an external or internal solver fails unexpectedly."""


class DeploymentError(RespectError):
    """Raised when a schedule cannot be deployed on the Edge TPU system."""


class TrainingError(RespectError):
    """Raised for failures inside the RL training loop."""


class CheckpointError(RespectError):
    """Raised when a model checkpoint cannot be saved or loaded."""


class EmbeddingError(RespectError):
    """Raised when a graph cannot be embedded into the encoder queue."""


class ServiceError(RespectError):
    """Raised by the scheduling service (bad requests, closed service)."""


class WireFormatError(ServiceError):
    """Raised for malformed wire-format payloads (see :mod:`repro.service.wire`).

    Covers every way a payload can be bad — truncation, a foreign or
    corrupt byte stream, an unsupported format version, a checksum or
    fingerprint mismatch, and values the format cannot represent.  The
    message always names the specific violation so a failed decode is
    diagnosable from the exception alone.
    """


class DecodeWorkerError(ServiceError):
    """Raised when the decode worker pool cannot complete a decode.

    A worker process crashing mid-task is retried transparently (the
    task is resubmitted to a respawned worker); this error surfaces only
    when retries are exhausted, the task's payload itself is rejected by
    every worker, or a decode exceeds its timeout.
    """


class ServiceOverloadError(ServiceError):
    """Raised when admission control sheds a request from a saturated shard.

    Only the ``"shed"`` admission policy of
    :class:`~repro.service.ShardedSchedulingService` raises this; the
    ``"block"`` and ``"degrade"`` policies absorb overload instead.
    Callers catching it should back off and retry (the condition is
    transient by construction: the shard's queue was at its depth limit
    at submission time).
    """
