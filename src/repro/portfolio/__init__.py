"""Anytime solver portfolio + multi-objective Pareto scheduling.

Three pieces:

* :mod:`repro.portfolio.objectives` — evaluate any schedule on the
  four platform objectives (period, latency, energy, SRAM reload),
  Pareto dominance, and per-graph front extraction over the solver
  suite;
* :mod:`repro.portfolio.anytime` — ``AnytimePortfolio``, racing solver
  lanes under a wall-clock ``deadline_ms`` with cooperative
  cancellation, answering from the best-so-far with full provenance;
* :mod:`repro.portfolio.degrade` — the pressure-ranked
  policy → heuristic → cached-nearest ``DegradeLadder`` the sharded
  tier uses instead of cliffing to ``ListScheduler`` under overload.

See the README "Anytime portfolio & Pareto scheduling" section and
``examples/anytime_portfolio.py``.
"""

from repro.portfolio.anytime import (
    DEFAULT_DEADLINE_MS,
    AnytimePortfolio,
    PortfolioLane,
    StopToken,
    default_lanes,
)
from repro.portfolio.degrade import (
    LADDER_RUNGS,
    CachedNearestIndex,
    DegradeLadder,
)
from repro.portfolio.objectives import (
    ObjectiveVector,
    ParetoFront,
    ParetoPoint,
    default_sweep_solvers,
    dominates,
    evaluate_schedule,
    pareto_filter,
    pareto_front,
)

__all__ = [
    "AnytimePortfolio",
    "CachedNearestIndex",
    "DEFAULT_DEADLINE_MS",
    "DegradeLadder",
    "LADDER_RUNGS",
    "ObjectiveVector",
    "ParetoFront",
    "ParetoPoint",
    "PortfolioLane",
    "StopToken",
    "default_lanes",
    "default_sweep_solvers",
    "dominates",
    "evaluate_schedule",
    "pareto_filter",
    "pareto_front",
]
