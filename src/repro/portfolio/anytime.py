"""Deadline-bounded anytime scheduling via a racing solver portfolio.

``AnytimePortfolio`` runs several solver *lanes* (learned policy,
heuristics, simulated annealing, branch-and-bound, optionally ILP)
concurrently under a wall-clock ``deadline_ms`` and answers from the
best schedule found when the deadline expires.  Long-running solvers
participate cooperatively: each lane's factory receives a
``should_stop`` callable (backed by one shared :class:`StopToken`) that
the annealing/BnB/ILP schedulers poll, so the moment the deadline fires
every lane winds down and returns its incumbent instead of burning CPU
past the answer.

Guarantees:

* **An answer always arrives.**  If no lane has finished at the
  deadline the portfolio waits for the *first* completion — the default
  lane set includes the microsecond-scale list scheduler, so the
  scheduling slack beyond ``deadline_ms`` is bounded by the fastest
  lane even when another lane hangs (the fault-injection tests pin
  this down).
* **Complete runs are deterministic.**  When every lane runs to natural
  completion (``extras["anytime_complete"]``), the winner is the
  best objective with ties broken by lane order — independent of
  thread-finish order — so only complete results are safe to publish
  into the fingerprint cache (the serving layer enforces this).

Provenance rides in ``ScheduleResult.extras``: ``winning_lane``,
``lanes_completed``, ``lanes_failed``, an ``improvement_trace`` of
``(lane, ms_since_start, objective)`` entries recorded whenever the
incumbent improved, plus ``deadline_ms`` / ``deadline_hit`` /
``anytime_complete``.  When a :class:`~repro.obs.Telemetry` facade is
attached, every lane increments ``respect_portfolio_lane_total{lane,
outcome}`` and — inside a sampled request — emits a ``portfolio.lane``
span parented to the caller's active span.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RespectError, SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.obs import Telemetry, current_span
from repro.scheduling.annealing import SimulatedAnnealingScheduler
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.force_directed import ForceDirectedScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.schedule import DEFAULT_COMM_WEIGHT, ScheduleResult

#: Default wall-clock budget: enough for every default lane to finish on
#: the paper-scale graphs, so uncontended requests get the full-quality
#: (deterministic, cacheable) answer.
DEFAULT_DEADLINE_MS = 100.0

#: Iterations for the annealing lane — sized so the lane keeps improving
#: throughout a ~100 ms budget instead of converging instantly.
_LANE_ANNEALING_ITERATIONS = 6000

#: Node budget for the branch-and-bound lane; generous because the
#: deadline, not the budget, is the real limit.
_LANE_BNB_NODE_BUDGET = 5_000_000


class StopToken:
    """Shared cancellation flag; calling the token reads it.

    Instances are valid ``should_stop`` callables for the annealing,
    branch-and-bound and ILP schedulers.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def stop(self) -> None:
        self._event.set()

    def stopped(self) -> bool:
        return self._event.is_set()

    __call__ = stopped


@dataclass(frozen=True)
class PortfolioLane:
    """One racing lane: a name plus a scheduler factory.

    The factory receives the race's ``should_stop`` callable and returns
    a scheduler exposing ``schedule(graph, num_stages)``.  Fast lanes
    may ignore the callable; long-running ones should pass it through to
    their cooperative-cancellation hook.
    """

    name: str
    factory: Callable[[Callable[[], bool]], Any]


def default_lanes(
    policy: Optional[Any] = None, seed: int = 0
) -> List[PortfolioLane]:
    """The default lane set, in deterministic tie-break priority order.

    ``list`` is first: it is the guaranteed microsecond-scale answer
    (and wins ties only when nothing strictly better finished).  The
    learned ``policy`` lane (pass a
    :class:`~repro.rl.respect.RespectScheduler`) slots in ahead of the
    search lanes when provided.
    """
    lanes = [PortfolioLane("list", lambda stop: ListScheduler())]
    if policy is not None:
        lanes.append(PortfolioLane("policy", lambda stop: policy))
    lanes.extend(
        [
            PortfolioLane(
                "force_directed", lambda stop: ForceDirectedScheduler()
            ),
            PortfolioLane(
                "annealing",
                lambda stop: SimulatedAnnealingScheduler(
                    iterations=_LANE_ANNEALING_ITERATIONS,
                    seed=seed,
                    should_stop=stop,
                ),
            ),
            PortfolioLane(
                "branch_and_bound",
                lambda stop: BranchAndBoundScheduler(
                    objective="weighted",
                    node_budget=_LANE_BNB_NODE_BUDGET,
                    should_stop=stop,
                ),
            ),
        ]
    )
    return lanes


class _RaceState:
    """Mutable racing state shared between lane threads (lock-guarded)."""

    __slots__ = (
        "best_result",
        "best_objective",
        "best_lane",
        "best_priority",
        "trace",
        "completed",
        "failed",
        "stopped_lanes",
        "outstanding",
    )

    def __init__(self, num_lanes: int) -> None:
        self.best_result: Optional[ScheduleResult] = None
        self.best_objective = float("inf")
        self.best_lane = ""
        self.best_priority = num_lanes
        self.trace: List[Tuple[str, float, float]] = []
        self.completed: List[str] = []
        self.failed: Dict[str, str] = {}
        self.stopped_lanes: List[str] = []
        self.outstanding = num_lanes


class AnytimePortfolio:
    """Race solver lanes under a wall-clock deadline; answer best-so-far.

    Drop-in scheduler: exposes ``schedule(graph, num_stages)`` (using
    the construction-time ``deadline_ms``) plus the per-request
    :meth:`schedule_with_deadline`.

    Parameters
    ----------
    lanes:
        Racing lanes; defaults to :func:`default_lanes` (optionally
        around ``policy``).  Lane order is the deterministic tie-break
        priority.
    policy:
        Convenience: a learned-policy scheduler inserted into the
        default lane set (ignored when ``lanes`` is given).
    deadline_ms:
        Default wall-clock budget per request.
    comm_weight:
        Weight of the communication term in the quality metric used to
        rank lane results (the classic scalar objective).
    seed:
        Seed for the default stochastic lanes.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; enables per-lane outcome
        counters and ``portfolio.lane`` spans inside sampled requests.
    """

    method_name = "anytime_portfolio"

    def __init__(
        self,
        lanes: Optional[Sequence[PortfolioLane]] = None,
        policy: Optional[Any] = None,
        deadline_ms: float = DEFAULT_DEADLINE_MS,
        comm_weight: float = DEFAULT_COMM_WEIGHT,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if deadline_ms <= 0:
            raise SchedulingError("deadline_ms must be positive")
        if comm_weight < 0:
            raise SchedulingError("comm_weight must be non-negative")
        resolved = list(lanes) if lanes is not None else default_lanes(policy, seed)
        if not resolved:
            raise SchedulingError("AnytimePortfolio needs at least one lane")
        names = [lane.name for lane in resolved]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate lane names: {names}")
        self.lanes: Tuple[PortfolioLane, ...] = tuple(resolved)
        self.deadline_ms = deadline_ms
        self.comm_weight = comm_weight
        self.seed = seed
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    def options_fingerprint(self) -> str:
        """Content digest over the lane set and ranking options.

        Built from each lane scheduler's own options key (constructed
        with a never-firing stop hook), so portfolios over
        differently-configured lanes never share cache entries.
        """
        from repro.service.service import scheduler_options_key

        import hashlib

        parts = [type(self).__qualname__, repr(self.comm_weight), repr(self.seed)]
        for lane in self.lanes:
            parts.append(lane.name)
            parts.append(scheduler_options_key(lane.factory(lambda: False)))
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def schedule(
        self, graph: ComputationalGraph, num_stages: int
    ) -> ScheduleResult:
        return self.schedule_with_deadline(graph, num_stages, self.deadline_ms)

    # ------------------------------------------------------------------
    def schedule_with_deadline(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        deadline_ms: Optional[float] = None,
        wait_for_first: bool = True,
    ) -> Optional[ScheduleResult]:
        """Race every lane for up to ``deadline_ms``; return the best.

        With ``wait_for_first=True`` (default) a late race still blocks
        until the first lane completes, so a result is guaranteed unless
        every lane fails (then :class:`SchedulingError` summarizes the
        per-lane errors).  With ``wait_for_first=False`` an empty race
        returns ``None`` at the deadline — the degrade ladder uses this
        to probe the policy rung without stalling the overload path.
        """
        budget_ms = self.deadline_ms if deadline_ms is None else deadline_ms
        if budget_ms <= 0:
            raise SchedulingError("deadline_ms must be positive")
        stop = StopToken()
        cond = threading.Condition()
        state = _RaceState(len(self.lanes))
        start = time.perf_counter()
        parent_span = current_span()

        for priority, lane in enumerate(self.lanes):
            thread = threading.Thread(
                target=self._run_lane,
                args=(lane, priority, stop, cond, state, graph, num_stages,
                      start, parent_span),
                name=f"portfolio-{lane.name}",
                daemon=True,
            )
            thread.start()

        deadline_at = start + budget_ms / 1000.0
        with cond:
            while state.outstanding > 0:
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    break
                cond.wait(remaining)
            answered_by_deadline = state.best_result is not None
            complete = state.outstanding == 0 and not state.stopped_lanes
        stop.stop()

        if state.best_result is None and wait_for_first:
            with cond:
                while state.best_result is None and state.outstanding > 0:
                    cond.wait()
        with cond:
            best = state.best_result
            snapshot = (
                state.best_lane,
                list(state.completed),
                dict(state.failed),
                list(state.trace),
                state.best_objective,
            )
        if best is None:
            if not wait_for_first:
                self._count_deadline("abandoned")
                return None
            raise SchedulingError(
                f"every portfolio lane failed on {graph.name!r}: "
                f"{snapshot[2]}"
            )
        best_lane, completed, failed, trace, best_objective = snapshot
        elapsed = time.perf_counter() - start
        self._count_deadline("hit" if answered_by_deadline else "miss")
        return ScheduleResult(
            schedule=best.schedule,
            solve_time=elapsed,
            method=self.method_name,
            objective=best_objective,
            status="complete" if complete else "anytime",
            extras={
                "winning_lane": best_lane,
                "winning_method": best.method,
                "winning_status": best.status,
                "lanes_total": len(self.lanes),
                "lanes_completed": tuple(completed),
                "lanes_failed": dict(failed),
                "improvement_trace": tuple(
                    (lane, round(ms, 3), objective)
                    for lane, ms, objective in trace
                ),
                "deadline_ms": budget_ms,
                "deadline_hit": answered_by_deadline,
                "anytime_complete": complete,
            },
        )

    # ------------------------------------------------------------------
    def _run_lane(
        self,
        lane: PortfolioLane,
        priority: int,
        stop: StopToken,
        cond: threading.Condition,
        state: _RaceState,
        graph: ComputationalGraph,
        num_stages: int,
        race_start: float,
        parent_span: Optional[Any],
    ) -> None:
        lane_start = time.perf_counter()
        outcome = "completed"
        objective: Optional[float] = None
        error: Optional[str] = None
        try:
            scheduler = lane.factory(stop)
            result = scheduler.schedule(graph, num_stages)
        except RespectError as exc:
            outcome, error = "error", f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # lane bugs must not kill the race
            outcome, error = "crashed", f"{type(exc).__name__}: {exc}"
        lane_end = time.perf_counter()
        if error is not None:
            with cond:
                state.failed[lane.name] = error
                state.outstanding -= 1
                cond.notify_all()
        else:
            objective = result.schedule.objective(self.comm_weight)
            stopped_early = bool(result.extras.get("stopped_early"))
            if stopped_early:
                outcome = "stopped"
            with cond:
                state.completed.append(lane.name)
                if stopped_early:
                    state.stopped_lanes.append(lane.name)
                if (objective, priority) < (
                    state.best_objective,
                    state.best_priority,
                ):
                    state.best_result = result
                    state.best_objective = objective
                    state.best_lane = lane.name
                    state.best_priority = priority
                    state.trace.append(
                        (lane.name, (lane_end - race_start) * 1000.0, objective)
                    )
                state.outstanding -= 1
                cond.notify_all()
        self._record_lane(
            lane.name, outcome, objective, lane_start, lane_end, parent_span
        )

    # ------------------------------------------------------------------
    def _count_deadline(self, outcome: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(
                "respect_portfolio_races_total",
                "Anytime portfolio races by deadline outcome.",
                outcome=outcome,
            ).inc()

    def _record_lane(
        self,
        lane: str,
        outcome: str,
        objective: Optional[float],
        start_s: float,
        end_s: float,
        parent_span: Optional[Any],
    ) -> None:
        tel = self._telemetry
        if tel is None:
            return
        tel.counter(
            "respect_portfolio_lane_total",
            "Anytime portfolio lane results by outcome.",
            lane=lane,
            outcome=outcome,
        ).inc()
        tracer = tel.tracer
        trace_id = getattr(parent_span, "trace_id", None)
        if tracer is None or not trace_id:
            return
        attrs: Dict[str, Any] = {"lane": lane, "outcome": outcome}
        if objective is not None:
            attrs["objective"] = objective
        tracer.record_span(
            "portfolio.lane",
            start_s,
            end_s,
            trace_id,
            parent_id=getattr(parent_span, "span_id", None),
            status="ok" if outcome in ("completed", "stopped") else "error",
            attrs=attrs,
        )
