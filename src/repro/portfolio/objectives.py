"""Multi-objective schedule evaluation and Pareto-front extraction.

The solvers in :mod:`repro.scheduling` optimize a single scalar (peak
per-stage parameter bytes plus hop-weighted communication), but the
platform model already knows much more about a schedule: the closed-form
steady-state period (:meth:`PipelinedTpuSystem.theoretical_period`), the
single-inference latency through an empty pipeline, the steady-state
energy per inference (:mod:`repro.tpu.power`) and the SRAM-overflow
weight bytes re-streamed every inference.  This module evaluates any
:class:`~repro.scheduling.schedule.Schedule` on that four-dimensional
objective vector, provides weak Pareto dominance, and extracts per-graph
Pareto fronts by sweeping the existing solver suite (heuristics,
annealing at several communication weights, branch-and-bound, optionally
ILP and the learned policy) — the latency-vs-memory sweep of the HLS
scheduling literature, generalized to the Edge TPU platform model.

Everything here is analytic (no discrete-event simulation runs), so a
front over the default suite costs a handful of solver calls and is
bit-identical under equal seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RespectError, SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.annealing import SimulatedAnnealingScheduler
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.force_directed import ForceDirectedScheduler
from repro.scheduling.heuristics import HuScheduler, ListScheduler
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.tpu.pipeline import PipelinedTpuSystem, compute_stage_profiles
from repro.tpu.power import PowerModel
from repro.tpu.spec import EdgeTPUSpec, default_spec

#: Node budget for the exact branch-and-bound sweep lane.  Instances the
#: budget cannot close are skipped (recorded in ``ParetoFront.skipped``)
#: rather than stalling front extraction.
_SWEEP_BNB_NODE_BUDGET = 150_000

#: Iteration count for the annealing sweep lanes — enough to improve on
#: the list baseline on |V| <= ~40 graphs while keeping a full sweep in
#: the hundreds of milliseconds.
_SWEEP_ANNEALING_ITERATIONS = 600


@dataclass(frozen=True)
class ObjectiveVector:
    """A schedule's position in the multi-objective space.

    The four dominance dimensions (all lower-is-better):

    * ``period_seconds`` — closed-form steady-state pipeline period;
    * ``latency_seconds`` — one inference through an empty pipeline
      (transfers + weight streaming + compute, summed over stages);
    * ``energy_joules`` — steady-state energy per inference under the
      :class:`~repro.tpu.power.PowerModel`;
    * ``sram_reload_bytes`` — weight bytes streamed from the host every
      inference because they overflow the stages' 8 MiB SRAM.

    ``peak_param_bytes`` (the classic single objective) rides along for
    reporting but does not participate in dominance — it is a proxy for
    ``sram_reload_bytes``, which is the platform-true quantity.
    """

    period_seconds: float
    latency_seconds: float
    energy_joules: float
    sram_reload_bytes: int
    peak_param_bytes: int

    def as_tuple(self) -> Tuple[float, float, float, int]:
        """The dominance dimensions, in declaration order."""
        return (
            self.period_seconds,
            self.latency_seconds,
            self.energy_joules,
            self.sram_reload_bytes,
        )


def evaluate_schedule(
    graph: ComputationalGraph,
    schedule: Schedule,
    spec: Optional[EdgeTPUSpec] = None,
    power: Optional[PowerModel] = None,
    bus_mode: str = "per_stage",
) -> ObjectiveVector:
    """Analytically score ``schedule`` on the four platform objectives.

    Uses the same per-stage profiles as the event simulator but the
    closed-form steady-state limits instead of a simulation run, so the
    evaluation is exact for the steady state and costs microseconds.
    """
    spec = spec or default_spec()
    power = power or PowerModel()
    system = PipelinedTpuSystem(spec, bus_mode=bus_mode)
    profiles = compute_stage_profiles(graph, schedule, spec)
    period = system.theoretical_period(profiles)

    # Empty-pipeline latency: every phase of the single inference runs
    # back-to-back with no resource contention.
    latency = sum(p.link_seconds + p.compute_seconds for p in profiles)

    # Steady-state energy per inference: each device works its
    # per-inference seconds and idles the rest of the period; the host
    # runs for the whole period; USB energy scales with bytes moved.
    active = sum(p.device_seconds for p in profiles) * power.tpu_active_watts
    idle = sum(
        max(0.0, period - p.device_seconds) for p in profiles
    ) * power.tpu_idle_watts
    host = period * power.host_watts
    moved = sum(p.input_bytes + p.output_bytes + p.off_chip_bytes for p in profiles)
    energy = active + idle + host + moved * power.usb_joules_per_byte

    return ObjectiveVector(
        period_seconds=period,
        latency_seconds=latency,
        energy_joules=energy,
        sram_reload_bytes=sum(p.off_chip_bytes for p in profiles),
        peak_param_bytes=schedule.peak_stage_param_bytes,
    )


def dominates(a: ObjectiveVector, b: ObjectiveVector) -> bool:
    """Weak Pareto dominance: ``a`` no worse everywhere, better somewhere."""
    at, bt = a.as_tuple(), b.as_tuple()
    return all(x <= y for x, y in zip(at, bt)) and any(
        x < y for x, y in zip(at, bt)
    )


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated schedule on a graph's front."""

    method: str
    objectives: ObjectiveVector
    result: ScheduleResult

    @property
    def schedule(self) -> Schedule:
        return self.result.schedule


def pareto_filter(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset of ``points``.

    Exact duplicates of an earlier point's objective vector are dropped
    (first solver in sweep order keeps the point), so the front never
    lists the same trade-off twice; distinct mutually non-dominated
    vectors all survive.  Output order is deterministic: sorted by
    objective tuple, then method name.
    """
    kept: List[ParetoPoint] = []
    seen: set = set()
    for point in points:
        key = point.objectives.as_tuple()
        if key in seen:
            continue
        if any(dominates(other.objectives, point.objectives) for other in points):
            continue
        seen.add(key)
        kept.append(point)
    kept.sort(key=lambda p: (p.objectives.as_tuple(), p.method))
    return kept


@dataclass(frozen=True)
class ParetoFront:
    """Result of sweeping the solver suite over one graph."""

    graph_name: str
    num_stages: int
    points: Tuple[ParetoPoint, ...]
    #: Every (method, objectives) pair evaluated, dominated or not, in
    #: sweep order — the raw material for quality/coverage analysis.
    candidates: Tuple[ParetoPoint, ...]
    #: Solvers that raised (budget exhaustion, |V| caps, missing deps).
    skipped: Tuple[Tuple[str, str], ...]

    def best(self, dimension: str) -> ParetoPoint:
        """The front point minimizing one named objective dimension."""
        if not self.points:
            raise SchedulingError("empty Pareto front")
        return min(self.points, key=lambda p: getattr(p.objectives, dimension))

    def summary(self) -> List[Dict[str, object]]:
        """JSON-friendly per-point rows (for benches and examples)."""
        return [
            {
                "method": p.method,
                "period_us": p.objectives.period_seconds * 1e6,
                "latency_us": p.objectives.latency_seconds * 1e6,
                "energy_mj": p.objectives.energy_joules * 1e3,
                "sram_reload_bytes": p.objectives.sram_reload_bytes,
                "peak_param_bytes": p.objectives.peak_param_bytes,
            }
            for p in self.points
        ]


def default_sweep_solvers(seed: int = 0) -> List[Tuple[str, object]]:
    """The default ``(name, scheduler)`` sweep suite.

    Heuristics cover the fast/low-quality corner, annealing at three
    communication weights traces the memory-vs-communication trade-off,
    and a node-budgeted branch-and-bound anchors the exact corner on
    instances it can close.  ILP and the learned policy are not default
    (scipy dependency / checkpoint load); pass them via ``solvers=``.
    """
    return [
        ("list", ListScheduler()),
        ("list_tight", ListScheduler(budget_slack=1.0)),
        ("hu", HuScheduler()),
        ("force_directed", ForceDirectedScheduler()),
        (
            "annealing_mem",
            SimulatedAnnealingScheduler(
                iterations=_SWEEP_ANNEALING_ITERATIONS, comm_weight=0.05, seed=seed
            ),
        ),
        (
            "annealing",
            SimulatedAnnealingScheduler(
                iterations=_SWEEP_ANNEALING_ITERATIONS, seed=seed
            ),
        ),
        (
            "annealing_comm",
            SimulatedAnnealingScheduler(
                iterations=_SWEEP_ANNEALING_ITERATIONS, comm_weight=1.0, seed=seed
            ),
        ),
        (
            "bnb_weighted",
            BranchAndBoundScheduler(
                objective="weighted", node_budget=_SWEEP_BNB_NODE_BUDGET
            ),
        ),
        (
            "bnb_lexicographic",
            BranchAndBoundScheduler(node_budget=_SWEEP_BNB_NODE_BUDGET),
        ),
    ]


def pareto_front(
    graph: ComputationalGraph,
    num_stages: int,
    solvers: Optional[Iterable[Tuple[str, object]]] = None,
    spec: Optional[EdgeTPUSpec] = None,
    power: Optional[PowerModel] = None,
    bus_mode: str = "per_stage",
    seed: int = 0,
) -> ParetoFront:
    """Sweep the solver suite over ``graph`` and keep the Pareto front.

    Solvers that raise a :class:`~repro.errors.RespectError` (node-budget
    exhaustion, |V| caps, missing optional dependencies) are recorded in
    ``skipped`` and the sweep continues — a front is always produced as
    long as one solver succeeds (the default suite's list scheduler
    cannot fail on a valid DAG).
    """
    if num_stages < 1:
        raise SchedulingError("num_stages must be at least 1")
    pairs = list(solvers) if solvers is not None else default_sweep_solvers(seed)
    if not pairs:
        raise SchedulingError("pareto_front needs at least one solver")
    spec = spec or default_spec()
    power = power or PowerModel()

    candidates: List[ParetoPoint] = []
    skipped: List[Tuple[str, str]] = []
    for name, solver in pairs:
        try:
            result = solver.schedule(graph, num_stages)
        except RespectError as exc:
            skipped.append((name, str(exc)))
            continue
        objectives = evaluate_schedule(
            graph, result.schedule, spec=spec, power=power, bus_mode=bus_mode
        )
        candidates.append(
            ParetoPoint(method=name, objectives=objectives, result=result)
        )
    if not candidates:
        raise SchedulingError(
            f"every sweep solver failed on {graph.name!r}: {skipped}"
        )
    return ParetoFront(
        graph_name=graph.name,
        num_stages=num_stages,
        points=tuple(pareto_filter(candidates)),
        candidates=tuple(candidates),
        skipped=tuple(skipped),
    )
