"""Graceful-degradation ladder for the overloaded serving tier.

When a shard's queue saturates under ``admission="degrade"``, the
sharded service historically cliffed straight from the learned policy to
``ListScheduler``.  :class:`DegradeLadder` replaces that cliff with a
pressure-ranked ladder of rungs, each cheaper (and lower-fidelity) than
the one above:

``policy``
    A wall-clock-budgeted probe of the learned policy (or any
    configured scheduler) on a daemon thread — answers when the policy
    beats the probe deadline, falls through otherwise.  Probes are
    capped by ``max_inflight_probes`` so a slow policy cannot pile up
    threads under sustained overload, and a probe that finishes *after*
    its deadline still feeds the cached-nearest index below.
``heuristic``
    A fast deterministic heuristic (default
    :class:`~repro.scheduling.force_directed.ForceDirectedScheduler`)
    run inline.
``cached_nearest``
    A structural-fingerprint lookup: the stage assignment of the most
    recent schedule served for an *isomorphic* graph, re-bound to the
    incoming graph's nodes by insertion position and dependency-repaired.
    Near-free, and exact for the common overload case of identical
    model architectures arriving under different node names.
``floor``
    :class:`~repro.scheduling.heuristics.ListScheduler` — the guaranteed
    answer of last resort.

The entry rung slides with measured *pressure* (an exponentially
decaying count of recent degraded requests, or an explicit value passed
by the caller): light overload still probes the policy, sustained
overload starts at the heuristic, severe overload answers from the
structural cache.  That is the smooth policy → heuristic →
cached-nearest quality degradation the roadmap asks for.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.errors import RespectError, SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import structural_fingerprint
from repro.scheduling.force_directed import ForceDirectedScheduler
from repro.scheduling.heuristics import ListScheduler
from repro.scheduling.postprocess import repair_dependencies
from repro.scheduling.schedule import (
    DEFAULT_COMM_WEIGHT,
    Schedule,
    ScheduleResult,
)

#: Rung names in ladder order (highest fidelity first).
LADDER_RUNGS = ("policy", "heuristic", "cached_nearest", "floor")


class CachedNearestIndex:
    """LRU map from structural fingerprints to stage assignments.

    Values are stage tuples in node-insertion order, so a lookup on an
    isomorphic graph re-binds them by position.  Structural fingerprints
    ignore names and insertion order, so the re-bound assignment may pair
    stages with the "wrong" (but structurally equivalent) nodes; the
    dependency repair pass makes it valid either way.  This is a
    degrade-path accelerator, never a cache key — exactness is not
    claimed.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise SchedulingError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int, int], Tuple[int, ...]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _key(
        self, graph: ComputationalGraph, num_stages: int
    ) -> Tuple[str, int, int]:
        return (structural_fingerprint(graph), num_stages, graph.num_nodes)

    def observe(
        self, graph: ComputationalGraph, num_stages: int, schedule: Schedule
    ) -> None:
        """Remember ``schedule`` as the exemplar for this structure."""
        stages = tuple(schedule.assignment[name] for name in graph.node_names)
        key = self._key(graph, num_stages)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = stages
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(
        self, graph: ComputationalGraph, num_stages: int
    ) -> Optional[Schedule]:
        """Re-bound, dependency-repaired schedule for an isomorphic graph."""
        key = self._key(graph, num_stages)
        with self._lock:
            stages = self._entries.get(key)
            if stages is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        assignment = {
            name: stage for name, stage in zip(graph.node_names, stages)
        }
        return repair_dependencies(Schedule(graph, num_stages, assignment))


class DegradeLadder:
    """Pressure-ranked fallback ladder for overloaded shards.

    Parameters
    ----------
    policy:
        Optional learned-policy scheduler for the top rung (skipped when
        ``None``).
    heuristic:
        Inline scheduler for the middle rung (default force-directed).
    index:
        Shared :class:`CachedNearestIndex` (a private one is created
        when omitted).  Feed it via :meth:`observe` — the sharded
        service wires this to its serve listeners automatically.
    probe_deadline_ms:
        Wall-clock budget of one policy-rung probe.
    max_inflight_probes:
        Cap on concurrently outstanding policy probes; at the cap the
        policy rung is skipped outright.
    policy_pressure_limit / heuristic_pressure_limit:
        Pressure thresholds above which the entry rung drops below the
        policy / heuristic rung respectively.
    pressure_half_life_ms:
        Decay half-life of the internal pressure signal.
    """

    def __init__(
        self,
        policy: Optional[Any] = None,
        heuristic: Optional[Any] = None,
        index: Optional[CachedNearestIndex] = None,
        probe_deadline_ms: float = 8.0,
        max_inflight_probes: int = 4,
        policy_pressure_limit: float = 4.0,
        heuristic_pressure_limit: float = 32.0,
        pressure_half_life_ms: float = 250.0,
        comm_weight: float = DEFAULT_COMM_WEIGHT,
    ) -> None:
        if probe_deadline_ms <= 0:
            raise SchedulingError("probe_deadline_ms must be positive")
        if max_inflight_probes < 1:
            raise SchedulingError("max_inflight_probes must be positive")
        if not 0 < policy_pressure_limit <= heuristic_pressure_limit:
            raise SchedulingError(
                "need 0 < policy_pressure_limit <= heuristic_pressure_limit"
            )
        if pressure_half_life_ms <= 0:
            raise SchedulingError("pressure_half_life_ms must be positive")
        self.policy = policy
        self.heuristic = heuristic or ForceDirectedScheduler()
        self.index = index or CachedNearestIndex()
        self.floor = ListScheduler()
        self.probe_deadline_ms = probe_deadline_ms
        self.max_inflight_probes = max_inflight_probes
        self.policy_pressure_limit = policy_pressure_limit
        self.heuristic_pressure_limit = heuristic_pressure_limit
        self.pressure_half_life_ms = pressure_half_life_ms
        self.comm_weight = comm_weight
        self._lock = threading.Lock()
        self._pressure = 0.0
        self._pressure_at = time.monotonic()
        self._inflight_probes = 0

    # ------------------------------------------------------------------
    def observe(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        result: ScheduleResult,
    ) -> None:
        """Feed a full-quality serve into the cached-nearest index.

        Degraded answers are not recorded — re-serving a floor schedule
        from the "nearest" rung would launder its quality label.
        """
        if result.extras.get("degraded"):
            return
        self.index.observe(graph, num_stages, result.schedule)

    # ------------------------------------------------------------------
    def pressure(self) -> float:
        """Current decayed pressure (recent degraded requests)."""
        with self._lock:
            return self._decayed_pressure_locked()

    def _decayed_pressure_locked(self) -> float:
        now = time.monotonic()
        dt_ms = (now - self._pressure_at) * 1000.0
        if dt_ms > 0:
            self._pressure *= 0.5 ** (dt_ms / self.pressure_half_life_ms)
            self._pressure_at = now
        return self._pressure

    def _bump_pressure(self) -> float:
        with self._lock:
            value = self._decayed_pressure_locked() + 1.0
            self._pressure = value
            return value

    # ------------------------------------------------------------------
    def serve(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        pressure: Optional[float] = None,
    ) -> Tuple[ScheduleResult, str]:
        """Answer one degraded request; returns ``(result, rung)``.

        ``pressure`` overrides the internal signal (tests and callers
        with their own backlog measure pass it explicitly); ``None``
        bumps-and-reads the decaying internal counter.
        """
        if pressure is None:
            pressure = self._bump_pressure()
        entry = 0
        if pressure > self.policy_pressure_limit:
            entry = 1
        if pressure > self.heuristic_pressure_limit:
            entry = 2

        if entry <= 0 and self.policy is not None:
            result = self._probe_policy(graph, num_stages)
            if result is not None:
                return self._finish(result, "policy", pressure)
        if entry <= 1:
            try:
                result = self.heuristic.schedule(graph, num_stages)
            except RespectError:
                result = None
            if result is not None:
                return self._finish(result, "heuristic", pressure)
        schedule = self.index.lookup(graph, num_stages)
        if schedule is not None:
            result = ScheduleResult(
                schedule=schedule,
                solve_time=0.0,
                method="cached_nearest",
                objective=schedule.objective(self.comm_weight),
                status="degraded",
                extras={"structural_index_size": len(self.index)},
            )
            return self._finish(result, "cached_nearest", pressure)
        return self._finish(
            self.floor.schedule(graph, num_stages), "floor", pressure
        )

    def _finish(
        self, result: ScheduleResult, rung: str, pressure: float
    ) -> Tuple[ScheduleResult, str]:
        result.extras["degrade_rung"] = rung
        result.extras["degrade_pressure"] = round(pressure, 3)
        return result, rung

    # ------------------------------------------------------------------
    def _probe_policy(
        self, graph: ComputationalGraph, num_stages: int
    ) -> Optional[ScheduleResult]:
        """Budgeted policy attempt; ``None`` on timeout/error/saturation."""
        with self._lock:
            if self._inflight_probes >= self.max_inflight_probes:
                return None
            self._inflight_probes += 1
        box: Dict[str, ScheduleResult] = {}
        done = threading.Event()

        def run() -> None:
            try:
                result = self.policy.schedule(graph, num_stages)
                box["result"] = result
                # Even a probe that loses its deadline warms the
                # structural index for the next isomorphic arrival.
                self.index.observe(graph, num_stages, result.schedule)
            except Exception:
                pass
            finally:
                with self._lock:
                    self._inflight_probes -= 1
                done.set()

        threading.Thread(
            target=run, name="degrade-policy-probe", daemon=True
        ).start()
        done.wait(self.probe_deadline_ms / 1000.0)
        return box.get("result")
