"""Comparison harness shared by every evaluation figure.

One call per (model, method, stage count): quantize the model, let the
scheduler solve it, deploy the schedule and simulate the 1,000-inference
workload the paper measures.  Results carry all three quantities the
evaluation section reports: schedule *solving time* (Fig. 3), simulated
*on-chip runtime* (Fig. 4) and *peak parameter-caching memory* (Fig. 5).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.postprocess import postprocess_schedule
from repro.scheduling.schedule import ScheduleResult
from repro.scheduling.sequence import normalize_stage_counts
from repro.tpu.pipeline import PipelinedTpuSystem, PipelineReport
from repro.tpu.quantize import is_quantized, quantize_graph
from repro.tpu.spec import EdgeTPUSpec, default_spec

#: A scheduler factory: () -> object with .schedule(graph, num_stages).
SchedulerFactory = Callable[[], object]


@dataclass
class MethodOutcome:
    """Everything measured for one (model, method, stages) cell."""

    model: str
    method: str
    num_stages: int
    solve_time_seconds: float
    seconds_per_inference: float
    peak_stage_param_bytes: int
    objective: float
    report: PipelineReport
    schedule_result: ScheduleResult


def default_methods() -> Dict[str, SchedulerFactory]:
    """The paper's three contenders (RESPECT joins once a policy exists)."""
    return {
        "edgetpu_compiler": EdgeTpuCompilerProxy,
        "ilp": IlpScheduler,
    }


def adapted_policy_method(
    checkpoint_dir, checkpoint_name: str = "respect_online", **scheduler_kwargs
) -> SchedulerFactory:
    """Factory for a RESPECT scheduler running a *promoted* checkpoint.

    Loads the named artifact through the validated checkpoint lifecycle
    (:func:`repro.rl.checkpoints.load_checkpoint` — online promotions
    persist there with their drift provenance) and wraps it exactly like
    the shipped policy, so an adapted policy is a first-class comparison
    method anywhere a method dict is accepted.  The checkpoint is loaded
    once per factory *call*, keeping the factory cheap to build and the
    scheduler fresh per comparison.
    """
    from repro.rl.checkpoints import load_checkpoint
    from repro.rl.respect import RespectScheduler

    def factory() -> object:
        policy = load_checkpoint(checkpoint_dir, checkpoint_name)
        return RespectScheduler(policy=policy, **scheduler_kwargs)

    return factory


def champion_challenger_methods(
    checkpoint_dir,
    checkpoint_name: str = "respect_online",
    champion_factory: Optional[SchedulerFactory] = None,
) -> Dict[str, SchedulerFactory]:
    """Method dict pitting the serving champion against a promoted policy.

    ``compare_methods_over_models(graphs, champion_challenger_methods(d),
    stages)`` replays any evaluation with both policies side by side —
    the offline audit of what an online promotion actually changed.
    ``champion_factory`` defaults to the shipped pretrained scheduler.
    """
    from repro.rl.respect import RespectScheduler

    return {
        "respect_champion": champion_factory or RespectScheduler,
        "respect_adapted": adapted_policy_method(
            checkpoint_dir, checkpoint_name
        ),
    }


def schedule_many(
    scheduler: object,
    graphs: Sequence[ComputationalGraph],
    num_stages,
) -> List[ScheduleResult]:
    """Schedule every graph, batched when the scheduler supports it.

    Schedulers exposing ``schedule_batch`` (the RESPECT batched engine)
    solve all graphs in one vectorized pass; everything else falls back
    to a sequential loop.  ``num_stages`` is an int shared by all graphs
    or a per-graph sequence.
    """
    graphs = list(graphs)
    stage_counts = normalize_stage_counts(num_stages, len(graphs))
    batch = getattr(scheduler, "schedule_batch", None)
    if callable(batch):
        return batch(graphs, stage_counts)
    return [
        scheduler.schedule(graph, stages)  # type: ignore[attr-defined]
        for graph, stages in zip(graphs, stage_counts)
    ]


def _outcome_from_result(
    graph: ComputationalGraph,
    result: ScheduleResult,
    num_stages: int,
    num_inferences: int,
    spec: Optional[EdgeTPUSpec],
    model_name: str,
    method_name: str,
) -> MethodOutcome:
    """Deploy + simulate one already-solved schedule."""
    schedule = postprocess_schedule(result.schedule)
    system = PipelinedTpuSystem(spec or default_spec())
    report = system.run(graph, schedule, num_inferences=num_inferences)
    return MethodOutcome(
        model=model_name or graph.name,
        method=method_name or result.method,
        num_stages=num_stages,
        solve_time_seconds=result.solve_time,
        seconds_per_inference=report.seconds_per_inference,
        peak_stage_param_bytes=schedule.peak_stage_param_bytes,
        objective=result.objective,
        report=report,
        schedule_result=result,
    )


def run_method(
    graph: ComputationalGraph,
    scheduler: object,
    num_stages: int,
    num_inferences: int = 1000,
    spec: Optional[EdgeTPUSpec] = None,
    model_name: str = "",
    method_name: str = "",
) -> MethodOutcome:
    """Schedule + deploy + simulate one configuration.

    ``graph`` should already be quantized (all methods schedule the same
    int8 model, as the real deployment flow does after Toco conversion).
    """
    if not is_quantized(graph):
        raise SchedulingError(
            "run_method expects a quantized graph; call quantize_graph first"
        )
    result: ScheduleResult = scheduler.schedule(graph, num_stages)  # type: ignore[attr-defined]
    return _outcome_from_result(
        graph, result, num_stages, num_inferences, spec, model_name, method_name
    )


def run_method_batch(
    graphs: Sequence[ComputationalGraph],
    scheduler: object,
    num_stages: Union[int, Sequence[int]],
    num_inferences: int = 1000,
    spec: Optional[EdgeTPUSpec] = None,
    model_names: Optional[Sequence[str]] = None,
    method_name: str = "",
) -> List[MethodOutcome]:
    """Batched :func:`run_method` over many graphs with one scheduler.

    Uses :func:`schedule_many`, so the RESPECT batched engine solves the
    whole set in a single vectorized decode before each schedule is
    deployed and simulated individually.  ``num_stages`` is an int shared
    by all graphs or a per-graph sequence; each outcome records its own
    graph's stage count.
    """
    graphs = list(graphs)
    stage_counts = normalize_stage_counts(num_stages, len(graphs))
    for graph in graphs:
        if not is_quantized(graph):
            raise SchedulingError(
                "run_method_batch expects quantized graphs; call "
                "quantize_graph first"
            )
    names = list(model_names) if model_names is not None else [
        graph.name for graph in graphs
    ]
    if len(names) != len(graphs):
        raise SchedulingError(
            f"model_names has {len(names)} entries for {len(graphs)} graphs"
        )
    results = schedule_many(scheduler, graphs, stage_counts)
    return [
        _outcome_from_result(
            graph, result, stages, num_inferences, spec, name, method_name
        )
        for graph, result, stages, name in zip(
            graphs, results, stage_counts, names
        )
    ]


def compare_methods(
    graph: ComputationalGraph,
    methods: Dict[str, SchedulerFactory],
    num_stages: int,
    num_inferences: int = 1000,
    spec: Optional[EdgeTPUSpec] = None,
    model_name: str = "",
) -> Dict[str, MethodOutcome]:
    """Run every method on the same quantized graph and stage count."""
    quantized = graph if is_quantized(graph) else quantize_graph(graph)
    outcomes: Dict[str, MethodOutcome] = {}
    for name, factory in methods.items():
        scheduler = factory()
        outcomes[name] = run_method(
            quantized,
            scheduler,
            num_stages,
            num_inferences=num_inferences,
            spec=spec,
            model_name=model_name or graph.name,
            method_name=name,
        )
    return outcomes


def compare_methods_over_models(
    graphs: Sequence[ComputationalGraph],
    methods: Dict[str, SchedulerFactory],
    num_stages: Union[int, Sequence[int]],
    num_inferences: int = 1000,
    spec: Optional[EdgeTPUSpec] = None,
) -> List[Dict[str, MethodOutcome]]:
    """Run every method over a whole fleet of models.

    Each method instantiates once and schedules the entire set via
    :func:`schedule_many` — batched schedulers amortize their network
    cost over the fleet.  ``num_stages`` is shared or per-graph (each
    outcome carries its own graph's count).  Returns one
    ``{method: outcome}`` dict per graph, index-aligned with ``graphs``.
    """
    quantized = [
        graph if is_quantized(graph) else quantize_graph(graph)
        for graph in graphs
    ]
    names = [graph.name for graph in graphs]
    per_graph: List[Dict[str, MethodOutcome]] = [{} for _ in quantized]
    for name, factory in methods.items():
        scheduler = factory()
        outcomes = run_method_batch(
            quantized,
            scheduler,
            num_stages,
            num_inferences=num_inferences,
            spec=spec,
            model_names=names,
            method_name=name,
        )
        for slot, outcome in zip(per_graph, outcomes):
            slot[name] = outcome
    return per_graph


@dataclass(frozen=True)
class ServedMethodStats:
    """Aggregated service counters of one :func:`serve_methods` method.

    Sums the :class:`~repro.service.ServiceStats` counters over every
    service the wrapped factory created (they share one cache, so
    ``hit_rate`` reflects reuse across separate comparison calls) —
    fleet experiments report schedule-reuse numbers from here instead of
    reaching into service internals.
    """

    method: str
    services: int
    requests: int
    cache_hits: int
    coalesced: int
    batches: int
    scheduled_graphs: int

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.scheduled_graphs / self.batches if self.batches else 0.0


def served_method_stats(
    methods: Dict[str, SchedulerFactory],
) -> Dict[str, ServedMethodStats]:
    """Per-method cache/service stats of a :func:`serve_methods` dict.

    Raises :class:`SchedulingError` when given a method dict that never
    went through :func:`serve_methods` (there is nothing to report).
    """
    stats: Dict[str, ServedMethodStats] = {}
    for name, factory in methods.items():
        collect = getattr(factory, "service_stats", None)
        if not callable(collect):
            raise SchedulingError(
                f"method {name!r} was not wrapped by serve_methods; "
                "service stats are only available for served method dicts"
            )
        stats[name] = collect()
    return stats


class _ServedService:
    """Façade over a :class:`SchedulingService` created by a served factory.

    Delegates every attribute to the wrapped service, and on garbage
    collection triggers ``finalizer(service)`` — letting
    :func:`serve_methods` fold the service's final counters into its
    per-method tallies at exactly the moment the caller abandons it,
    without the factory ever holding a strong reference.
    """

    def __init__(self, service: object, finalizer: Callable) -> None:
        self._service = service
        weakref.finalize(self, finalizer, service)

    def __getattr__(self, name: str) -> object:
        return getattr(object.__getattribute__(self, "_service"), name)

    def __enter__(self) -> "_ServedService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._service.close()  # type: ignore[attr-defined]


def serve_methods(
    methods: Dict[str, SchedulerFactory],
    cache_capacity: int = 512,
    max_batch_size: int = 32,
    batch_window_s: float = 0.002,
    num_shards: int = 1,
    max_queue_depth: int = 64,
    admission: str = "block",
    decode_workers: int = 0,
    store_dir: Optional[str] = None,
) -> Dict[str, SchedulerFactory]:
    """Route a method dict through the scheduling service layer.

    Wraps every factory so it yields a
    :class:`repro.service.SchedulingService` around the underlying
    scheduler.  The service duck-types as a scheduler
    (``schedule``/``schedule_batch``/``method_name``), so
    :func:`compare_methods`, :func:`run_method_batch` and
    :func:`compare_methods_over_models` transparently gain the
    fingerprint cache and micro-batching — with schedules bit-identical
    to the unserved path.  Each wrapped method owns one
    :class:`~repro.service.ScheduleCache` *shared across every service
    its factory creates*, so repeated models are solved once per method
    even across separate comparison calls (safe: cache keys embed each
    scheduler instance's options fingerprint).  Idle services retire
    their worker threads automatically, so factory-created services
    need no explicit ``close()``.

    With ``num_shards > 1`` every factory call yields a
    :class:`repro.service.ShardedSchedulingService` instead — requests
    fan out by graph fingerprint over per-shard solver workers behind
    the given admission policy (see the sharded service docs), and each
    shard's cache persists across the factory's service generations.
    The underlying factory is then invoked once per shard, so it must
    produce equivalently-configured schedulers (the same assumption the
    shared cache already makes across calls).

    With ``decode_workers > 0`` every created service owns a
    :class:`~repro.service.workers.DecodeWorkerPool` of that many
    processes and routes RESPECT policy decodes through it (heuristic
    methods are unaffected); schedules stay bit-identical.  Close such
    services explicitly (``with make() as service:``) so the worker
    processes are reaped promptly rather than at interpreter exit.

    With ``store_dir=`` the per-method caches become **persistent**: one
    shared :class:`~repro.service.DiskScheduleStore` is opened at that
    directory and each method's cache (each *shard's* cache when
    sharded) is a tiered store over its own namespace in it —
    ``"<method>"`` for single-shard methods, ``"<method>/shard-<i>"``
    for sharded ones.  A later :func:`serve_methods` call (or process)
    over the same directory warm-starts: graphs any previous run solved
    are served from disk without touching the solver, bit-identically.
    Each returned factory exposes the store as ``schedule_store``
    (snapshot it explicitly at good cut points; it is also snapshotted
    when garbage-collected, and appends are flushed as they happen).

    Each returned factory additionally exposes ``service_stats()`` —
    aggregated over all services it created — which
    :func:`served_method_stats` collects into per-method cache hit rates
    and mean micro-batch sizes.
    """
    from repro.service import (
        DiskScheduleStore,
        ScheduleCache,
        SchedulingService,
        ShardedSchedulingService,
        TieredScheduleStore,
    )

    shared_store = (
        DiskScheduleStore(store_dir) if store_dir is not None else None
    )

    def wrap(name: str, factory: SchedulerFactory) -> SchedulerFactory:
        if shared_store is None:
            shared_caches: List[object] = [
                ScheduleCache(cache_capacity) for _ in range(max(1, num_shards))
            ]
        elif num_shards > 1:
            shared_caches = [
                TieredScheduleStore(
                    disk=shared_store.namespace(f"{name}/shard-{i}"),
                    memory_capacity=cache_capacity,
                )
                for i in range(num_shards)
            ]
        else:
            shared_caches = [
                TieredScheduleStore(
                    disk=shared_store.namespace(name),
                    memory_capacity=cache_capacity,
                )
            ]
        shared_cache = shared_caches[0]
        # Created services are handed out behind `_ServedService` façades
        # tracked only weakly, so a long-lived served dict does not keep
        # every service it ever created alive.  When a caller drops its
        # façade, the finalizer reads the real service's *final* counters
        # into the running tallies — stats stay exact whether a service
        # is still in use or long abandoned.
        tracked: List["weakref.ref[_ServedService]"] = []
        folded = {
            "services": 0,
            "requests": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "batches": 0,
            "scheduled_graphs": 0,
        }

        def fold(service: object) -> None:
            stats = service.stats()
            folded["services"] += 1
            folded["requests"] += stats.requests
            folded["cache_hits"] += stats.cache_hits
            folded["coalesced"] += stats.coalesced
            folded["batches"] += stats.batches
            folded["scheduled_graphs"] += stats.scheduled_graphs

        def make() -> object:
            if num_shards > 1:
                service: object = ShardedSchedulingService(
                    scheduler_factory=factory,
                    num_shards=num_shards,
                    max_queue_depth=max_queue_depth,
                    admission=admission,
                    caches=shared_caches,
                    max_batch_size=max_batch_size,
                    batch_window_s=batch_window_s,
                    decode_workers=decode_workers,
                )
            else:
                service = SchedulingService(
                    factory(),
                    cache=shared_cache,
                    max_batch_size=max_batch_size,
                    batch_window_s=batch_window_s,
                    decode_workers=decode_workers,
                )
            served = _ServedService(service, fold)
            tracked[:] = [ref for ref in tracked if ref() is not None]
            tracked.append(weakref.ref(served))
            return served

        def service_stats() -> ServedMethodStats:
            live = []
            for ref in tracked:
                served = ref()
                if served is not None:
                    live.append(served.stats())
            return ServedMethodStats(
                method=name,
                services=folded["services"] + len(live),
                requests=folded["requests"] + sum(s.requests for s in live),
                cache_hits=(
                    folded["cache_hits"] + sum(s.cache_hits for s in live)
                ),
                coalesced=folded["coalesced"] + sum(s.coalesced for s in live),
                batches=folded["batches"] + sum(s.batches for s in live),
                scheduled_graphs=(
                    folded["scheduled_graphs"]
                    + sum(s.scheduled_graphs for s in live)
                ),
            )

        make.service_stats = service_stats  # type: ignore[attr-defined]
        make.schedule_store = shared_store  # type: ignore[attr-defined]
        return make

    return {name: wrap(name, factory) for name, factory in methods.items()}
