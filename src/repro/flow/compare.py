"""Comparison harness shared by every evaluation figure.

One call per (model, method, stage count): quantize the model, let the
scheduler solve it, deploy the schedule and simulate the 1,000-inference
workload the paper measures.  Results carry all three quantities the
evaluation section reports: schedule *solving time* (Fig. 3), simulated
*on-chip runtime* (Fig. 4) and *peak parameter-caching memory* (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.compiler_proxy import EdgeTpuCompilerProxy
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.postprocess import postprocess_schedule
from repro.scheduling.schedule import ScheduleResult
from repro.tpu.pipeline import PipelinedTpuSystem, PipelineReport
from repro.tpu.quantize import is_quantized, quantize_graph
from repro.tpu.spec import EdgeTPUSpec, default_spec

#: A scheduler factory: () -> object with .schedule(graph, num_stages).
SchedulerFactory = Callable[[], object]


@dataclass
class MethodOutcome:
    """Everything measured for one (model, method, stages) cell."""

    model: str
    method: str
    num_stages: int
    solve_time_seconds: float
    seconds_per_inference: float
    peak_stage_param_bytes: int
    objective: float
    report: PipelineReport
    schedule_result: ScheduleResult


def default_methods() -> Dict[str, SchedulerFactory]:
    """The paper's three contenders (RESPECT joins once a policy exists)."""
    return {
        "edgetpu_compiler": EdgeTpuCompilerProxy,
        "ilp": IlpScheduler,
    }


def run_method(
    graph: ComputationalGraph,
    scheduler: object,
    num_stages: int,
    num_inferences: int = 1000,
    spec: Optional[EdgeTPUSpec] = None,
    model_name: str = "",
    method_name: str = "",
) -> MethodOutcome:
    """Schedule + deploy + simulate one configuration.

    ``graph`` should already be quantized (all methods schedule the same
    int8 model, as the real deployment flow does after Toco conversion).
    """
    if not is_quantized(graph):
        raise SchedulingError(
            "run_method expects a quantized graph; call quantize_graph first"
        )
    result: ScheduleResult = scheduler.schedule(graph, num_stages)  # type: ignore[attr-defined]
    schedule = postprocess_schedule(result.schedule)
    system = PipelinedTpuSystem(spec or default_spec())
    report = system.run(graph, schedule, num_inferences=num_inferences)
    return MethodOutcome(
        model=model_name or graph.name,
        method=method_name or result.method,
        num_stages=num_stages,
        solve_time_seconds=result.solve_time,
        seconds_per_inference=report.seconds_per_inference,
        peak_stage_param_bytes=schedule.peak_stage_param_bytes,
        objective=result.objective,
        report=report,
        schedule_result=result,
    )


def compare_methods(
    graph: ComputationalGraph,
    methods: Dict[str, SchedulerFactory],
    num_stages: int,
    num_inferences: int = 1000,
    spec: Optional[EdgeTPUSpec] = None,
    model_name: str = "",
) -> Dict[str, MethodOutcome]:
    """Run every method on the same quantized graph and stage count."""
    quantized = graph if is_quantized(graph) else quantize_graph(graph)
    outcomes: Dict[str, MethodOutcome] = {}
    for name, factory in methods.items():
        scheduler = factory()
        outcomes[name] = run_method(
            quantized,
            scheduler,
            num_stages,
            num_inferences=num_inferences,
            spec=spec,
            model_name=model_name or graph.name,
            method_name=name,
        )
    return outcomes
