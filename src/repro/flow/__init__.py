"""End-to-end experiment flow: model -> schedule -> deploy -> simulate."""

from repro.flow.compare import (
    MethodOutcome,
    compare_methods,
    default_methods,
    run_method,
)
from repro.flow.multimodel import merge_graphs, split_schedule

__all__ = [
    "MethodOutcome",
    "compare_methods",
    "default_methods",
    "merge_graphs",
    "run_method",
    "split_schedule",
]
