"""End-to-end experiment flow: model -> schedule -> deploy -> simulate."""

from repro.flow.compare import (
    MethodOutcome,
    ServedMethodStats,
    adapted_policy_method,
    champion_challenger_methods,
    compare_methods,
    compare_methods_over_models,
    default_methods,
    run_method,
    run_method_batch,
    schedule_many,
    serve_methods,
    served_method_stats,
)
from repro.flow.multimodel import merge_graphs, split_schedule

__all__ = [
    "MethodOutcome",
    "ServedMethodStats",
    "adapted_policy_method",
    "champion_challenger_methods",
    "compare_methods",
    "compare_methods_over_models",
    "default_methods",
    "merge_graphs",
    "run_method",
    "run_method_batch",
    "schedule_many",
    "serve_methods",
    "served_method_stats",
    "split_schedule",
]
