"""Multi-model co-scheduling.

The paper's deployment framework "takes single or multiple DNN models
and the number of pipeline stages as inputs" — co-compiling several
models onto one pipelined Edge TPU system so their parameters share the
aggregate SRAM.  This module merges multiple computational graphs into
one schedulable DAG (namespaced node names, independent sources/sinks)
so every scheduler in the library applies unchanged, and splits the
joint schedule back per model afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import GraphError, SchedulingError
from repro.graphs.dag import ComputationalGraph, OpNode
from repro.scheduling.schedule import Schedule

_SEPARATOR = "::"


def merge_graphs(
    graphs: Sequence[ComputationalGraph], name: str = "multimodel"
) -> ComputationalGraph:
    """Merge ``graphs`` into one DAG with ``<model>::<node>`` names.

    Models stay disconnected (they only share the pipeline's resources),
    so any schedule of the merged graph induces a valid schedule of each
    member.
    """
    if not graphs:
        raise GraphError("merge_graphs needs at least one graph")
    names = [g.name for g in graphs]
    if len(set(names)) != len(names):
        raise GraphError(f"model names must be unique, got {names}")
    merged = ComputationalGraph(name=name)
    for graph in graphs:
        for node in graph.nodes:
            namespaced = node.copy()
            namespaced.name = f"{graph.name}{_SEPARATOR}{node.name}"
            merged.add_node(namespaced)
        for src, dst in graph.edges():
            merged.add_edge(
                f"{graph.name}{_SEPARATOR}{src}",
                f"{graph.name}{_SEPARATOR}{dst}",
            )
    return merged


def split_schedule(
    schedule: Schedule, graphs: Sequence[ComputationalGraph]
) -> Dict[str, Schedule]:
    """Project a merged-graph schedule back onto each member model."""
    by_name = {g.name: g for g in graphs}
    assignments: Dict[str, Dict[str, int]] = {name: {} for name in by_name}
    for merged_name, stage in schedule.assignment.items():
        model, _, node = merged_name.partition(_SEPARATOR)
        if model not in by_name or not node:
            raise SchedulingError(
                f"schedule node {merged_name!r} does not belong to any of "
                f"the supplied models"
            )
        assignments[model][node] = stage
    return {
        name: Schedule(by_name[name], schedule.num_stages, assignment)
        for name, assignment in assignments.items()
    }
