"""Directed-acyclic computational graphs.

A :class:`ComputationalGraph` models a DNN the way a deep-learning
compiler sees it after static compilation (Sec. II of the paper): nodes
are operators, edges are tensor dataflows.  Each node carries the three
attributes the scheduling problem cares about:

``param_bytes``
    Size of the operator's weights/parameters.  Pipelined Edge TPUs cache
    parameters in 8 MiB of on-chip SRAM; the per-stage sum of this
    attribute is the quantity the exact scheduler balances (Fig. 5).
``output_bytes``
    Size of the operator's output activation tensor.  When an edge crosses
    a pipeline-stage boundary this many bytes travel over the USB host bus
    every inference.
``macs``
    Multiply-accumulate count, used by the Edge TPU latency model.

The class keeps nodes in insertion order, maintains parent/child
adjacency, and exposes the derived quantities (degree statistics, sources
and sinks, topological order) that the embeddings and schedulers build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CycleError, GraphError


@dataclass
class OpNode:
    """A single operator in a computational graph.

    Parameters
    ----------
    name:
        Unique node identifier within its graph (e.g. ``"conv2_block1_1_conv"``).
    op_type:
        Operator kind (see :mod:`repro.graphs.ops` for the taxonomy).
    param_bytes:
        Parameter (weight) footprint in bytes.
    output_bytes:
        Output activation tensor size in bytes.
    macs:
        Number of multiply-accumulate operations performed per inference.
    attrs:
        Free-form operator attributes (kernel size, strides, shapes, ...).
    """

    name: str
    op_type: str = "generic"
    param_bytes: int = 0
    output_bytes: int = 0
    macs: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("node name must be a non-empty string")
        if self.param_bytes < 0 or self.output_bytes < 0 or self.macs < 0:
            raise GraphError(
                f"node {self.name!r}: resource attributes must be non-negative"
            )

    def copy(self) -> "OpNode":
        """Return a deep-enough copy (attrs dict is shallow-copied)."""
        return OpNode(
            name=self.name,
            op_type=self.op_type,
            param_bytes=self.param_bytes,
            output_bytes=self.output_bytes,
            macs=self.macs,
            attrs=dict(self.attrs),
        )


class ComputationalGraph:
    """A DAG of :class:`OpNode` operators connected by dataflow edges.

    Nodes are addressed by name; integer indices follow insertion order and
    are what the embedding matrices and schedule vectors use.  Edges are
    unique and self-loops are rejected; acyclicity is enforced lazily by
    :meth:`topological_order` (and eagerly by :meth:`assert_acyclic`).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[str, OpNode] = {}
        self._order: List[str] = []
        self._parents: Dict[str, List[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: OpNode) -> str:
        """Insert ``node``; returns its name.  Duplicate names are errors."""
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._parents[node.name] = []
        self._children[node.name] = []
        return node.name

    def add_op(
        self,
        name: str,
        op_type: str = "generic",
        param_bytes: int = 0,
        output_bytes: int = 0,
        macs: int = 0,
        inputs: Sequence[str] = (),
        **attrs: object,
    ) -> str:
        """Convenience: create a node and wire ``inputs -> node`` edges."""
        self.add_node(
            OpNode(
                name=name,
                op_type=op_type,
                param_bytes=param_bytes,
                output_bytes=output_bytes,
                macs=macs,
                attrs=dict(attrs),
            )
        )
        for src in inputs:
            self.add_edge(src, name)
        return name

    def add_edge(self, src: str, dst: str) -> None:
        """Add the dataflow edge ``src -> dst``."""
        if src not in self._nodes:
            raise GraphError(f"edge source {src!r} is not a node")
        if dst not in self._nodes:
            raise GraphError(f"edge destination {dst!r} is not a node")
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed in a DAG")
        if dst in self._children[src]:
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        self._children[src].append(dst)
        self._parents[dst].append(src)
        self._num_edges += 1

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def node(self, name: str) -> OpNode:
        """Return the node called ``name``."""
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_names(self) -> List[str]:
        """Node names in insertion order."""
        return list(self._order)

    @property
    def nodes(self) -> List[OpNode]:
        """Nodes in insertion order."""
        return [self._nodes[n] for n in self._order]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Iterate over ``(src, dst)`` edges in insertion order of sources."""
        for src in self._order:
            for dst in self._children[src]:
                yield (src, dst)

    def parents(self, name: str) -> List[str]:
        """Direct predecessors of ``name`` (insertion order)."""
        if name not in self._nodes:
            raise GraphError(f"unknown node {name!r}")
        return list(self._parents[name])

    def children(self, name: str) -> List[str]:
        """Direct successors of ``name`` (insertion order)."""
        if name not in self._nodes:
            raise GraphError(f"unknown node {name!r}")
        return list(self._children[name])

    def in_degree(self, name: str) -> int:
        if name not in self._nodes:
            raise GraphError(f"unknown node {name!r}")
        return len(self._parents[name])

    def out_degree(self, name: str) -> int:
        if name not in self._nodes:
            raise GraphError(f"unknown node {name!r}")
        return len(self._children[name])

    @property
    def max_in_degree(self) -> int:
        """``deg(V)`` in the paper: maximum number of incoming edges."""
        if not self._nodes:
            return 0
        return max(len(p) for p in self._parents.values())

    @property
    def sources(self) -> List[str]:
        """Nodes with no parents (model inputs)."""
        return [n for n in self._order if not self._parents[n]]

    @property
    def sinks(self) -> List[str]:
        """Nodes with no children (model outputs)."""
        return [n for n in self._order if not self._children[n]]

    def index_of(self, name: str) -> int:
        """Insertion index of ``name`` (the node's row in embeddings)."""
        try:
            return self._order.index(name)
        except ValueError:
            raise GraphError(f"unknown node {name!r}") from None

    def build_index(self) -> Dict[str, int]:
        """Return a name -> insertion-index map (computed once, O(|V|))."""
        return {name: i for i, name in enumerate(self._order)}

    # ------------------------------------------------------------------
    # aggregate resource statistics
    # ------------------------------------------------------------------
    @property
    def total_param_bytes(self) -> int:
        return sum(n.param_bytes for n in self._nodes.values())

    @property
    def total_output_bytes(self) -> int:
        return sum(n.output_bytes for n in self._nodes.values())

    @property
    def total_macs(self) -> int:
        return sum(n.macs for n in self._nodes.values())

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn topological order, stable w.r.t. insertion order.

        Raises
        ------
        CycleError
            If the graph contains a directed cycle.
        """
        indegree = {n: len(self._parents[n]) for n in self._order}
        ready = [n for n in self._order if indegree[n] == 0]
        result: List[str] = []
        cursor = 0
        # `ready` is consumed in FIFO order; appended nodes keep insertion
        # order because children lists preserve it.
        while cursor < len(ready):
            node = ready[cursor]
            cursor += 1
            result.append(node)
            for child in self._children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(result) != len(self._order):
            unresolved = [n for n in self._order if indegree[n] > 0]
            raise CycleError(
                f"graph {self.name!r} contains a cycle among {unresolved[:5]}"
            )
        return result

    def is_dag(self) -> bool:
        """True iff the graph has no directed cycle."""
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def assert_acyclic(self) -> None:
        """Raise :class:`CycleError` if the graph is not a DAG."""
        self.topological_order()

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "ComputationalGraph":
        """Deep copy (nodes are copied; edge structure is rebuilt)."""
        out = ComputationalGraph(name=name or self.name)
        for node_name in self._order:
            out.add_node(self._nodes[node_name].copy())
        for src, dst in self.edges():
            out.add_edge(src, dst)
        return out

    def subgraph(self, names: Sequence[str], name: str = "") -> "ComputationalGraph":
        """Induced subgraph on ``names`` (kept in original insertion order)."""
        keep = set(names)
        missing = keep - set(self._nodes)
        if missing:
            raise GraphError(f"subgraph refers to unknown nodes {sorted(missing)[:5]}")
        out = ComputationalGraph(name=name or f"{self.name}_sub")
        for node_name in self._order:
            if node_name in keep:
                out.add_node(self._nodes[node_name].copy())
        for src, dst in self.edges():
            if src in keep and dst in keep:
                out.add_edge(src, dst)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ComputationalGraph(name={self.name!r}, |V|={self.num_nodes}, "
            f"|E|={self.num_edges})"
        )
