"""Operator taxonomy for DNN computational graphs.

Operator type strings mirror the layer kinds that appear in the Keras /
TFLite graphs the paper schedules.  The sets below drive downstream
behaviour: which ops own parameters (and therefore occupy Edge TPU SRAM),
and which ops the latency model treats as compute-bound versus
memory-bound.
"""

from __future__ import annotations

# -- operator kind constants -------------------------------------------------
INPUT = "input"
CONV2D = "conv2d"
DEPTHWISE_CONV2D = "depthwise_conv2d"
SEPARABLE_CONV2D = "separable_conv2d"
DENSE = "dense"
BATCH_NORM = "batch_norm"
ACTIVATION = "activation"
ADD = "add"
MULTIPLY = "multiply"
CONCAT = "concat"
MAX_POOL = "max_pool"
AVG_POOL = "avg_pool"
GLOBAL_AVG_POOL = "global_avg_pool"
ZERO_PAD = "zero_pad"
SCALE = "scale"
SOFTMAX = "softmax"
GENERIC = "generic"

ALL_OP_TYPES = frozenset(
    {
        INPUT,
        CONV2D,
        DEPTHWISE_CONV2D,
        SEPARABLE_CONV2D,
        DENSE,
        BATCH_NORM,
        ACTIVATION,
        ADD,
        MULTIPLY,
        CONCAT,
        MAX_POOL,
        AVG_POOL,
        GLOBAL_AVG_POOL,
        ZERO_PAD,
        SCALE,
        SOFTMAX,
        GENERIC,
    }
)

#: Operators that own trainable parameters (weights cached in TPU SRAM).
PARAMETRIC_OPS = frozenset(
    {CONV2D, DEPTHWISE_CONV2D, SEPARABLE_CONV2D, DENSE, BATCH_NORM}
)

#: Operators whose cost is dominated by MAC throughput on the systolic array.
COMPUTE_OPS = frozenset({CONV2D, DEPTHWISE_CONV2D, SEPARABLE_CONV2D, DENSE})

#: Element-wise / data-movement operators (cost ~ activation bytes).
ELEMENTWISE_OPS = frozenset(
    {
        ACTIVATION,
        ADD,
        MULTIPLY,
        SCALE,
        SOFTMAX,
        BATCH_NORM,
        ZERO_PAD,
        CONCAT,
        MAX_POOL,
        AVG_POOL,
        GLOBAL_AVG_POOL,
    }
)


def is_parametric(op_type: str) -> bool:
    """True iff ``op_type`` carries weights the Edge TPU must cache."""
    return op_type in PARAMETRIC_OPS


def conv2d_params(kernel_h: int, kernel_w: int, cin: int, cout: int, use_bias: bool) -> int:
    """Trainable parameter count of a standard 2-D convolution."""
    return kernel_h * kernel_w * cin * cout + (cout if use_bias else 0)


def depthwise_conv2d_params(kernel_h: int, kernel_w: int, cin: int, use_bias: bool) -> int:
    """Parameter count of a depthwise convolution (channel multiplier 1)."""
    return kernel_h * kernel_w * cin + (cin if use_bias else 0)


def separable_conv2d_params(
    kernel_h: int, kernel_w: int, cin: int, cout: int, use_bias: bool
) -> int:
    """Parameter count of a separable conv = depthwise + pointwise."""
    depthwise = depthwise_conv2d_params(kernel_h, kernel_w, cin, use_bias=False)
    pointwise = conv2d_params(1, 1, cin, cout, use_bias)
    return depthwise + pointwise


def dense_params(units_in: int, units_out: int, use_bias: bool) -> int:
    """Parameter count of a fully-connected layer."""
    return units_in * units_out + (units_out if use_bias else 0)


def batch_norm_params(channels: int) -> int:
    """BatchNorm stores gamma/beta/moving-mean/moving-variance: 4 per channel."""
    return 4 * channels


def conv2d_macs(out_h: int, out_w: int, kernel_h: int, kernel_w: int, cin: int, cout: int) -> int:
    """MAC count of a standard convolution."""
    return out_h * out_w * kernel_h * kernel_w * cin * cout


def depthwise_conv2d_macs(out_h: int, out_w: int, kernel_h: int, kernel_w: int, cin: int) -> int:
    """MAC count of a depthwise convolution."""
    return out_h * out_w * kernel_h * kernel_w * cin


def dense_macs(units_in: int, units_out: int) -> int:
    """MAC count of a fully-connected layer."""
    return units_in * units_out
