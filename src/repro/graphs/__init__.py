"""Computational-graph substrate.

This subpackage provides the DAG data structure that every other part of
the library operates on: DNN computational graphs whose nodes carry the
attributes the RESPECT scheduler consumes (parameter bytes, activation
output bytes, MAC counts), plus topology analyses (ASAP/ALAP levels,
depth, critical path), validation, serialization, and the synthetic
training-graph sampler from Sec. III of the paper.
"""

from repro.graphs.dag import ComputationalGraph, OpNode
from repro.graphs.fingerprint import graph_fingerprint, structural_fingerprint
from repro.graphs.sampler import SyntheticDAGSampler, sample_synthetic_dag
from repro.graphs.topology import (
    alap_levels,
    ancestors,
    asap_levels,
    critical_path,
    descendants,
    graph_depth,
    level_sets,
    mobility,
)
from repro.graphs.validate import assert_valid_graph, validate_graph

__all__ = [
    "ComputationalGraph",
    "OpNode",
    "SyntheticDAGSampler",
    "alap_levels",
    "ancestors",
    "asap_levels",
    "assert_valid_graph",
    "critical_path",
    "descendants",
    "graph_depth",
    "graph_fingerprint",
    "structural_fingerprint",
    "level_sets",
    "mobility",
    "sample_synthetic_dag",
    "validate_graph",
]
