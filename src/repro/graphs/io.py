"""Serialization of computational graphs (JSON, DOT, networkx bridges)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import networkx as nx

from repro.errors import GraphError
from repro.graphs.dag import ComputationalGraph, OpNode

_FORMAT_VERSION = 1


def graph_to_dict(graph: ComputationalGraph) -> Dict[str, object]:
    """Serialize ``graph`` to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "param_bytes": n.param_bytes,
                "output_bytes": n.output_bytes,
                "macs": n.macs,
                "attrs": n.attrs,
            }
            for n in graph.nodes
        ],
        "edges": [[src, dst] for src, dst in graph.edges()],
    }


def graph_from_dict(data: Dict[str, object]) -> ComputationalGraph:
    """Inverse of :func:`graph_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise GraphError(f"unsupported graph format version {version!r}")
    graph = ComputationalGraph(name=str(data.get("name", "graph")))
    for spec in data["nodes"]:  # type: ignore[index]
        graph.add_node(
            OpNode(
                name=spec["name"],
                op_type=spec.get("op_type", "generic"),
                param_bytes=int(spec.get("param_bytes", 0)),
                output_bytes=int(spec.get("output_bytes", 0)),
                macs=int(spec.get("macs", 0)),
                attrs=dict(spec.get("attrs", {})),
            )
        )
    for src, dst in data["edges"]:  # type: ignore[index]
        graph.add_edge(src, dst)
    return graph


def save_graph(graph: ComputationalGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: Union[str, Path]) -> ComputationalGraph:
    """Read a graph previously written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def to_networkx(graph: ComputationalGraph) -> "nx.DiGraph":
    """Convert to a :class:`networkx.DiGraph` (node attrs copied over)."""
    out = nx.DiGraph(name=graph.name)
    for node in graph.nodes:
        out.add_node(
            node.name,
            op_type=node.op_type,
            param_bytes=node.param_bytes,
            output_bytes=node.output_bytes,
            macs=node.macs,
        )
    out.add_edges_from(graph.edges())
    return out


def from_networkx(nx_graph: "nx.DiGraph", name: str = "graph") -> ComputationalGraph:
    """Build a :class:`ComputationalGraph` from a networkx DiGraph.

    Node attributes ``op_type``/``param_bytes``/``output_bytes``/``macs``
    are honoured when present.
    """
    graph = ComputationalGraph(name=name)
    for node_name, attrs in nx_graph.nodes(data=True):
        graph.add_node(
            OpNode(
                name=str(node_name),
                op_type=attrs.get("op_type", "generic"),
                param_bytes=int(attrs.get("param_bytes", 0)),
                output_bytes=int(attrs.get("output_bytes", 0)),
                macs=int(attrs.get("macs", 0)),
            )
        )
    for src, dst in nx_graph.edges():
        graph.add_edge(str(src), str(dst))
    return graph


def to_dot(graph: ComputationalGraph) -> str:
    """Render the graph as Graphviz DOT text (for debugging / papers)."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for node in graph.nodes:
        label = f"{node.name}\\n{node.op_type}"
        if node.param_bytes:
            label += f"\\n{node.param_bytes / 1024:.1f} KiB"
        lines.append(f'  "{node.name}" [label="{label}"];')
    for src, dst in graph.edges():
        lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)
