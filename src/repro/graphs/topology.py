"""Topological analyses over computational graphs.

These are the classic scheduling-theory quantities (ASAP/ALAP levels,
mobility, critical path) that both the graph embedding (Sec. III-A) and
the exact schedulers consume.  Levels follow the paper's convention:
source nodes sit at level 0 and every node is placed as soon as its
parents allow (ASAP ordering).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import GraphError
from repro.graphs.dag import ComputationalGraph


def asap_levels(graph: ComputationalGraph) -> Dict[str, int]:
    """As-Soon-As-Possible level per node: ``level = max(parents) + 1``.

    Sources are at level 0.  This is the "absolute coordinate" column of
    the RESPECT embedding.
    """
    levels: Dict[str, int] = {}
    for name in graph.topological_order():
        parents = graph.parents(name)
        levels[name] = 0 if not parents else max(levels[p] for p in parents) + 1
    return levels


def graph_depth(graph: ComputationalGraph) -> int:
    """Longest path length in *edges* (the "Depth" column of Table I).

    An empty graph has depth 0; a single node also has depth 0.
    """
    if graph.num_nodes == 0:
        return 0
    return max(asap_levels(graph).values())


def alap_levels(graph: ComputationalGraph, depth: int = -1) -> Dict[str, int]:
    """As-Late-As-Possible level per node within ``depth`` total levels.

    ``depth`` defaults to the graph depth, which makes the level range
    identical to ASAP's.  Raises if ``depth`` is smaller than the graph
    depth (the schedule horizon would be infeasible).
    """
    actual_depth = graph_depth(graph)
    if depth < 0:
        depth = actual_depth
    if depth < actual_depth:
        raise GraphError(
            f"ALAP horizon {depth} is below the graph depth {actual_depth}"
        )
    levels: Dict[str, int] = {}
    for name in reversed(graph.topological_order()):
        children = graph.children(name)
        if not children:
            levels[name] = depth
        else:
            levels[name] = min(levels[c] for c in children) - 1
    return levels


def mobility(graph: ComputationalGraph) -> Dict[str, int]:
    """Scheduling slack per node: ``ALAP - ASAP`` (0 on the critical path)."""
    asap = asap_levels(graph)
    alap = alap_levels(graph)
    return {name: alap[name] - asap[name] for name in graph.node_names}


def level_sets(graph: ComputationalGraph) -> List[List[str]]:
    """Nodes grouped by ASAP level, index ``i`` holding level-``i`` nodes."""
    asap = asap_levels(graph)
    if not asap:
        return []
    buckets: List[List[str]] = [[] for _ in range(max(asap.values()) + 1)]
    for name in graph.node_names:
        buckets[asap[name]].append(name)
    return buckets


def critical_path(graph: ComputationalGraph) -> List[str]:
    """One longest source-to-sink path (ties broken by insertion order)."""
    if graph.num_nodes == 0:
        return []
    levels = asap_levels(graph)
    end = max(graph.node_names, key=lambda n: (levels[n], -graph.index_of(n)))
    path = [end]
    while True:
        parents = graph.parents(path[-1])
        if not parents:
            break
        # Walk back through a parent on the longest path.
        best = max(parents, key=lambda p: (levels[p], -graph.index_of(p)))
        path.append(best)
    path.reverse()
    return path


def ancestors(graph: ComputationalGraph, name: str) -> Set[str]:
    """All transitive predecessors of ``name`` (excluding itself)."""
    seen: Set[str] = set()
    stack = list(graph.parents(name))
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(graph.parents(cur))
    return seen


def descendants(graph: ComputationalGraph, name: str) -> Set[str]:
    """All transitive successors of ``name`` (excluding itself)."""
    seen: Set[str] = set()
    stack = list(graph.children(name))
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(graph.children(cur))
    return seen
