"""Structural validation of computational graphs.

Schedulers assume well-formed DAG inputs; :func:`validate_graph` collects
every problem it can find (rather than stopping at the first) so model
builders and the synthetic sampler can be checked thoroughly in tests.
"""

from __future__ import annotations

from typing import List

from repro.errors import GraphError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.ops import ALL_OP_TYPES


def validate_graph(
    graph: ComputationalGraph,
    require_single_source: bool = False,
    require_known_ops: bool = False,
) -> List[str]:
    """Return a list of human-readable issues; empty means valid.

    Checks performed:

    * the graph is non-empty and acyclic,
    * at least one source and one sink exist,
    * (optional) exactly one source exists — DNN inference graphs have a
      single input tensor,
    * (optional) every ``op_type`` belongs to the known taxonomy,
    * every non-source node is reachable from some source (no orphaned
      islands that a pipeline could never feed).
    """
    issues: List[str] = []
    if graph.num_nodes == 0:
        return ["graph has no nodes"]

    if not graph.is_dag():
        issues.append("graph contains a directed cycle")
        return issues  # downstream checks assume a DAG

    if not graph.sources:
        issues.append("graph has no source node")
    if not graph.sinks:
        issues.append("graph has no sink node")
    if require_single_source and len(graph.sources) != 1:
        issues.append(
            f"expected a single source, found {len(graph.sources)}: "
            f"{graph.sources[:5]}"
        )

    if require_known_ops:
        for node in graph.nodes:
            if node.op_type not in ALL_OP_TYPES:
                issues.append(f"node {node.name!r} has unknown op_type {node.op_type!r}")

    # Reachability from sources.
    reachable = set(graph.sources)
    stack = list(graph.sources)
    while stack:
        cur = stack.pop()
        for child in graph.children(cur):
            if child not in reachable:
                reachable.add(child)
                stack.append(child)
    unreachable = [n for n in graph.node_names if n not in reachable]
    if unreachable:
        issues.append(
            f"{len(unreachable)} node(s) unreachable from any source, "
            f"e.g. {unreachable[:5]}"
        )
    return issues


def assert_valid_graph(graph: ComputationalGraph, **kwargs: bool) -> None:
    """Raise :class:`GraphError` listing all issues if any check fails."""
    issues = validate_graph(graph, **kwargs)
    if issues:
        raise GraphError(
            f"graph {graph.name!r} failed validation: " + "; ".join(issues)
        )
