"""Synthetic DAG sampler — the paper's training-data generator.

RESPECT is trained *only* on synthetic graphs (Sec. III, "Synthetic
training dataset"): random DAGs with ``|V| = 30`` whose complexity is
controlled through the maximum in-degree ``deg(V) ∈ {2, 3, 4, 5, 6}``.
The sampler below mimics the structure of DNN computational graphs:

* a single input (source) node,
* a strong chain backbone (DNNs are mostly sequential) with skip/merge
  edges providing the requested in-degree,
* parameter footprints that grow with depth and activation tensors that
  shrink with depth, the canonical CNN memory profile.

Full control over graph complexity and memory attributes is exactly the
advantage the paper claims for synthetic data, so all knobs are exposed.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import GraphError
from repro.graphs import ops
from repro.graphs.dag import ComputationalGraph, OpNode
from repro.utils.rng import SeedLike, resolve_rng

#: Non-source operator kinds assigned to sampled nodes; parametric kinds
#: receive weight bytes, the rest only produce activations.
_PARAMETRIC_KINDS = (ops.CONV2D, ops.DEPTHWISE_CONV2D, ops.DENSE, ops.BATCH_NORM)
_NONPARAMETRIC_KINDS = (ops.ACTIVATION, ops.ADD, ops.CONCAT, ops.MAX_POOL)


class SyntheticDAGSampler:
    """Random generator of DNN-like computational graphs.

    Parameters
    ----------
    num_nodes:
        ``|V|`` of every sampled graph (paper: 30).
    degree:
        Maximum in-degree ``deg(V)`` (paper sweeps 2..6).  The sampler
        guarantees the generated graph attains exactly this maximum
        whenever ``num_nodes`` permits it.
    seed:
        RNG seed or generator.
    chain_bias:
        Probability that a node's first parent is its immediate
        predecessor, producing the sequential backbone typical of DNNs.
    merge_fraction:
        Fraction of eligible nodes that receive more than one parent.
    param_bytes_range:
        (low, high) bounds for parametric nodes' weight bytes; drawn
        log-uniformly and scaled up with depth.
    output_bytes_range:
        (low, high) bounds for activation bytes; drawn log-uniformly and
        scaled down with depth.
    """

    def __init__(
        self,
        num_nodes: int = 30,
        degree: int = 2,
        seed: SeedLike = None,
        chain_bias: float = 0.75,
        merge_fraction: float = 0.3,
        param_bytes_range: Tuple[int, int] = (2_048, 2_097_152),
        output_bytes_range: Tuple[int, int] = (4_096, 1_048_576),
    ) -> None:
        if num_nodes < 2:
            raise GraphError("synthetic graphs need at least 2 nodes")
        if degree < 1:
            raise GraphError("degree must be at least 1")
        if not 0.0 <= chain_bias <= 1.0:
            raise GraphError("chain_bias must lie in [0, 1]")
        if not 0.0 <= merge_fraction <= 1.0:
            raise GraphError("merge_fraction must lie in [0, 1]")
        if param_bytes_range[0] <= 0 or param_bytes_range[0] > param_bytes_range[1]:
            raise GraphError("param_bytes_range must be positive and ordered")
        if output_bytes_range[0] <= 0 or output_bytes_range[0] > output_bytes_range[1]:
            raise GraphError("output_bytes_range must be positive and ordered")
        self.num_nodes = num_nodes
        self.degree = degree
        self.chain_bias = chain_bias
        self.merge_fraction = merge_fraction
        self.param_bytes_range = param_bytes_range
        self.output_bytes_range = output_bytes_range
        self._rng = resolve_rng(seed)
        self._counter = 0

    # ------------------------------------------------------------------
    def sample(self) -> ComputationalGraph:
        """Draw one random computational graph."""
        rng = self._rng
        self._counter += 1
        graph = ComputationalGraph(
            name=f"synthetic_v{self.num_nodes}_d{self.degree}_{self._counter:06d}"
        )
        parent_lists = self._sample_topology()
        for i in range(self.num_nodes):
            node = self._make_node(i, parent_lists[i])
            graph.add_node(node)
            for parent_index in parent_lists[i]:
                graph.add_edge(self._node_name(parent_index), node.name)
        if graph.total_param_bytes == 0:
            # Degenerate for scheduling (per-stage budgets collapse to 0);
            # promote one mid-graph node to a parametric operator.
            target = graph.node(self._node_name(self.num_nodes // 2))
            target.op_type = ops.CONV2D
            target.param_bytes = self._log_uniform(*self.param_bytes_range)
            target.macs = target.param_bytes * 16
        return graph

    def sample_batch(self, count: int) -> List[ComputationalGraph]:
        """Draw ``count`` independent graphs."""
        return [self.sample() for _ in range(count)]

    def stream(self) -> Iterator[ComputationalGraph]:
        """Endless generator of fresh graphs (training consumes this)."""
        while True:
            yield self.sample()

    # ------------------------------------------------------------------
    def _node_name(self, index: int) -> str:
        return f"n{index:03d}"

    def _sample_topology(self) -> List[List[int]]:
        """Choose parent sets per node; index 0 is the single source."""
        rng = self._rng
        parent_lists: List[List[int]] = [[]]
        for i in range(1, self.num_nodes):
            max_parents = min(i, self.degree)
            if max_parents == 1 or rng.random() >= self.merge_fraction:
                n_parents = 1
            else:
                n_parents = int(rng.integers(2, max_parents + 1))
            parents: List[int] = []
            # Backbone edge keeps graphs connected and chain-like.
            if rng.random() < self.chain_bias:
                parents.append(i - 1)
            while len(parents) < n_parents:
                # Bias candidate choice towards recent nodes (locality),
                # mirroring skip connections that span a few layers.
                span = max(1, int(rng.geometric(0.35)))
                candidate = max(0, i - span)
                if candidate not in parents:
                    parents.append(candidate)
            parent_lists.append(sorted(parents))
        self._force_max_degree(parent_lists)
        return parent_lists

    def _force_max_degree(self, parent_lists: List[List[int]]) -> None:
        """Ensure some node attains in-degree == ``degree`` when possible."""
        if self.num_nodes <= self.degree:
            return
        achieved = max(len(p) for p in parent_lists)
        if achieved >= self.degree:
            return
        rng = self._rng
        # Pick a node late enough to have `degree` candidate parents.
        target = int(rng.integers(self.degree, self.num_nodes))
        existing = set(parent_lists[target])
        candidates = [c for c in range(target) if c not in existing]
        rng.shuffle(candidates)
        needed = self.degree - len(existing)
        parent_lists[target] = sorted(existing | set(candidates[:needed]))

    def _make_node(self, index: int, parents: List[int]) -> OpNode:
        rng = self._rng
        name = self._node_name(index)
        if index == 0:
            return OpNode(
                name=name,
                op_type=ops.INPUT,
                param_bytes=0,
                output_bytes=self._log_uniform(*self.output_bytes_range),
                macs=0,
            )
        depth_frac = index / max(1, self.num_nodes - 1)
        if len(parents) > 1:
            # Merge points are joins (add/concat): no parameters.
            op_type = ops.ADD if rng.random() < 0.5 else ops.CONCAT
            param_bytes = 0
        elif rng.random() < 0.7:
            op_type = str(rng.choice(_PARAMETRIC_KINDS))
            # Parameters grow with depth: late conv/dense layers dominate
            # model size in real CNNs (what makes scheduling hard).
            scale = 0.25 + 1.75 * depth_frac
            param_bytes = int(self._log_uniform(*self.param_bytes_range) * scale)
        else:
            op_type = str(rng.choice(_NONPARAMETRIC_KINDS))
            param_bytes = 0
        # Activations shrink with depth (spatial downsampling).
        act_scale = 1.5 - 1.2 * depth_frac
        output_bytes = max(
            256, int(self._log_uniform(*self.output_bytes_range) * act_scale)
        )
        macs = param_bytes * int(rng.integers(8, 64)) if param_bytes else 0
        return OpNode(
            name=name,
            op_type=op_type,
            param_bytes=param_bytes,
            output_bytes=output_bytes,
            macs=macs,
        )

    def _log_uniform(self, low: int, high: int) -> int:
        import math

        rng = self._rng
        return int(math.exp(rng.uniform(math.log(low), math.log(high))))


def sample_synthetic_dag(
    num_nodes: int = 30, degree: int = 2, seed: SeedLike = None
) -> ComputationalGraph:
    """One-shot convenience wrapper around :class:`SyntheticDAGSampler`."""
    return SyntheticDAGSampler(num_nodes=num_nodes, degree=degree, seed=seed).sample()
