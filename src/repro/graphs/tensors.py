"""Tensor shape/size bookkeeping for computational-graph construction.

The model builders (:mod:`repro.models`) carry a :class:`TensorSpec`
through the network exactly the way a shape-inference pass does, so node
attributes (activation bytes) come from real tensor shapes rather than
made-up constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import GraphError

DTYPE_BYTES = {
    "float32": 4,
    "float16": 2,
    "int8": 1,
    "uint8": 1,
    "int32": 4,
}


@dataclass(frozen=True)
class TensorSpec:
    """An immutable tensor description: ``shape`` (no batch dim) + dtype."""

    shape: Tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.dtype not in DTYPE_BYTES:
            raise GraphError(f"unknown dtype {self.dtype!r}")
        if any(d <= 0 for d in self.shape):
            raise GraphError(f"tensor shape {self.shape} has non-positive dims")

    @property
    def numel(self) -> int:
        """Number of elements."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        """Size in bytes."""
        return self.numel * DTYPE_BYTES[self.dtype]

    def with_dtype(self, dtype: str) -> "TensorSpec":
        """Same shape, different element type."""
        return TensorSpec(self.shape, dtype)


def conv_output_hw(
    height: int,
    width: int,
    kernel: Tuple[int, int],
    strides: Tuple[int, int],
    padding: str,
) -> Tuple[int, int]:
    """Spatial output size of a convolution/pool under Keras semantics.

    ``padding='same'`` gives ``ceil(in / stride)``; ``'valid'`` gives
    ``ceil((in - k + 1) / stride)``.
    """
    kh, kw = kernel
    sh, sw = strides
    if sh <= 0 or sw <= 0:
        raise GraphError("strides must be positive")
    if padding == "same":
        out_h = -(-height // sh)
        out_w = -(-width // sw)
    elif padding == "valid":
        if height < kh or width < kw:
            raise GraphError(
                f"valid padding with kernel {kernel} larger than input "
                f"({height}x{width})"
            )
        out_h = -(-(height - kh + 1) // sh)
        out_w = -(-(width - kw + 1) // sw)
    else:
        raise GraphError(f"unknown padding mode {padding!r}")
    return out_h, out_w
