"""Content-addressed fingerprints of computational graphs.

A scheduling service that caches solved schedules needs a key that is
*exactly* as discriminating as the scheduler itself: two graphs may share
a cache entry only if every input the scheduling pipeline consumes is
identical.  For this library that input set is larger than "topology plus
byte sizes" — the embedding hashes node *names* into features and fills
parent slots in *parent insertion order* (see
:mod:`repro.embedding.features`), and the encoder queue follows the
graph's insertion-stable topological order — so the exact fingerprint
covers names, node insertion order, parent order, op types and every
resource attribute.

Two fingerprints are provided:

:func:`graph_fingerprint`
    The cache key.  SHA-256 over a canonical, length-prefixed binary
    serialization of the graph.  Every field is emitted with an explicit
    length or fixed width, so no two distinct graphs serialize to the
    same byte stream (the classic ``"ab"+"c"`` vs ``"a"+"bc"``
    concatenation collision cannot occur); collision resistance then
    reduces to SHA-256's.  Equal fingerprint <=> equal serialization,
    which implies every deterministic scheduler produces bit-identical
    schedules for the two graphs.

:func:`structural_fingerprint`
    An isomorphism-invariant digest that *ignores* node names and
    insertion order: Weisfeiler-Lehman color refinement over
    ``(op_type, param_bytes, output_bytes, macs)``-seeded colors, hashed
    as an unordered multiset.  Isomorphic graphs (same shape and
    attributes under any renaming/reordering) always agree; use it for
    workload analytics and dedup reporting, never as a schedule cache
    key — the scheduler is *not* invariant under renaming.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List

from repro.graphs.dag import ComputationalGraph

#: Bump when the serialization layout changes so stale persisted keys
#: can never alias fresh ones.
FINGERPRINT_VERSION = "repro-graph-fp-v1"


def _hash_str(hasher, text: str) -> None:
    """Length-prefixed UTF-8 write (prefixing prevents concat collisions)."""
    data = text.encode("utf-8")
    hasher.update(struct.pack("<Q", len(data)))
    hasher.update(data)


def _hash_int(hasher, value: int) -> None:
    value = int(value)
    # Arbitrary-precision ints fall back to the length-prefixed string
    # path; the fixed-width fast path covers every realistic byte count.
    if -(2**63) <= value < 2**63:
        hasher.update(b"i")
        hasher.update(struct.pack("<q", value))
    else:
        hasher.update(b"I")
        _hash_str(hasher, str(value))


def _canonical_value(value: object) -> str:
    """Deterministic string form of a free-form attr value.

    Containers are canonicalized recursively (dicts by sorted key) so
    attr equality — not dict insertion order — decides fingerprint
    equality.  The type name is included so ``1`` and ``1.0`` and
    ``True`` stay distinct.
    """
    if isinstance(value, dict):
        items = sorted(
            ((repr(k), _canonical_value(v)) for k, v in value.items()),
            key=lambda kv: kv[0],
        )
        return "dict{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical_value(v) for v in value)
        return f"{type(value).__name__}[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(_canonical_value(v) for v in value))
        return f"{type(value).__name__}{{{inner}}}"
    return f"{type(value).__name__}:{value!r}"


def graph_fingerprint(
    graph: ComputationalGraph, include_attrs: bool = True
) -> str:
    """Exact content fingerprint of ``graph`` (64 hex chars).

    Covers, in canonical order: node count; then per node in insertion
    order its name, op type, ``param_bytes``, ``output_bytes``, ``macs``,
    parent indices in parent insertion order, and (unless
    ``include_attrs=False``) its free-form attrs canonicalized by sorted
    key.  The graph's display ``name`` is deliberately excluded — it
    never reaches any scheduler.

    Equal fingerprints guarantee that every deterministic scheduler in
    this library produces identical schedules for the two graphs, which
    is what makes the fingerprint safe as a schedule-cache key (see
    :class:`repro.service.ScheduleCache`).
    """
    hasher = hashlib.sha256()
    _hash_str(hasher, FINGERPRINT_VERSION)
    _hash_int(hasher, graph.num_nodes)
    index = graph.build_index()
    for name in graph.node_names:
        node = graph.node(name)
        _hash_str(hasher, node.name)
        _hash_str(hasher, node.op_type)
        _hash_int(hasher, node.param_bytes)
        _hash_int(hasher, node.output_bytes)
        _hash_int(hasher, node.macs)
        parents = graph.parents(name)
        _hash_int(hasher, len(parents))
        for parent in parents:
            _hash_int(hasher, index[parent])
        if include_attrs:
            items = sorted(
                ((repr(k), _canonical_value(v)) for k, v in node.attrs.items()),
                key=lambda kv: kv[0],
            )
            _hash_int(hasher, len(items))
            for key, value in items:
                _hash_str(hasher, key)
                _hash_str(hasher, value)
        else:
            _hash_int(hasher, -1)
    return hasher.hexdigest()


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def structural_fingerprint(graph: ComputationalGraph) -> str:
    """Isomorphism-invariant fingerprint (names and order ignored).

    Weisfeiler-Lehman refinement: every node starts with a color derived
    from ``(op_type, param_bytes, output_bytes, macs)`` and is repeatedly
    re-colored with the sorted multisets of its parents' and children's
    colors until the color partition stabilizes (at most ``|V|`` rounds).
    The digest hashes the final color multiset plus the edge-color-pair
    multiset, so any renaming or insertion reordering of the same graph
    agrees.  WL cannot distinguish *every* non-isomorphic pair, but
    differing fingerprints always mean non-isomorphic graphs.
    """
    names = graph.node_names
    colors: Dict[str, str] = {
        name: _digest(
            "wl-seed|"
            + "|".join(
                str(v)
                for v in (
                    graph.node(name).op_type,
                    graph.node(name).param_bytes,
                    graph.node(name).output_bytes,
                    graph.node(name).macs,
                )
            )
        )
        for name in names
    }
    distinct = len(set(colors.values()))
    for _ in range(max(1, graph.num_nodes)):
        colors = {
            name: _digest(
                colors[name]
                + "|P:" + ",".join(sorted(colors[p] for p in graph.parents(name)))
                + "|C:" + ",".join(sorted(colors[c] for c in graph.children(name)))
            )
            for name in names
        }
        refined = len(set(colors.values()))
        if refined == distinct:
            break
        distinct = refined
    node_part: List[str] = sorted(colors.values())
    edge_part: List[str] = sorted(
        f"{colors[u]}->{colors[v]}" for u, v in graph.edges()
    )
    return _digest(
        "wl-final|" + ";".join(node_part) + "|E|" + ";".join(edge_part)
    )


__all__ = [
    "FINGERPRINT_VERSION",
    "graph_fingerprint",
    "structural_fingerprint",
]
