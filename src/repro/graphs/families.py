"""Compute-profile workload families for drift studies.

The synthetic sampler (:mod:`repro.graphs.sampler`) controls *topology*;
online-adaptation studies additionally need control over the **compute
profile**, because the pipeline-latency reward is a statement about
per-stage compute balance.  Two families are provided:

:class:`ComputeUniformFamily`
    DNN-shaped graphs whose operators all carry similar compute (drawn
    from ``compute_ms_range``) and small, uniform parameter/activation
    footprints.  Any balanced split pipelines well — the regime the
    pretrained policy serves comfortably, used as pre-drift traffic.

:class:`AttentionAugmentedFamily`
    The same backbone plus ``num_heads`` *hot attention branches*:
    side-branch operators (named ``mhsa_0 .. mhsa_{H-1}`` — fixed names,
    so their hashed node-ID features are stable across graphs and a
    policy can learn them) that each carry ``head_compute_ms`` of
    compute, an order of magnitude above the backbone.  Pipeline quality
    is now dominated by whether the decode *spreads* the hot heads
    across stages; the ``rho`` packer cannot see compute, so the node
    order — the learned policy — is load-bearing.  This is the drifted
    traffic of the online-adaptation experiment: a workload family the
    shipped checkpoint never trained on, where its learned preferences
    actively misfire.

Both families are deterministic under a seed and share one backbone
generator, so pre- and post-drift graphs differ exactly by the hot
heads and the compute normalization.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs import ops
from repro.graphs.dag import ComputationalGraph, OpNode
from repro.graphs.sampler import SyntheticDAGSampler
from repro.tpu.spec import EdgeTPUSpec, default_spec
from repro.utils.rng import SeedLike, resolve_rng


class ComputeUniformFamily:
    """Uniform-compute DNN-shaped graphs (the pre-drift workload).

    Parameters
    ----------
    num_nodes / degree / chain_bias / merge_fraction:
        Backbone topology knobs, forwarded to
        :class:`~repro.graphs.sampler.SyntheticDAGSampler`.
    compute_ms_range:
        Per-operator compute drawn uniformly from this range (in
        milliseconds on ``spec``'s conv MAC rate).
    param_bytes / output_bytes:
        Uniform per-operator footprints.  Defaults keep every stage far
        under SRAM (no weight streaming) and activations cheap to move,
        so the steady-state period is compute-bound — the regime where
        the pipeline-efficiency reward is tight.
    spec:
        Device spec used to convert milliseconds to MACs.
    seed:
        Seed or generator for topology and compute draws.
    """

    def __init__(
        self,
        num_nodes: int = 24,
        degree: int = 3,
        seed: SeedLike = None,
        compute_ms_range: Tuple[float, float] = (1.0, 2.0),
        param_bytes: int = 16384,
        output_bytes: int = 32768,
        chain_bias: float = 0.75,
        merge_fraction: float = 0.3,
        spec: Optional[EdgeTPUSpec] = None,
    ) -> None:
        if compute_ms_range[0] <= 0 or compute_ms_range[0] > compute_ms_range[1]:
            raise GraphError("compute_ms_range must be positive and ordered")
        if param_bytes < 0 or output_bytes <= 0:
            raise GraphError("param_bytes must be >= 0 and output_bytes > 0")
        self.spec = spec or default_spec()
        self.compute_ms_range = compute_ms_range
        self.param_bytes = param_bytes
        self.output_bytes = output_bytes
        self._rng = resolve_rng(seed)
        self._backbone = SyntheticDAGSampler(
            num_nodes=num_nodes,
            degree=degree,
            seed=self._rng,
            chain_bias=chain_bias,
            merge_fraction=merge_fraction,
        )
        self._macs_per_ms = self.spec.sustained_macs_per_s(ops.CONV2D) / 1e3

    # ------------------------------------------------------------------
    def _compute_macs(self) -> int:
        low, high = self.compute_ms_range
        return int(self._macs_per_ms * self._rng.uniform(low, high))

    def sample(self) -> ComputationalGraph:
        """Draw one graph with normalized compute/memory attributes."""
        base = self._backbone.sample()
        graph = ComputationalGraph(name=base.name)
        for name in base.node_names:
            is_input = base.node(name).op_type == ops.INPUT
            graph.add_node(
                OpNode(
                    name=name,
                    op_type=ops.INPUT if is_input else ops.CONV2D,
                    param_bytes=0 if is_input else self.param_bytes,
                    output_bytes=self.output_bytes,
                    macs=0 if is_input else self._compute_macs(),
                )
            )
        for parent, child in base.edges():
            graph.add_edge(parent, child)
        return self._augment(graph)

    def sample_batch(self, count: int) -> list:
        return [self.sample() for _ in range(count)]

    def _augment(self, graph: ComputationalGraph) -> ComputationalGraph:
        """Hook for subclasses; the uniform family returns as-is."""
        return graph


class AttentionAugmentedFamily(ComputeUniformFamily):
    """Uniform backbone plus hot attention-head branches (drift traffic).

    Each sampled graph gains ``num_heads`` childless side-branch nodes
    ``mhsa_0 .. mhsa_{H-1}`` anchored at evenly spaced backbone depths.
    Their compute (``head_compute_ms``) dominates the backbone's, so the
    achievable pipeline period requires spreading them across stages —
    a property of the *decode order* (the packer splits by parameter
    bytes and is blind to compute).  Head names are fixed across graphs:
    their hashed node-ID embedding features are the signature an adapted
    policy learns.
    """

    def __init__(
        self,
        num_nodes: int = 24,
        degree: int = 3,
        seed: SeedLike = None,
        num_heads: int = 4,
        head_compute_ms: float = 30.0,
        head_op_name: str = "mhsa",
        **kwargs: object,
    ) -> None:
        super().__init__(num_nodes=num_nodes, degree=degree, seed=seed, **kwargs)
        if num_heads < 1:
            raise GraphError("num_heads must be >= 1")
        if head_compute_ms <= 0:
            raise GraphError("head_compute_ms must be positive")
        self.num_heads = num_heads
        self.head_compute_ms = head_compute_ms
        self.head_op_name = head_op_name

    def _augment(self, graph: ComputationalGraph) -> ComputationalGraph:
        backbone = list(graph.node_names)
        anchor_positions = np.linspace(
            1, len(backbone) - 2, self.num_heads
        ).astype(int)
        head_macs = int(self._macs_per_ms * self.head_compute_ms)
        for head, position in enumerate(anchor_positions):
            name = f"{self.head_op_name}_{head}"
            graph.add_node(
                OpNode(
                    name=name,
                    op_type=ops.CONV2D,
                    param_bytes=self.param_bytes,
                    output_bytes=self.output_bytes,
                    macs=head_macs,
                )
            )
            graph.add_edge(backbone[int(position)], name)
        return graph


__all__ = ["AttentionAugmentedFamily", "ComputeUniformFamily"]
