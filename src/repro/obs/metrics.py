"""Thread-safe metrics registry: counters, gauges, streaming histograms.

The registry is the single source of truth for every counter the serving
stack maintains — the ``*Stats`` dataclasses in ``repro.service`` are
point-in-time *views* over these instruments, never parallel bookkeeping,
so a stats snapshot and a scraped exposition can't disagree.

Instruments are identified by ``(name, labels)``; requesting the same
pair twice returns the same instrument, so independent layers (e.g. a
shard and its parent tier) can safely resolve handles to shared series.
Exposition comes in two formats:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text format
  (``# TYPE`` headers, ``{label="v"}`` series, ``_bucket``/``_sum``/
  ``_count`` histogram expansion with cumulative ``le`` buckets);
* :meth:`MetricsRegistry.to_json` — a JSON-native dict mirroring the
  same numbers for machine consumption.

Histograms use fixed upper bounds with exact per-bucket counts (nothing
is sampled or decayed).  Percentiles interpolate linearly inside the
owning bucket and clamp to the observed ``[min, max]``, so a
single-sample histogram reports that exact sample for every quantile.
Snapshots of histograms with identical bounds merge losslessly —
this is what lets ``ShardedServiceStats`` pool per-shard latency
distributions without shipping raw sample windows around
(percentiles don't compose; bucket counts do).
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_prometheus_text",
]

LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram bounds (seconds): log-spaced from 10 µs to 30 s.
#: Wide enough for cache hits (~µs) through cold ILP solves (~s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(base * 10.0 ** exp, 12)
    for exp in range(-5, 1)
    for base in (1.0, 2.5, 5.0)
) + (10.0, 30.0)


def _freeze_labels(labels: Mapping[str, str]) -> LabelSet:
    frozen = []
    for key in sorted(labels):
        value = labels[key]
        if not isinstance(key, str) or not key:
            raise ValueError(f"label names must be non-empty strings: {key!r}")
        frozen.append((key, str(value)))
    return tuple(frozen)


class Counter:
    """Monotonic counter. ``inc`` never accepts negative amounts."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, pool sizes)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass
class HistogramSnapshot:
    """Immutable histogram state; supports lossless same-bucket merging."""

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]  # len(bounds) + 1; last bucket is +Inf
    count: int
    sum: float
    min: float  # +inf when empty
    max: float  # -inf when empty

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts)
            ),
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @staticmethod
    def merged(
        snapshots: Iterable["HistogramSnapshot"],
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> "HistogramSnapshot":
        """Merge any number of snapshots (empty iterable -> empty hist)."""
        result = HistogramSnapshot(
            bounds=bounds,
            counts=tuple(0 for _ in range(len(bounds) + 1)),
            count=0,
            sum=0.0,
            min=math.inf,
            max=-math.inf,
        )
        for snap in snapshots:
            result = result.merge(snap)
        return result

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact-count bucket percentile, interpolated inside the bucket.

        Raises ``ValueError`` on an empty histogram, mirroring
        :func:`repro.utils.stats.percentile` on an empty window.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100]: {q}")
        if self.count == 0:
            raise ValueError("percentile of empty histogram")
        if self.count == 1 or self.min == self.max:
            return self.min
        target = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lo = self.bounds[index - 1] if index > 0 else 0.0
            hi = (
                self.bounds[index]
                if index < len(self.bounds)
                else self.max
            )
            if cumulative + bucket_count >= target:
                # Linear interpolation within the owning bucket.
                within = (target - cumulative) / bucket_count
                value = lo + (hi - lo) * within
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max


class Histogram:
    """Streaming fixed-bucket histogram with exact per-bucket counts."""

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_count",
                 "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        sorted_bounds = tuple(float(b) for b in bounds)
        if not sorted_bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(sorted_bounds) != sorted(set(sorted_bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = sorted_bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(sorted_bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket_index(self, value: float) -> int:
        # A value exactly on a bound counts in that bucket (le semantics).
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                bounds=self.bounds,
                counts=tuple(self._counts),
                count=self._count,
                sum=self._sum,
                min=self._min,
                max=self._max,
            )

    def percentile(self, q: float) -> float:
        return self.snapshot().percentile(q)


_Key = Tuple[str, str, LabelSet]  # (kind, name, labels)


class MetricsRegistry:
    """Get-or-create instrument store with snapshot/exposition support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[_Key, object] = {}
        self._help: Dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: Mapping[str, str],
             factory):
        frozen = _freeze_labels(labels)
        key = (kind, name, frozen)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                for other_kind, other_name, _ in self._instruments:
                    if other_name == name and other_kind != kind:
                        raise ValueError(
                            f"metric {name!r} already registered as "
                            f"{other_kind}, not {kind}"
                        )
                instrument = factory(name, frozen)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        if help:
            self._help.setdefault(name, help)
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        if help:
            self._help.setdefault(name, help)
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        if help:
            self._help.setdefault(name, help)
        return self._get(
            "histogram",
            name,
            labels,
            lambda n, frozen: Histogram(n, frozen, buckets),
        )

    # -- aggregation helpers -------------------------------------------

    def counter_total(self, name: str, **labels: str) -> int:
        """Sum of a counter across every label set matching ``labels``."""
        want = set(_freeze_labels(labels))
        total = 0
        with self._lock:
            instruments = list(self._instruments.items())
        for (kind, inst_name, inst_labels), instrument in instruments:
            if kind == "counter" and inst_name == name:
                if want <= set(inst_labels):
                    total += instrument.value
        return total

    def histogram_merged(self, name: str, **labels: str) -> HistogramSnapshot:
        """Merged snapshot of a histogram across matching label sets."""
        want = set(_freeze_labels(labels))
        snaps = []
        bounds = DEFAULT_LATENCY_BUCKETS
        with self._lock:
            instruments = list(self._instruments.items())
        for (kind, inst_name, inst_labels), instrument in instruments:
            if kind == "histogram" and inst_name == name:
                if want <= set(inst_labels):
                    snaps.append(instrument.snapshot())
                    bounds = instrument.bounds
        return HistogramSnapshot.merged(snaps, bounds=bounds)

    # -- exposition ----------------------------------------------------

    def snapshot(self) -> List[dict]:
        """Point-in-time state of every instrument, as plain dicts."""
        with self._lock:
            instruments = sorted(
                self._instruments.items(),
                key=lambda item: (item[0][1], item[0][0], item[0][2]),
            )
        rows = []
        for (kind, name, labels), instrument in instruments:
            row = {"kind": kind, "name": name, "labels": dict(labels)}
            if kind in ("counter", "gauge"):
                row["value"] = instrument.value
            else:
                snap = instrument.snapshot()
                row.update(
                    count=snap.count,
                    sum=snap.sum,
                    min=None if snap.count == 0 else snap.min,
                    max=None if snap.count == 0 else snap.max,
                    buckets=[
                        {"le": le, "count": c}
                        for le, c in zip(
                            list(snap.bounds) + [math.inf], snap.counts
                        )
                    ],
                )
            rows.append(row)
        return rows

    def to_json(self) -> dict:
        """JSON-native export mirroring the Prometheus exposition."""
        metrics = []
        for row in self.snapshot():
            clean = dict(row)
            if "buckets" in clean:
                clean["buckets"] = [
                    {
                        "le": "+Inf" if math.isinf(b["le"]) else b["le"],
                        "count": b["count"],
                    }
                    for b in clean["buckets"]
                ]
            metrics.append(clean)
        return {"metrics": metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        by_name: Dict[Tuple[str, str], List[dict]] = {}
        for row in self.snapshot():
            by_name.setdefault((row["name"], row["kind"]), []).append(row)
        lines: List[str] = []
        for (name, kind), rows in sorted(by_name.items()):
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for row in rows:
                labels = row["labels"]
                if kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_render_value(row['value'])}"
                    )
                    continue
                cumulative = 0
                for bucket in row["buckets"]:
                    cumulative += bucket["count"]
                    le = (
                        "+Inf"
                        if math.isinf(bucket["le"])
                        else _render_value(bucket["le"])
                    )
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_render_value(row['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {row['count']}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, float]]:
    """Parse Prometheus text exposition back into ``{series: value}``.

    Series keys look like ``name{a="b"}`` (label-sorted).  Used by the CI
    smoke step and the round-trip tests to prove the exposition both
    parses and carries the same numbers as the stats views.  Raises
    ``ValueError`` on any malformed sample line.
    """
    out: Dict[str, Dict[str, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        # name{labels} value  |  name value
        if "}" in line:
            series, _, value_text = line.rpartition(" ")
            name, _, label_text = series.partition("{")
            if not label_text.endswith("}"):
                raise ValueError(f"malformed sample line: {raw!r}")
            labels = {}
            body = label_text[:-1]
            if body:
                for part in _split_labels(body):
                    key, _, val = part.partition("=")
                    if not val.startswith('"') or not val.endswith('"'):
                        raise ValueError(f"malformed label in: {raw!r}")
                    labels[key] = (
                        val[1:-1]
                        .replace("\\n", "\n")
                        .replace('\\"', '"')
                        .replace("\\\\", "\\")
                    )
        else:
            name, _, value_text = line.rpartition(" ")
            labels = {}
        # A metric name never carries brace/quote characters — their
        # presence means an unclosed label block slipped through.
        if not name or any(c in name for c in '{}"'):
            raise ValueError(f"malformed sample line: {raw!r}")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(f"non-numeric sample in: {raw!r}") from exc
        key = name + _render_labels(labels)
        out.setdefault(name, {})[key] = value
    return out


def _split_labels(body: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def dumps_json(registry: MetricsRegistry) -> str:
    """Compact JSON string of :meth:`MetricsRegistry.to_json`."""
    return json.dumps(registry.to_json(), sort_keys=True)
