"""Unified observability for the RESPECT serving stack.

Three pieces, one import surface:

* :mod:`repro.obs.metrics` — thread-safe registry of labeled counters,
  gauges and fixed-bucket streaming histograms, with Prometheus text
  exposition and JSON export;
* :mod:`repro.obs.trace` — per-request span trees with sampling, a
  JSONL exporter, and cross-process propagation via the decode wire
  frames;
* :mod:`repro.obs.telemetry` — the ``Telemetry`` facade that threads
  through ``SchedulingService`` / ``ShardedSchedulingService`` /
  ``DecodeWorkerPool`` / store / cluster / online constructors as
  ``telemetry=``.

See the README "Observability" section for the end-to-end tour and
``examples/trace_a_request.py`` for a printed span tree.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    NOOP_SPAN,
    NoopSpan,
    Span,
    Tracer,
    build_trace_tree,
    current_span,
    format_span_tree,
    new_trace_id,
    use_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_prometheus_text",
    "Telemetry",
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "current_span",
    "use_span",
    "JsonlSpanExporter",
    "InMemorySpanExporter",
    "build_trace_tree",
    "format_span_tree",
    "new_trace_id",
]
