"""Structured per-request tracing: span trees, sampling, JSONL export.

A trace is a tree of spans sharing one ``trace_id``.  Spans carry wall
clock ``start_s``/``end_s`` (``time.time()`` — comparable across the
decode-worker process boundary), attributes, and timestamped events.
The active span is tracked per-thread so deep layers (e.g. the decode
pool, which never sees a ``Telemetry`` object in its constructor) can
attach children via :func:`current_span` without plumbing changes.

Span context crosses the ``DecodeWorkerPool`` spawn boundary as a
``{"trace_id", "span_id"}`` dict inside the versioned wire frame; the
worker builds plain span-record dicts (it has no tracer) and ships them
back in the decode-response frame, where :meth:`Tracer.ingest` replays
them into the exporter.  Simulated-clock layers (the fleet DES) emit the
same record schema via :meth:`Tracer.record_span` with explicit times.

Sampling is decided once per trace at :meth:`Tracer.start_trace`; an
unsampled trace yields the falsy :data:`NOOP_SPAN`, whose every method
is a no-op, so instrumented code never branches on sampling itself.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "current_span",
    "use_span",
    "JsonlSpanExporter",
    "InMemorySpanExporter",
    "build_trace_tree",
    "format_span_tree",
    "new_trace_id",
]

_ACTIVE = threading.local()

#: Id source: a PRNG seeded from the OS once at import beats an
#: ``os.urandom`` syscall per span on the serving fast path (~5x); ids
#: only need uniqueness, not unpredictability.  ``getrandbits`` runs in
#: C under the GIL, so concurrent submitters never interleave state.
_ID_RAND = random.Random()


def _new_id() -> str:
    return "%016x" % _ID_RAND.getrandbits(64)


def new_trace_id() -> str:
    """Fresh trace id for record-based traces (e.g. simulated clocks)."""
    return _new_id()


def current_span() -> Optional["Span"]:
    """The innermost active *real* span on this thread, if any."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


class _SpanActivation:
    """Context manager that (de)activates a span WITHOUT ending it."""

    __slots__ = ("_span",)

    def __init__(self, span: "Span"):
        self._span = span

    def __enter__(self) -> "Span":
        stack = getattr(_ACTIVE, "stack", None)
        if stack is None:
            stack = _ACTIVE.stack = []
        stack.append(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        stack = getattr(_ACTIVE, "stack", None)
        if stack and stack[-1] is self._span:
            stack.pop()


class NoopSpan:
    """Falsy stand-in used for unsampled traces; every method no-ops."""

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    tracer: Optional["Tracer"] = None

    def __bool__(self) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> "NoopSpan":
        return self

    def add_event(self, name: str, **attrs: Any) -> "NoopSpan":
        return self

    def child(self, name: str, **attrs: Any) -> "NoopSpan":
        return self

    def end(self, status: str = "ok") -> None:
        pass

    def activate(self) -> "_NoopActivation":
        return _NOOP_ACTIVATION

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NoopActivation:
    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc) -> None:
        pass


NOOP_SPAN = NoopSpan()
_NOOP_ACTIVATION = _NoopActivation()


class Span:
    """One timed operation inside a trace.

    ``end()`` exports the span record exactly once; entering the span as
    a context manager activates it on the current thread *and* ends it
    on exit.  Use :meth:`activate` to set the thread-local parent
    without tying the span's lifetime to the block (e.g. a root span
    that ends when the request future resolves on another thread).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "tracer",
        "start_s", "end_s", "status", "attrs", "events", "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        start_s: Optional[float] = None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_s = time.time() if start_s is None else float(start_s)
        self.end_s: Optional[float] = None
        self.status = "ok"
        # Take ownership of a dict passed in (always a fresh kwargs
        # dict from the tracer entry points) — the serving fast path
        # creates spans per sampled request, so copies matter.
        self.attrs: Dict[str, Any] = (
            attrs if type(attrs) is dict else dict(attrs) if attrs else {}
        )
        self.events: List[dict] = []
        self._ended = False

    def __bool__(self) -> bool:
        return True

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def add_event(self, name: str, **attrs: Any) -> "Span":
        event = {"name": name, "time_s": time.time()}
        if attrs:
            event["attrs"] = attrs
        self.events.append(event)
        return self

    def child(self, name: str, **attrs: Any) -> "Span":
        return self.tracer.span(name, parent=self, **attrs)

    def end(self, status: Optional[str] = None,
            end_s: Optional[float] = None) -> None:
        if self._ended:
            return
        self._ended = True
        if status is not None:
            self.status = status
        self.end_s = time.time() if end_s is None else float(end_s)
        self.tracer._export(self.to_record())

    def activate(self) -> _SpanActivation:
        return _SpanActivation(self)

    def __enter__(self) -> "Span":
        # Entering a span activates it on this thread AND ends it on
        # exit (contrast with ``activate()``, which only nests).
        stack = getattr(_ACTIVE, "stack", None)
        if stack is None:
            stack = _ACTIVE.stack = []
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = getattr(_ACTIVE, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.status = "error"
            self.set_attr("error", repr(exc))
        self.end()

    def to_record(self) -> dict:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        return record


def use_span(span) -> Any:
    """Activate ``span`` (real or noop) for a ``with`` block, no end."""
    return span.activate()


class JsonlSpanExporter:
    """Appends one JSON object per finished span to a ``.jsonl`` file."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def export(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def read_records(self) -> List[dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return [json.loads(line) for line in handle if line.strip()]
        except FileNotFoundError:
            return []


class InMemorySpanExporter:
    """Collects span records in memory; the test/example workhorse."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[dict] = []

    def export(self, record: dict) -> None:
        # No defensive copy: every caller (Span.to_record, record_span,
        # ingest) hands over a freshly built dict it never mutates again.
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> List[dict]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def trace_ids(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            tid = record.get("trace_id")
            if tid and tid not in seen:
                seen.append(tid)
        return seen

    def trace(self, trace_id: str) -> List[dict]:
        return [
            r for r in self.records if r.get("trace_id") == trace_id
        ]


class Tracer:
    """Creates spans, decides sampling, and fans records to an exporter.

    ``sample_rate`` applies per *trace* (root creation); children of a
    sampled root are always recorded.  ``seed`` makes fractional
    sampling deterministic for tests.
    """

    def __init__(
        self,
        exporter=None,
        sample_rate: float = 1.0,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1]: {sample_rate}"
            )
        self.exporter = exporter
        self.sample_rate = sample_rate
        # No lock around the PRNG: ``Random.random`` runs in C under
        # the GIL, so concurrent sampling decisions never corrupt state
        # (their interleaving order is irrelevant), and the serving fast
        # path makes one decision per request.
        self._rand = random.Random(seed)

    @property
    def enabled(self) -> bool:
        return self.exporter is not None and self.sample_rate > 0.0

    def _export(self, record: dict) -> None:
        exporter = self.exporter
        if exporter is not None:
            exporter.export(record)

    def sample(self) -> bool:
        """One per-trace sampling decision, separated from span creation.

        :meth:`start_trace` makes this decision implicitly.  Two kinds
        of caller make it explicitly instead: layers that emit
        already-completed records under their own clock (the fleet DES),
        and hot serve paths that only want to pay for building root-span
        attributes after a positive decision (``sample()`` then
        :meth:`root_span`).
        """
        rate = self.sample_rate
        if self.exporter is None or rate <= 0.0:
            return False
        return rate >= 1.0 or self._rand.random() < rate

    def root_span(self, name: str, **attrs: Any) -> "Span":
        """Root span for a trace already chosen by :meth:`sample`.

        No sampling decision is made here — calling it without a prior
        positive ``sample()`` bypasses sampling entirely.
        """
        return Span(self, name, trace_id=_new_id(), attrs=attrs)

    def start_trace(self, name: str, **attrs: Any):
        """Root span of a new trace, or :data:`NOOP_SPAN` if unsampled."""
        rate = self.sample_rate
        if self.exporter is None or rate <= 0.0:
            return NOOP_SPAN
        if rate < 1.0 and self._rand.random() >= rate:
            return NOOP_SPAN
        return Span(self, name, trace_id=_new_id(), attrs=attrs)

    def span(self, name: str, parent=None, **attrs: Any):
        """Child span of ``parent`` (a Span or a context-like object)."""
        if parent is None:
            parent = current_span()
        if not parent or parent.trace_id is None:
            return NOOP_SPAN
        return Span(
            self,
            name,
            trace_id=parent.trace_id,
            parent_id=parent.span_id,
            attrs=attrs,
        )

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        trace_id: str,
        parent_id: Optional[str] = None,
        status: str = "ok",
        attrs: Optional[Mapping[str, Any]] = None,
        events: Optional[List[dict]] = None,
    ) -> dict:
        """Record a completed span with explicit timing.

        This is how mirrored batch spans and simulated-clock layers (the
        fleet DES) emit records: the caller owns the clock.
        """
        record = {
            "name": name,
            "trace_id": trace_id,
            "span_id": _new_id(),
            "parent_id": parent_id,
            "start_s": float(start_s),
            "end_s": float(end_s),
            "status": status,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        if events:
            record["events"] = list(events)
        self._export(record)
        return record

    def ingest(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Replay externally-built span records (e.g. worker-shipped).

        Records missing the required id/timing fields are dropped, not
        raised — a misbehaving worker must not break the serving path.
        Returns the number of records accepted.
        """
        accepted = 0
        for record in records or ():
            if not isinstance(record, Mapping):
                continue
            if not record.get("trace_id") or not record.get("span_id"):
                continue
            if "start_s" not in record or "end_s" not in record:
                continue
            self._export(dict(record))
            accepted += 1
        return accepted


def build_trace_tree(records: Iterable[Mapping[str, Any]]) -> List[dict]:
    """Nest flat span records into root trees (children sorted by start).

    Spans whose ``parent_id`` is unknown are treated as roots so partial
    traces (e.g. a crashed worker's surviving spans) still render.
    """
    nodes = {
        r["span_id"]: {**dict(r), "children": []}
        for r in records
        if r.get("span_id")
    }
    roots = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def _sort(items):
        items.sort(key=lambda n: (n.get("start_s") or 0.0, n["span_id"]))
        for item in items:
            _sort(item["children"])
    _sort(roots)
    return roots


def format_span_tree(records: Iterable[Mapping[str, Any]]) -> str:
    """Human-readable indented rendering of a span tree."""
    lines: List[str] = []

    def _walk(node: dict, depth: int) -> None:
        start = node.get("start_s") or 0.0
        end = node.get("end_s") or start
        duration_ms = (end - start) * 1e3
        attrs = node.get("attrs") or {}
        attr_text = " ".join(
            f"{k}={v}" for k, v in sorted(attrs.items())
        )
        status = node.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        lines.append(
            "  " * depth
            + f"{node['name']}  {duration_ms:.3f} ms{flag}"
            + (f"  ({attr_text})" if attr_text else "")
        )
        for event in node.get("events") or []:
            lines.append(
                "  " * (depth + 1) + f"* event: {event.get('name')}"
            )
        for child in node.get("children", []):
            _walk(child, depth + 1)

    for root in build_trace_tree(records):
        _walk(root, 0)
    return "\n".join(lines)
