"""The ``Telemetry`` facade threaded through serving-stack constructors.

One object bundles the two halves of the subsystem:

* a :class:`~repro.obs.metrics.MetricsRegistry` — **always real**, even
  for the default facade, because the ``*Stats`` dataclasses are views
  over registry instruments and must keep working when nobody asked for
  observability.  Counter upkeep replaces the legacy ad-hoc ints the
  services used to maintain, so the default facade adds no bookkeeping
  the stack wasn't already doing (the observability benchmark pins this
  at ~0% overhead);
* an optional :class:`~repro.obs.trace.Tracer` — ``None`` by default, in
  which case every trace entry point returns the falsy
  :data:`~repro.obs.trace.NOOP_SPAN` and the request path never builds
  a span object.

``child(**labels)`` derives a facade sharing the registry and tracer
but stamping extra constant labels on every instrument it resolves —
this is how ``ShardedSchedulingService`` gives each shard its own
``shard="N"`` series while scraping stays a single registry-wide call.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NOOP_SPAN, Tracer, current_span

__all__ = ["Telemetry"]


class Telemetry:
    """Facade over one metrics registry plus (optionally) one tracer."""

    __slots__ = ("registry", "tracer", "labels")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.labels = dict(labels) if labels else {}

    # -- construction helpers ------------------------------------------

    @classmethod
    def default(cls) -> "Telemetry":
        """Metrics-only facade: private registry, tracing off.

        This is what constructors fall back to when ``telemetry=`` is
        not passed — stats views keep working, tracing costs nothing.
        """
        return cls()

    @classmethod
    def with_tracing(
        cls,
        exporter,
        sample_rate: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        seed: Optional[int] = None,
    ) -> "Telemetry":
        """Facade with sampled tracing into ``exporter``."""
        return cls(
            registry=registry,
            tracer=Tracer(
                exporter=exporter, sample_rate=sample_rate, seed=seed
            ),
        )

    def child(self, **labels: str) -> "Telemetry":
        """Derived facade with extra constant labels, shared backends."""
        merged = dict(self.labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return Telemetry(
            registry=self.registry, tracer=self.tracer, labels=merged
        )

    # -- metrics -------------------------------------------------------

    def _merge(self, labels: Mapping[str, str]) -> Mapping[str, str]:
        if not self.labels:
            return labels
        merged = dict(self.labels)
        merged.update(labels)
        return merged

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self.registry.counter(name, help=help, **self._merge(labels))

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self.registry.gauge(name, help=help, **self._merge(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self.registry.histogram(
            name, help=help, buckets=buckets, **self._merge(labels)
        )

    # -- tracing -------------------------------------------------------

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    def start_trace(self, name: str, **attrs: Any):
        """Root span for a new request trace (NOOP when tracing is off)."""
        if self.tracer is None:
            return NOOP_SPAN
        span = self.tracer.start_trace(name, **attrs)
        if span and self.labels:
            for key, value in self.labels.items():
                span.set_attr(key, value)
        return span

    def root_span(self, name: str, **attrs: Any):
        """Root span after a positive ``tracer.sample()`` decision.

        The hot-path split of :meth:`start_trace`: serve paths call
        ``tracer.sample()`` first (an attribute read and at most one
        PRNG draw) and only build the root span's attributes — the
        expensive part of rooting a trace — for sampled requests.
        """
        tracer = self.tracer
        if tracer is None:
            return NOOP_SPAN
        span = tracer.root_span(name, **attrs)
        if self.labels:
            for key, value in self.labels.items():
                span.set_attr(key, value)
        return span

    def span(self, name: str, parent=None, **attrs: Any):
        """Child span of ``parent`` (default: this thread's active span)."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.span(name, parent=parent, **attrs)

    def trace_or_current(self, name: str, **attrs: Any):
        """Join the active span's trace, or start a fresh sampled trace.

        Returns ``(span, started)`` where ``started`` says whether this
        call created a root (and therefore owns ending it).  This is the
        entry-point idiom: ``SchedulingService.submit`` joins the
        sharded tier's request span when routed through it, but roots
        its own trace when used standalone.
        """
        active = current_span()
        if active is not None:
            return active, False
        return self.start_trace(name, **attrs), True
