"""The end-to-end RESPECT scheduler.

Wraps a trained pointer-network policy into the same scheduler interface
as every baseline: embed the graph (Step 2 of Fig. 1a), greedily decode a
node sequence (Step 3), pack it into stages with ``rho`` and apply the
deterministic post-inference processing (Step 4).  The measured
``solve_time`` covers this whole pipeline — it is the quantity Fig. 3
compares against the compiler and the ILP.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.embedding.features import EmbeddingConfig
from repro.embedding.queue import EncoderQueue, build_encoder_queue, pad_queues
from repro.errors import SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.rl.checkpoints import (
    DEFAULT_CHECKPOINT,
    PRETRAINED_DIR,
    ensure_pretrained,
    load_checkpoint,
    save_checkpoint,
)
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.scheduling.postprocess import postprocess_schedule
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.scheduling.sequence import normalize_stage_counts, pack_sequence
from repro.utils.timing import Timer


def save_policy(policy: PointerNetworkPolicy, directory, name: str) -> None:
    """Persist ``policy`` as ``<dir>/<name>.npz`` + ``<name>.json``.

    Thin wrapper over :func:`repro.rl.checkpoints.save_checkpoint`, which
    also writes versioned metadata into the JSON sidecar.
    """
    save_checkpoint(policy, directory, name)


def load_policy(directory, name: str) -> PointerNetworkPolicy:
    """Load a checkpoint written by :func:`save_policy`.

    Delegates to :func:`repro.rl.checkpoints.load_checkpoint`: the npz
    keys and shapes are validated against the JSON sidecar, so corrupt
    or mismatched artifacts raise :class:`CheckpointError` with a clear
    message instead of a deep numpy error.
    """
    return load_checkpoint(directory, name)


def load_pretrained_policy(name: str = DEFAULT_CHECKPOINT) -> PointerNetworkPolicy:
    """Load a pretrained checkpoint, training it on first use if missing.

    The repository ships ``respect_small`` — trained with the paper's
    synthetic-only recipe at CPU scale — under ``repro/rl/pretrained``.
    When the named artifact is absent (an unusual checkout, or a name
    that is registered but not shipped), the lookup falls back to the
    user cache and finally to *deterministic retraining* from the name's
    registered recipe via :func:`repro.rl.checkpoints.ensure_pretrained`;
    the regenerated artifact is cached so the cost is paid once.  Use
    ``scripts/regenerate_checkpoints.py`` to rebuild the shipped files,
    or ``examples/train_respect.py`` to scale the recipe up.
    """
    return ensure_pretrained(name)


class RespectScheduler:
    """RL-based scheduler: embedding -> PtrNet -> ``rho`` -> post-processing.

    Parameters
    ----------
    policy:
        A trained :class:`PointerNetworkPolicy`; when omitted the shipped
        pretrained checkpoint is loaded (regenerated deterministically on
        first use if the artifact is missing — see
        :func:`repro.rl.checkpoints.ensure_pretrained`).
    embedding_config:
        Must match the configuration the policy was trained with (the
        feature dimension is validated).
    budget_slack:
        ``rho`` packing budget multiplier; ``None`` (default) lets the
        packer binary-search the minimal feasible budget for the decoded
        order.
    enforce_siblings:
        Apply the Edge TPU sibling-stage rule during post-processing.
    constrain_topological:
        Restrict decoding to schedulable nodes (all parents picked).
        Decoded orders are then valid topological orders, so the
        post-inference dependency repair is a no-op; disable to study
        the unconstrained decoder (the post-processing ablation).
    use_vectorized_decode:
        Route greedy inference through
        :meth:`PointerNetworkPolicy.greedy_decode` (hoisted GEMMs,
        cacheless attention) instead of the general ``forward`` unroll.
        Both paths are bit-identical — this knob exists so benchmarks can
        attribute the vectorization win separately; it is deliberately
        *excluded* from :meth:`options_fingerprint` because it never
        changes an output.
    """

    method_name = "respect"

    def __init__(
        self,
        policy: Optional[PointerNetworkPolicy] = None,
        embedding_config: Optional[EmbeddingConfig] = None,
        budget_slack: Optional[float] = None,
        enforce_siblings: bool = False,
        constrain_topological: bool = True,
        use_vectorized_decode: bool = True,
    ) -> None:
        if embedding_config is None:
            embedding_config = EmbeddingConfig()
        self.policy = policy if policy is not None else ensure_pretrained()
        if self.policy.feature_dim != embedding_config.feature_dim:
            raise SchedulingError(
                f"policy expects feature dim {self.policy.feature_dim} but the "
                f"embedding config produces {embedding_config.feature_dim}"
            )
        # Inference-only float32 clone: ~2x faster greedy decoding with no
        # effect on the (float64) training policy the caller handed in.
        self._inference_policy = PointerNetworkPolicy(
            feature_dim=self.policy.feature_dim,
            hidden_size=self.policy.hidden_size,
            logit_clip=self.policy.logit_clip,
        )
        self._inference_policy.load_state_dict(self.policy.state_dict())
        self._inference_policy.cast(np.float32)
        self.embedding_config = embedding_config
        self.budget_slack = budget_slack
        self.enforce_siblings = enforce_siblings
        self.constrain_topological = constrain_topological
        self.use_vectorized_decode = use_vectorized_decode
        self._options_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def inference_policy(self) -> PointerNetworkPolicy:
        """The frozen float32 clone greedy decoding actually runs on.

        This — not the live ``policy`` the caller handed in, which may
        keep training afterwards — is what :meth:`options_fingerprint`
        hashes and what decode worker processes must load to stay
        bit-identical with the in-process path.
        """
        return self._inference_policy

    def decode_config(self) -> dict:
        """Everything besides the weights a worker needs to rebuild this
        scheduler's decode behavior (see :mod:`repro.service.workers`).

        The embedding configuration is expanded field by field so the
        dict is plain-JSON serializable into a checkpoint sidecar.
        """
        from dataclasses import asdict

        return {
            "embedding": asdict(self.embedding_config),
            "budget_slack": self.budget_slack,
            "enforce_siblings": self.enforce_siblings,
            "constrain_topological": self.constrain_topological,
            "use_vectorized_decode": self.use_vectorized_decode,
            "options_fingerprint": self.options_fingerprint(),
        }

    def _greedy_rollout(self, features, precedence, lengths=None):
        """One greedy unroll via the configured decode implementation."""
        if self.use_vectorized_decode:
            return self._inference_policy.greedy_decode(
                features, precedence=precedence, lengths=lengths
            )
        return self._inference_policy.forward(
            features,
            mode="greedy",
            precedence=precedence,
            lengths=lengths,
            keep_caches=False,
        )

    # ------------------------------------------------------------------
    def options_fingerprint(self) -> str:
        """Stable digest of everything besides the graph that shapes output.

        Covers the packer/post-processing options, the (frozen) embedding
        configuration and the *policy weights*, so the scheduling service
        (:class:`repro.service.SchedulingService`) can safely share one
        :class:`~repro.service.ScheduleCache` across scheduler instances:
        two ``RespectScheduler``\\ s collide on a cache key only when they
        are guaranteed to produce bit-identical schedules.  Computed once
        and memoized (hashing the weights is O(model size)).
        """
        if self._options_fingerprint is None:
            hasher = hashlib.sha256()
            for part in (
                "respect-options-v1",
                self.method_name,
                repr(self.budget_slack),
                repr(self.enforce_siblings),
                repr(self.constrain_topological),
                repr(self.embedding_config),
                # Architecture + logit clipping shape the greedy argmax
                # beyond what the weight arrays alone capture.
                repr(sorted(self._inference_policy.config_dict().items())),
            ):
                hasher.update(part.encode("utf-8"))
                hasher.update(b"\x00")
            # Hash the frozen float32 inference clone — the weights the
            # decode actually uses — not the caller's live training
            # policy, which may drift after construction.
            state = self._inference_policy.state_dict()
            for key in sorted(state):
                array = np.ascontiguousarray(state[key])
                hasher.update(key.encode("utf-8"))
                hasher.update(str(array.dtype).encode("utf-8"))
                hasher.update(repr(array.shape).encode("utf-8"))
                hasher.update(array.tobytes())
            self._options_fingerprint = hasher.hexdigest()
        return self._options_fingerprint

    # ------------------------------------------------------------------
    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        """Produce a schedule with one greedy decode (polynomial time)."""
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        with Timer() as timer:
            queue = build_encoder_queue(graph, self.embedding_config)
            precedence = (
                queue.precedence[None, :, :] if self.constrain_topological else None
            )
            rollout = self._greedy_rollout(queue.features[None, :, :], precedence)
            order = queue.names_for(rollout.actions[0])
            raw = pack_sequence(
                graph, order, num_stages, budget_slack=self.budget_slack
            )
            violations_before = len(raw.dependency_violations())
            schedule = postprocess_schedule(
                raw, enforce_siblings=self.enforce_siblings
            )
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="inference",
            extras={
                "repaired_violations": violations_before,
                "log_prob": float(rollout.log_prob[0]),
            },
        )

    # ------------------------------------------------------------------
    def _decode_batch(self, graphs: Sequence[ComputationalGraph]):
        """One padded greedy decode over ``graphs``.

        Returns ``(queues, rollout, lengths)``; row ``b``'s real actions
        are ``rollout.actions[b, :lengths[b]]``.
        """
        queues: List[EncoderQueue] = [
            build_encoder_queue(graph, self.embedding_config) for graph in graphs
        ]
        features, precedence, lengths = pad_queues(queues)
        rollout = self._greedy_rollout(
            features,
            precedence if self.constrain_topological else None,
            lengths=lengths,
        )
        return queues, rollout, lengths

    def decode_orders(
        self, graphs: Sequence[ComputationalGraph]
    ) -> List[List[str]]:
        """Greedily decode a node order for every graph in one batch.

        The decode is stage-count independent (only the ``rho`` packing
        consumes ``num_stages``), so callers that re-pack one order under
        several stage counts or budgets need just one call.
        """
        graphs = list(graphs)
        if not graphs:
            return []
        queues, rollout, lengths = self._decode_batch(graphs)
        return [
            queue.names_for(rollout.actions[b, : lengths[b]])
            for b, queue in enumerate(queues)
        ]

    def schedule_batch(
        self,
        graphs: Sequence[ComputationalGraph],
        num_stages: Union[int, Sequence[int]],
    ) -> List[ScheduleResult]:
        """Schedule many graphs with one vectorized greedy decode.

        Variable-size encoder queues are padded into a single
        ``[B, N, F]`` tensor and decoded in one masked
        :meth:`PointerNetworkPolicy.forward` pass, then packed and
        post-processed per graph.  The resulting schedules are identical
        to sequential :meth:`schedule` calls — batching only amortizes
        the network cost, which is what makes repeated inference over
        many DAGs fast.

        ``num_stages`` is either one stage count shared by every graph or
        a per-graph sequence.  Each returned result reports the amortized
        ``solve_time`` (batch wall-clock / B) and carries the batch size
        and total in ``extras``.
        """
        graphs = list(graphs)
        stage_counts = normalize_stage_counts(num_stages, len(graphs))
        if not graphs:
            return []
        with Timer() as timer:
            queues, rollout, lengths = self._decode_batch(graphs)
            schedules: List[Schedule] = []
            violations: List[int] = []
            for b, graph in enumerate(graphs):
                order = queues[b].names_for(rollout.actions[b, : lengths[b]])
                raw = pack_sequence(
                    graph,
                    order,
                    stage_counts[b],
                    budget_slack=self.budget_slack,
                )
                violations.append(len(raw.dependency_violations()))
                schedules.append(
                    postprocess_schedule(
                        raw, enforce_siblings=self.enforce_siblings
                    )
                )
        amortized = timer.elapsed / len(graphs)
        return [
            ScheduleResult(
                schedule=schedules[b],
                solve_time=amortized,
                method=self.method_name,
                status="inference",
                extras={
                    "repaired_violations": violations[b],
                    "log_prob": float(rollout.log_prob[b]),
                    "batch_size": len(graphs),
                    "batch_seconds": timer.elapsed,
                },
            )
            for b in range(len(graphs))
        ]

    def schedule_stage_sweep(
        self, graph: ComputationalGraph, stage_counts: Sequence[int]
    ) -> List[ScheduleResult]:
        """Schedule one graph under several stage counts with one decode.

        The greedy decode is stage-count independent — only the ``rho``
        packing consumes ``num_stages`` — so a sweep (the Fig. 3/4/5
        evaluation pattern) pays the network cost exactly once and packs
        per stage count.  Each result reports the amortized
        ``solve_time`` (sweep wall-clock / len(stage_counts)); the true
        total is in ``extras["sweep_seconds"]``.
        """
        counts = list(stage_counts)
        counts = normalize_stage_counts(counts, len(counts))
        if not counts:
            return []
        with Timer() as timer:
            queues, rollout, lengths = self._decode_batch([graph])
            order = queues[0].names_for(rollout.actions[0, : lengths[0]])
            schedules: List[Schedule] = []
            violations: List[int] = []
            for num_stages in counts:
                raw = pack_sequence(
                    graph, order, num_stages, budget_slack=self.budget_slack
                )
                violations.append(len(raw.dependency_violations()))
                schedules.append(
                    postprocess_schedule(
                        raw, enforce_siblings=self.enforce_siblings
                    )
                )
        amortized = timer.elapsed / len(counts)
        return [
            ScheduleResult(
                schedule=schedules[i],
                solve_time=amortized,
                method=self.method_name,
                status="inference",
                extras={
                    "repaired_violations": violations[i],
                    "log_prob": float(rollout.log_prob[0]),
                    "sweep_size": len(counts),
                    "sweep_seconds": timer.elapsed,
                },
            )
            for i in range(len(counts))
        ]
