"""The end-to-end RESPECT scheduler.

Wraps a trained pointer-network policy into the same scheduler interface
as every baseline: embed the graph (Step 2 of Fig. 1a), greedily decode a
node sequence (Step 3), pack it into stages with ``rho`` and apply the
deterministic post-inference processing (Step 4).  The measured
``solve_time`` covers this whole pipeline — it is the quantity Fig. 3
compares against the compiler and the ILP.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.embedding.features import EmbeddingConfig
from repro.embedding.queue import build_encoder_queue
from repro.errors import CheckpointError, SchedulingError
from repro.graphs.dag import ComputationalGraph
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.scheduling.postprocess import postprocess_schedule
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.scheduling.sequence import pack_sequence
from repro.utils.timing import Timer

#: Directory holding checkpoints shipped with the package.
PRETRAINED_DIR = Path(__file__).parent / "pretrained"
DEFAULT_CHECKPOINT = "respect_small"


def save_policy(policy: PointerNetworkPolicy, directory, name: str) -> None:
    """Persist ``policy`` as ``<dir>/<name>.npz`` + ``<name>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    policy.save_npz(directory / f"{name}.npz")
    (directory / f"{name}.json").write_text(json.dumps(policy.config_dict(), indent=2))


def load_policy(directory, name: str) -> PointerNetworkPolicy:
    """Load a checkpoint written by :func:`save_policy`."""
    directory = Path(directory)
    config_path = directory / f"{name}.json"
    weights_path = directory / f"{name}.npz"
    if not config_path.exists() or not weights_path.exists():
        raise CheckpointError(
            f"checkpoint {name!r} not found under {directory} "
            f"(expected {name}.json and {name}.npz)"
        )
    config = json.loads(config_path.read_text())
    policy = PointerNetworkPolicy(
        feature_dim=int(config["feature_dim"]),
        hidden_size=int(config["hidden_size"]),
        logit_clip=float(config.get("logit_clip", 10.0)),
    )
    policy.load_npz(weights_path)
    return policy


def load_pretrained_policy(name: str = DEFAULT_CHECKPOINT) -> PointerNetworkPolicy:
    """Load a checkpoint shipped inside the package.

    The repository ships ``respect_small`` — trained with the paper's
    synthetic-only recipe at CPU scale (see ``examples/train_respect.py``
    to regenerate or scale it up).
    """
    return load_policy(PRETRAINED_DIR, name)


class RespectScheduler:
    """RL-based scheduler: embedding -> PtrNet -> ``rho`` -> post-processing.

    Parameters
    ----------
    policy:
        A trained :class:`PointerNetworkPolicy`; when omitted the shipped
        pretrained checkpoint is loaded.
    embedding_config:
        Must match the configuration the policy was trained with (the
        feature dimension is validated).
    budget_slack:
        ``rho`` packing budget multiplier; ``None`` (default) lets the
        packer binary-search the minimal feasible budget for the decoded
        order.
    enforce_siblings:
        Apply the Edge TPU sibling-stage rule during post-processing.
    constrain_topological:
        Restrict decoding to schedulable nodes (all parents picked).
        Decoded orders are then valid topological orders, so the
        post-inference dependency repair is a no-op; disable to study
        the unconstrained decoder (the post-processing ablation).
    """

    method_name = "respect"

    def __init__(
        self,
        policy: Optional[PointerNetworkPolicy] = None,
        embedding_config: EmbeddingConfig = EmbeddingConfig(),
        budget_slack: Optional[float] = None,
        enforce_siblings: bool = False,
        constrain_topological: bool = True,
    ) -> None:
        self.policy = policy if policy is not None else load_pretrained_policy()
        if self.policy.feature_dim != embedding_config.feature_dim:
            raise SchedulingError(
                f"policy expects feature dim {self.policy.feature_dim} but the "
                f"embedding config produces {embedding_config.feature_dim}"
            )
        # Inference-only float32 clone: ~2x faster greedy decoding with no
        # effect on the (float64) training policy the caller handed in.
        self._inference_policy = PointerNetworkPolicy(
            feature_dim=self.policy.feature_dim,
            hidden_size=self.policy.hidden_size,
            logit_clip=self.policy.logit_clip,
        )
        self._inference_policy.load_state_dict(self.policy.state_dict())
        self._inference_policy.cast(np.float32)
        self.embedding_config = embedding_config
        self.budget_slack = budget_slack
        self.enforce_siblings = enforce_siblings
        self.constrain_topological = constrain_topological

    # ------------------------------------------------------------------
    def schedule(self, graph: ComputationalGraph, num_stages: int) -> ScheduleResult:
        """Produce a schedule with one greedy decode (polynomial time)."""
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        with Timer() as timer:
            queue = build_encoder_queue(graph, self.embedding_config)
            precedence = (
                queue.precedence[None, :, :] if self.constrain_topological else None
            )
            rollout = self._inference_policy.forward(
                queue.features[None, :, :], mode="greedy", precedence=precedence
            )
            order = queue.names_for(rollout.actions[0])
            raw = pack_sequence(
                graph, order, num_stages, budget_slack=self.budget_slack
            )
            violations_before = len(raw.dependency_violations())
            schedule = postprocess_schedule(
                raw, enforce_siblings=self.enforce_siblings
            )
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="inference",
            extras={
                "repaired_violations": violations_before,
                "log_prob": float(rollout.log_prob[0]),
            },
        )
