"""Supervised imitation (teacher forcing) of the exact scheduler.

Cross-entropy on the exact ``gamma`` sequences.  The paper trains with
pure REINFORCE; teacher forcing optimizes a closely related objective
(both push probability mass onto the teacher's pick order) and converges
orders of magnitude faster on CPUs, so this repo uses it to *warm-start*
the policy before REINFORCE fine-tuning (the deviation is recorded in
DESIGN.md / EXPERIMENTS.md, and the ablation bench compares the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.datasets.synthetic import LabeledExample, batch_examples, stack_precedence
from repro.errors import TrainingError
from repro.nn.adam import Adam
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.utils.rng import resolve_rng


@dataclass
class ImitationConfig:
    """Hyper-parameters of the teacher-forcing loop."""

    batch_size: int = 32
    learning_rate: float = 1e-3
    grad_clip_norm: float = 2.0
    seed: int = 0


@dataclass
class ImitationMetrics:
    """One optimization step's diagnostics."""

    step: int
    loss: float
    token_accuracy: float
    grad_norm: float


class ImitationTrainer:
    """Teacher-forced cross-entropy trainer."""

    def __init__(
        self,
        policy: PointerNetworkPolicy,
        examples: Sequence[LabeledExample],
        config: ImitationConfig = ImitationConfig(),
    ) -> None:
        if not examples:
            raise TrainingError("training requires a non-empty dataset")
        self.policy = policy
        self.examples = list(examples)
        self.config = config
        self._rng = resolve_rng(config.seed)
        self.optimizer = Adam(
            policy, lr=config.learning_rate, grad_clip_norm=config.grad_clip_norm
        )
        self._step = 0
        self.history: List[ImitationMetrics] = []

    def train_step(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        precedence: np.ndarray = None,
    ) -> ImitationMetrics:
        """One teacher-forced batch: loss = mean ``-log p(gamma)``."""
        batch = features.shape[0]
        rollout = self.policy.forward(
            features, mode="teacher", target=targets, precedence=precedence
        )
        loss = float(np.mean(-rollout.log_prob))
        # Token accuracy via the step-wise argmax against the teacher.
        correct = 0
        total = 0
        for i, step in enumerate(rollout.steps):
            predicted = np.argmax(
                np.where(step.mask, step.probs, -1.0), axis=1
            )
            correct += int(np.sum(predicted == targets[:, i]))
            total += batch
        self.policy.zero_grad()
        self.policy.backward(rollout, np.full(batch, 1.0 / batch))
        grad_norm = self.optimizer.step()
        self._step += 1
        metrics = ImitationMetrics(
            step=self._step,
            loss=loss,
            token_accuracy=correct / max(1, total),
            grad_norm=grad_norm,
        )
        self.history.append(metrics)
        return metrics

    def train(self, num_steps: int) -> List[ImitationMetrics]:
        """Run ``num_steps`` teacher-forced batches (cycling the data)."""
        if num_steps < 1:
            raise TrainingError("num_steps must be positive")
        done = 0
        while done < num_steps:
            for chunk, features, targets in batch_examples(
                self.examples, self.config.batch_size, rng=self._rng
            ):
                self.train_step(features, targets, stack_precedence(chunk))
                done += 1
                if done >= num_steps:
                    break
        return self.history
